# Convenience wrappers around the tier-1 test command and the benchmark harness.
# See README.md ("Tests and benchmarks") and docs/architecture.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-paper-scale quickstart

test:            ## tier-1 suite (tests/ + benchmarks/, fail fast)
	$(PYTHON) -m pytest -x -q

bench:           ## experiment harness only (tables, figures, runtime throughput)
	$(PYTHON) -m pytest benchmarks -q -s

bench-paper-scale: ## benchmarks at the paper's full corpus scale (slow)
	$(PYTHON) -m pytest benchmarks -q -s --paper-scale

quickstart:      ## end-to-end example: corpus -> GRED -> rendered chart
	$(PYTHON) examples/quickstart.py
