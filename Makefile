# Convenience wrappers around the tier-1 test command and the benchmark harness.
# See README.md ("Tests and benchmarks") and docs/architecture.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-diff bench bench-index bench-index-check bench-plan bench-plan-check bench-vector bench-vector-check bench-aqp bench-aqp-check bench-parallel bench-parallel-check bench-sort bench-sort-check bench-summary bench-paper-scale fuzz fuzz-check quickstart lint

test:            ## tier-1 suite (tests/ + benchmarks/, fail fast)
	$(PYTHON) -m pytest -x -q

test-fast:       ## tests/ only, excluding benchmarks (quick pre-commit loop)
	$(PYTHON) -m pytest tests -x -q

test-diff:       ## cross-backend differential suite (interpreter vs SQLite)
	$(PYTHON) -m pytest tests -q -m differential

bench:           ## experiment harness only (tables, figures, runtime throughput)
	$(PYTHON) -m pytest benchmarks -q -s

bench-index:     ## vector-index benchmark: recall + >=2.5x throughput bar (-m index)
	$(PYTHON) -m pytest benchmarks -q -s -m index

bench-index-check: ## index benchmark correctness assertions only (no timing bar; used by CI)
	$(PYTHON) -m pytest benchmarks -q -m index -k "not throughput_vs_exact"

bench-plan:      ## plan-engine benchmark: >=3x throughput bar + optimizer ablation (-m plan)
	$(PYTHON) -m pytest benchmarks -q -s -m plan

bench-plan-check: ## plan benchmark correctness assertions only (no timing bar; used by CI)
	$(PYTHON) -m pytest benchmarks -q -m plan -k "not at_least_3x"

bench-vector:    ## vectorized-kernel benchmark: >=10x bar over the scalar columnar engine (-m vector)
	$(PYTHON) -m pytest benchmarks -q -s -m vector

bench-vector-check: ## vector benchmark correctness assertions only (no timing bar; used by CI)
	$(PYTHON) -m pytest benchmarks -q -m vector -k "not throughput"

bench-aqp:       ## AQP benchmark: >=10x bar over exact columnar at 1M rows, errors <=5% (-m aqp)
	$(PYTHON) -m pytest benchmarks -q -s -m aqp

bench-aqp-check: ## AQP benchmark correctness assertions only (no timing bar; used by CI)
	$(PYTHON) -m pytest benchmarks -q -m aqp -k "not at_least_10x"

bench-parallel:  ## parallel-pipeline benchmark: >=3x bar over max_workers=1 at 1M rows (-m parallel)
	$(PYTHON) -m pytest benchmarks -q -s -m parallel

bench-parallel-check: ## parallel benchmark correctness assertions only (no timing bar; used by CI)
	$(PYTHON) -m pytest benchmarks -q -m parallel -k "not at_least_3x"

bench-sort:      ## sort/top-k benchmark: >=5x vectorized + >=2x parallel bars at 1M rows (-m sort)
	$(PYTHON) -m pytest benchmarks -q -s -m sort

bench-sort-check: ## sort benchmark correctness assertions only (no timing bars; used by CI)
	$(PYTHON) -m pytest benchmarks -q -m sort -k "not at_least_5x"

bench-summary:   ## one trajectory table from every benchmarks/BENCH_*.json
	$(PYTHON) benchmarks/summarize.py

bench-paper-scale: ## benchmarks at the paper's full corpus scale (slow)
	$(PYTHON) -m pytest benchmarks -q -s --paper-scale

fuzz:            ## at-scale differential fuzz: 10k queries, 12-table snowflake, 120k rows (slow, ~15-20 min)
	REPRO_FUZZ_QUERIES=10000 REPRO_FUZZ_ROWS=120000 REPRO_FUZZ_TABLES=12 \
	REPRO_FUZZ_TOPOLOGY=snowflake REPRO_FUZZ_JOIN_COST=2000000 \
	$(PYTHON) -m pytest benchmarks/test_fuzz_differential.py -q -s -m fuzz

fuzz-check:      ## CI smoke fuzz: 2k queries over a 30k-row star schema (~2 min)
	REPRO_FUZZ_QUERIES=2000 REPRO_FUZZ_ROWS=30000 \
	$(PYTHON) -m pytest benchmarks/test_fuzz_differential.py -q -s -m fuzz

quickstart:      ## end-to-end example: corpus -> GRED -> rendered chart
	$(PYTHON) examples/quickstart.py

lint:            ## ruff over the whole tree (config in ruff.toml)
	ruff check src tests benchmarks examples
