#!/usr/bin/env python
"""Collect every ``benchmarks/BENCH_*.json`` into one trajectory table.

Each throughput benchmark writes its headline numbers to a machine-readable
``BENCH_<name>.json`` next to this script (see the ``bench_report`` fixture
in ``benchmarks/conftest.py``).  This script — stdlib only, no repo imports —
renders them as one aligned table so a whole benchmark run can be read, or
diffed across commits, at a glance:

    $ make bench-summary
    benchmark   speedup   rows       queries   baseline -> best
    aqp         17.91x    1,000,000  6         exact 1.356s -> approximate 0.076s
    ...

Unknown keys are preserved in a trailing notes column, so new benchmarks
need no changes here as long as they report ``speedup`` / ``timings``.
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent

#: Keys rendered as dedicated columns; everything else lands in "notes".
_KNOWN = {"speedup", "rows", "queries", "timings"}


def _load_reports(directory: pathlib.Path):
    reports = []
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            payload = json.loads(path.read_text())
        except ValueError as error:
            print(f"warning: skipping {path.name}: {error}", file=sys.stderr)
            continue
        reports.append((name, payload))
    return reports


def _timing_span(timings):
    """``slowest-label 1.234s -> fastest-label 0.123s`` for one report."""
    if not isinstance(timings, dict) or not timings:
        return ""
    ordered = sorted(timings.items(), key=lambda item: -float(item[1]))
    slow_label, slow_seconds = ordered[0]
    fast_label, fast_seconds = ordered[-1]
    return (
        f"{slow_label} {float(slow_seconds):.3f}s -> "
        f"{fast_label} {float(fast_seconds):.3f}s"
    )


def _notes(payload):
    extras = {key: payload[key] for key in sorted(payload) if key not in _KNOWN}
    return ", ".join(
        f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
        for key, value in extras.items()
    )


def render_table(reports):
    header = ["benchmark", "speedup", "rows", "queries", "baseline -> best", "notes"]
    rows = [header]
    for name, payload in reports:
        speedup = payload.get("speedup")
        rows.append([
            name,
            f"{speedup:.2f}x" if isinstance(speedup, (int, float)) else "-",
            f"{payload['rows']:,}" if isinstance(payload.get("rows"), int) else "-",
            str(payload.get("queries", "-")),
            _timing_span(payload.get("timings")),
            _notes(payload),
        ])
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [
        "   ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    return "\n".join(lines)


def main() -> int:
    directory = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else BENCH_DIR
    reports = _load_reports(directory)
    if not reports:
        print(f"no BENCH_*.json files under {directory}", file=sys.stderr)
        return 1
    print(render_table(reports))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
