"""Table 3 — results on nvBench-Rob_(nlq,schema) (dual variants, the hardest set)."""

from __future__ import annotations

from repro.evaluation.report import format_accuracy_table
from repro.robustness.variants import VariantKind

PAPER_TABLE3 = {
    "Seq2Vis": 0.0550,
    "Transformer": 0.1277,
    "RGVisNet": 0.2481,
    "GRED (Ours)": 0.5485,
}


def test_table3_dual_variants(benchmark, workbench, trained_baselines, prepared_gred):
    def build_table():
        return workbench.table_results(VariantKind.BOTH)

    results = benchmark.pedantic(build_table, rounds=1, iterations=1)

    print("\n" + format_accuracy_table(results, title="Table 3 — nvBench-Rob_(nlq,schema) (measured)"))
    print("\nPaper overall accuracies: " + ", ".join(f"{k}={v:.2%}" for k, v in PAPER_TABLE3.items()))

    gred = results["GRED (Ours)"]
    baselines = ("Seq2Vis", "Transformer", "RGVisNet")
    for name in baselines:
        assert gred.overall_accuracy > results[name].overall_accuracy, name
    # the paper's headline: GRED's margin over the best baseline is largest on
    # the dual-variant set (over 30 accuracy points there)
    best_baseline = max(results[name].overall_accuracy for name in baselines)
    assert gred.overall_accuracy - best_baseline > 0.15
