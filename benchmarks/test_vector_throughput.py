"""Vectorized-kernel throughput — NumPy columnar kernels vs the scalar engine.

This benchmark is the perf acceptance bar for the typed column store
(:mod:`repro.database.typed`) and the vectorized kernels behind
:class:`~repro.executor.ColumnarBackend`.  A 1M-row fact table joined to a
50-row dimension table is built deterministically (with NULLs sprinkled into
both the measure and the join-key columns, so the masked paths are on the
hot path); a join + filter + group + top-k workload is then executed with
the NumPy kernels on and off, and the wall-clock speed-up recorded.  The
acceptance bar is a >= 10x end-to-end speed-up of the vectorized engine over
the per-value scalar engine; the morsel-parallel scan variant is reported
alongside and must return identical rows.

Timing protocol: one untimed warm-up pass per engine builds the lazy caches
(the typed store's lowered-text shadow), then the vectorized engine takes
the best of three passes while the scalar engine — too slow to repeat —
takes a single pass.

Every engine variant must also return identical (normalised) results for
every benchmark query — throughput without equivalence would be meaningless.
The correctness half additionally checks all variants against the row
interpreter oracle at a smaller scale.

Run alone with ``make bench-vector`` (marker: ``vector``); CI runs the
correctness half via ``make bench-vector-check``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend, InterpreterBackend

pytestmark = pytest.mark.vector

FACT_ROWS = 1_000_000
DIM_ROWS = 50
#: Scale of the interpreter-oracle correctness half (the oracle is orders of
#: magnitude slower than the kernels, so it gets a smaller but structurally
#: identical database).
CHECK_ROWS = 60_000

QUERIES = [
    # the headline shape: join + filter + group + aggregate + top-k
    "Visualize BAR SELECT DEPT_NAME , AVG(SALARY) FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
    "WHERE SALARY > 2000 AND ROLE LIKE '%eng%' "
    "GROUP BY DEPT_NAME ORDER BY AVG(SALARY) DESC LIMIT 5",
    "Visualize PIE SELECT CITY , COUNT(*) FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
    "WHERE SALARY BETWEEN 1000 AND 8000 "
    "AND ROLE IN ('Engineer', 'Manager', 'Analyst') "
    "GROUP BY CITY ORDER BY COUNT(*) DESC LIMIT 4",
    "Visualize BAR SELECT DEPT_NAME , SUM(SALARY) FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
    "WHERE ROLE = 'Manager' OR SALARY > 9000 "
    "GROUP BY DEPT_NAME ORDER BY SUM(SALARY) DESC LIMIT 8",
    "Visualize BAR SELECT ROLE , SUM(SALARY) FROM employees "
    "WHERE ROLE LIKE '%e%' AND ROLE NOT LIKE '%con%' AND SALARY > 300 "
    "GROUP BY ROLE ORDER BY SUM(SALARY) DESC LIMIT 6",
]

_CITIES = ["Zurich", "Tokyo", "Lisbon", "Austin", "Oslo", "Seoul", "Quito"]
_ROLES = [
    "Engineer", "Senior Engineer", "Manager", "Analyst", "Designer",
    "Director", "Intern", "Consultant",
]


def _bench_database(fact_rows: int) -> Database:
    schema = build_schema(
        "vector_bench",
        [
            (
                "employees",
                [
                    ("EMP_ID", ColumnType.NUMBER, "id"),
                    ("SALARY", ColumnType.NUMBER, "salary"),
                    ("ROLE", ColumnType.TEXT, "job_title"),
                    ("DEPT_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "departments",
                [
                    ("DEPT_ID", ColumnType.NUMBER, "id"),
                    ("DEPT_NAME", ColumnType.TEXT, "department"),
                    ("CITY", ColumnType.TEXT, "city"),
                ],
            ),
        ],
        foreign_keys=[("employees", "DEPT_ID", "departments", "DEPT_ID")],
    )
    rng = random.Random(47)
    departments = [
        {
            "DEPT_ID": index + 1,
            "DEPT_NAME": f"Dept {index + 1:02d}",
            "CITY": rng.choice(_CITIES),
        }
        for index in range(DIM_ROWS)
    ]
    # ~3% NULL salaries and ~3% NULL join keys: the mask and the NULL-join
    # semantics stay on the measured path
    employees = [
        {
            "EMP_ID": index + 1,
            "SALARY": None if rng.random() < 0.03 else rng.randint(100, 10_000),
            "ROLE": rng.choice(_ROLES),
            "DEPT_ID": None if rng.random() < 0.03 else rng.randint(1, DIM_ROWS),
        }
        for index in range(fact_rows)
    ]
    database = Database.from_rows(
        schema, {"departments": departments, "employees": employees}
    )
    # pre-build the typed stores so the timing below measures kernels, not
    # the one-time column materialisation every engine shares
    for table in database.tables():
        table.typed_store()
    return database


def _timed(backend, queries, database):
    results = []
    started = time.perf_counter()
    for query in queries:
        results.append(backend.execute(query, database))
    return time.perf_counter() - started, results


def _assert_identical(expected, actual, label):
    for query_text, left, right in zip(QUERIES, expected, actual):
        assert left.columns == right.columns, f"{label}: {query_text}"
        assert left.rows == right.rows, f"{label}: {query_text}"


def test_vector_engine_matches_the_interpreter_on_the_bench_workload():
    """Correctness half (CI-safe): every kernel variant, identical results."""
    database = _bench_database(CHECK_ROWS)
    queries = [parse_dvq(text) for text in QUERIES]
    expected = [InterpreterBackend().execute(query, database) for query in queries]
    variants = {
        "vectorized": ColumnarBackend(),
        "vectorized unoptimized": ColumnarBackend(optimize=False),
        "morsel-parallel": ColumnarBackend(max_workers=4, morsel_size=4_096),
        "scalar": ColumnarBackend(vectorize=False),
    }
    for label, backend in variants.items():
        actual = [backend.execute(query, database) for query in queries]
        _assert_identical(expected, actual, label)


def test_vector_engine_throughput_is_at_least_10x_on_1m_row_join(bench_report):
    """Timing half: >= 10x over the scalar columnar engine at 1M rows."""
    database = _bench_database(FACT_ROWS)
    queries = [parse_dvq(text) for text in QUERIES]

    vectorized = ColumnarBackend()
    morsel = ColumnarBackend(max_workers=4, morsel_size=131_072)
    scalar = ColumnarBackend(vectorize=False)

    _, expected = _timed(vectorized, queries, database)  # warm-up, kept as oracle
    vector_seconds = min(_timed(vectorized, queries, database)[0] for _ in range(3))
    _timed(morsel, queries, database)
    morsel_seconds, morsel_results = _timed(morsel, queries, database)
    _assert_identical(expected, morsel_results, "morsel-parallel")
    scalar_seconds, scalar_results = _timed(scalar, queries, database)
    _assert_identical(expected, scalar_results, "scalar")

    speedup = scalar_seconds / vector_seconds
    print(
        f"\nvector-kernel throughput over {len(queries)} queries "
        f"({FACT_ROWS:,}-row fact join {DIM_ROWS}-row dim):"
    )
    for label, seconds in [
        ("columnar scalar (vectorize=False)", scalar_seconds),
        ("columnar vectorized", vector_seconds),
        ("columnar vectorized + morsels", morsel_seconds),
    ]:
        print(
            f"  {label}:".ljust(40)
            + f"{seconds:.2f}s  ({scalar_seconds / seconds:.1f}x)"
        )

    bench_report(
        speedup=speedup,
        rows=FACT_ROWS,
        queries=len(queries),
        timings={
            "scalar": scalar_seconds,
            "vectorized": vector_seconds,
            "vectorized_morsels": morsel_seconds,
        },
    )

    assert speedup >= 10.0, (
        f"vectorized kernels only {speedup:.2f}x faster than the scalar engine"
    )
