"""Parallel-pipeline throughput — partitioned joins + partial aggregation.

This benchmark is the perf acceptance bar for the engine-wide parallel
runtime (:mod:`repro.executor.parallel`): a 1M-row fact table joined to a
2,000-row dimension table, grouped and aggregated, executed by the same
columnar engine at ``max_workers=1`` (serial) and with the thread pool on.
The acceptance bar is a >= 3x end-to-end speed-up of the parallel engine
over ``max_workers=1`` on a multi-core machine; on boxes with fewer than
four cores the timing half still measures and records, then skips the bar
(the kernels cannot beat physics).

The correctness half always runs and is the half CI gates on
(``make bench-parallel-check``): every worker count in {1, 2, 4, 8} must
return *bit-identical* rows on the full workload — at a smaller scale — and
match the row-interpreter oracle.  Determinism is the whole design: every
parallel kernel either reproduces its serial counterpart exactly or
declines to it (see docs/architecture.md, "Parallel execution").

Run alone with ``make bench-parallel`` (marker: ``parallel``).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend, InterpreterBackend

pytestmark = pytest.mark.parallel

FACT_ROWS = 1_000_000
DIM_ROWS = 2_000
#: Scale of the always-on correctness half (the interpreter oracle is orders
#: of magnitude slower, so it gets a smaller but structurally identical db).
CHECK_ROWS = 40_000
WORKER_COUNTS = (1, 2, 4, 8)
SPEEDUP_BAR = 3.0

QUERIES = [
    # the headline shape: big join + group + aggregate
    "Visualize BAR SELECT REGION , SUM(AMOUNT) FROM orders AS T1 "
    "JOIN customers AS T2 ON T1.CUSTOMER_ID = T2.CUSTOMER_ID "
    "GROUP BY REGION ORDER BY SUM(AMOUNT) DESC LIMIT 8",
    "Visualize BAR SELECT SEGMENT , AVG(AMOUNT) FROM orders AS T1 "
    "JOIN customers AS T2 ON T1.CUSTOMER_ID = T2.CUSTOMER_ID "
    "WHERE AMOUNT > 50 "
    "GROUP BY SEGMENT ORDER BY AVG(AMOUNT) DESC LIMIT 6",
    # grouped aggregation without a join: the partial-aggregate merge path
    "Visualize BAR SELECT STATUS , COUNT(*) , SUM(AMOUNT) , MIN(AMOUNT) , "
    "MAX(AMOUNT) FROM orders GROUP BY STATUS",
    "Visualize PIE SELECT STATUS , AVG(QUANTITY) FROM orders "
    "WHERE QUANTITY BETWEEN 2 AND 90 GROUP BY STATUS",
]

_REGIONS = ["North", "South", "East", "West", "Central", "Overseas"]
_SEGMENTS = ["Retail", "Wholesale", "Online", "Partner"]
_STATUSES = ["placed", "shipped", "delivered", "returned", "cancelled"]


def _bench_database(fact_rows: int) -> Database:
    schema = build_schema(
        "parallel_bench",
        [
            (
                "orders",
                [
                    ("ORDER_ID", ColumnType.NUMBER, "id"),
                    ("AMOUNT", ColumnType.NUMBER, "price"),
                    ("QUANTITY", ColumnType.NUMBER, "quantity"),
                    ("STATUS", ColumnType.TEXT, "status"),
                    ("CUSTOMER_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "customers",
                [
                    ("CUSTOMER_ID", ColumnType.NUMBER, "id"),
                    ("REGION", ColumnType.TEXT, "region"),
                    ("SEGMENT", ColumnType.TEXT, "segment"),
                ],
            ),
        ],
        foreign_keys=[("orders", "CUSTOMER_ID", "customers", "CUSTOMER_ID")],
    )
    rng = random.Random(53)
    customers = [
        {
            "CUSTOMER_ID": index + 1,
            "REGION": rng.choice(_REGIONS),
            "SEGMENT": rng.choice(_SEGMENTS),
        }
        for index in range(DIM_ROWS)
    ]
    # ~2% NULL measures and ~2% NULL join keys keep the masked kernels and
    # the NULL-join semantics on the measured path
    orders = [
        {
            "ORDER_ID": index + 1,
            "AMOUNT": None if rng.random() < 0.02 else rng.randint(1, 5_000),
            "QUANTITY": rng.randint(1, 100),
            "STATUS": rng.choice(_STATUSES),
            "CUSTOMER_ID": None if rng.random() < 0.02 else rng.randint(1, DIM_ROWS),
        }
        for index in range(fact_rows)
    ]
    database = Database.from_rows(schema, {"customers": customers, "orders": orders})
    # pre-build the typed stores so the timings measure kernels, not the
    # one-time column materialisation every engine shares
    for table in database.tables():
        table.typed_store()
    return database


def _parallel_backend(workers: int, morsel_size: int = 65_536) -> ColumnarBackend:
    return ColumnarBackend(max_workers=workers, morsel_size=morsel_size)


def _timed(backend, queries, database):
    results = []
    started = time.perf_counter()
    for query in queries:
        results.append(backend.execute(query, database))
    return time.perf_counter() - started, results


def _assert_identical(expected, actual, label):
    for query_text, left, right in zip(QUERIES, expected, actual):
        assert left.columns == right.columns, f"{label}: {query_text}"
        assert left.rows == right.rows, f"{label}: {query_text}"


def test_parallel_engine_is_row_identical_across_worker_counts():
    """Correctness half (CI-gated): bit-identical rows for every worker count."""
    database = _bench_database(CHECK_ROWS)
    queries = [parse_dvq(text) for text in QUERIES]
    oracle = [InterpreterBackend().execute(query, database) for query in queries]
    for workers in WORKER_COUNTS:
        # small morsels so every parallel kernel engages at check scale
        backend = _parallel_backend(workers, morsel_size=4_096)
        actual = [backend.execute(query, database) for query in queries]
        _assert_identical(oracle, actual, f"max_workers={workers}")


def test_parallel_engine_throughput_is_at_least_3x_on_1m_rows(bench_report):
    """Timing half: >= 3x over ``max_workers=1`` at 1M rows (multi-core only)."""
    database = _bench_database(FACT_ROWS)
    queries = [parse_dvq(text) for text in QUERIES]
    cores = os.cpu_count() or 1
    workers = max(2, min(8, cores))

    serial = _parallel_backend(1)
    parallel = _parallel_backend(workers)

    _, expected = _timed(serial, queries, database)  # warm-up, kept as oracle
    serial_seconds = min(_timed(serial, queries, database)[0] for _ in range(3))
    _timed(parallel, queries, database)
    parallel_seconds, parallel_results = min(
        (_timed(parallel, queries, database) for _ in range(3)),
        key=lambda pair: pair[0],
    )
    _assert_identical(expected, parallel_results, f"max_workers={workers}")

    speedup = serial_seconds / parallel_seconds
    print(
        f"\nparallel-pipeline throughput over {len(queries)} queries "
        f"({FACT_ROWS:,}-row fact join {DIM_ROWS:,}-row dim, {cores} cores):"
    )
    for label, seconds in [
        ("columnar serial (max_workers=1)", serial_seconds),
        (f"columnar parallel (max_workers={workers})", parallel_seconds),
    ]:
        print(
            f"  {label}:".ljust(44)
            + f"{seconds:.2f}s  ({serial_seconds / seconds:.1f}x)"
        )

    bench_report(
        speedup=speedup,
        rows=FACT_ROWS,
        queries=len(queries),
        cores=cores,
        workers=workers,
        timings={"serial": serial_seconds, "parallel": parallel_seconds},
    )

    if cores < 4:
        pytest.skip(
            f"only {cores} core(s): the >= {SPEEDUP_BAR}x bar needs a "
            f"multi-core machine (measured {speedup:.2f}x, recorded anyway)"
        )
    assert speedup >= SPEEDUP_BAR, (
        f"parallel pipeline only {speedup:.2f}x faster than max_workers=1"
    )
