"""Additional ablation benches for design choices called out in DESIGN.md.

These go beyond the paper's Table 4: the retrieval depth K and the embedding
family both shape GRED's robustness, and the paper fixes them (K = 10,
text-embedding-3-large) without sweeping.  The benches sweep them on the
dual-variant set.
"""

from __future__ import annotations

from repro.core import GRED, GREDConfig
from repro.embeddings.embedder import EmbedderConfig
from repro.evaluation import ModelEvaluator


def test_ablation_retrieval_top_k(benchmark, workbench):
    """Effect of the retrieval depth K on dual-variant accuracy."""
    dataset = workbench.dataset
    dual = workbench.suite.dual_variant
    evaluator = ModelEvaluator(limit=40)

    def sweep():
        accuracies = {}
        for top_k in (1, 5, 10):
            model = GRED(GREDConfig(top_k=top_k)).fit(dataset.train, dataset.catalog)
            accuracies[top_k] = evaluator.evaluate(model, dual).result.overall_accuracy
        return accuracies

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nRetrieval-depth ablation (dual-variant overall accuracy):")
    for top_k, accuracy in accuracies.items():
        print(f"  K = {top_k:>2}: {accuracy:.1%}")
    # retrieval with more context should not be catastrophically worse than K=1
    assert accuracies[10] >= accuracies[1] - 0.1


def test_ablation_embedder_family(benchmark, workbench):
    """Effect of the embedding feature family (words vs characters vs hybrid)."""
    dataset = workbench.dataset
    dual = workbench.suite.dual_variant
    evaluator = ModelEvaluator(limit=40)

    configurations = {
        "hybrid (default)": EmbedderConfig(dimensions=512, char_n=3, use_words=True),
        "words only": EmbedderConfig(dimensions=512, char_n=0, use_words=True),
        "characters only": EmbedderConfig(dimensions=512, char_n=3, use_words=False),
    }

    def sweep():
        accuracies = {}
        for label, embedder_config in configurations.items():
            model = GRED(GREDConfig(top_k=5))
            model.retriever.embedder.config = embedder_config
            model.fit(dataset.train, dataset.catalog)
            accuracies[label] = evaluator.evaluate(model, dual).result.overall_accuracy
        return accuracies

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nEmbedding-family ablation (dual-variant overall accuracy):")
    for label, accuracy in accuracies.items():
        print(f"  {label:<18}: {accuracy:.1%}")
    assert accuracies["hybrid (default)"] >= max(accuracies.values()) - 0.15
