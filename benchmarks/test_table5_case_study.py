"""Table 5 / Figure 5 — case study: per-model DVQs and chart rendering outcomes.

For one dual-variant example, prints the DVQ every model generates and whether
the front end can render a chart from it, mirroring the case study table in the
paper (baselines keep training-set column names and fail to render; GRED
produces the renamed columns and renders correctly).
"""

from __future__ import annotations

from repro.evaluation.metrics import compare_queries
from repro.vegalite import ChartRenderer


def test_table5_case_study(benchmark, workbench, trained_baselines, prepared_gred):
    suite = workbench.suite
    renderer = ChartRenderer()

    def run_case_study():
        return workbench.case_study(index=0)

    case = benchmark.pedantic(run_case_study, rounds=1, iterations=1)

    example = suite.dual_variant.examples[0]
    database = suite.catalog.get(example.db_id)

    print("\nTable 5 — case study")
    print(f"NLQ:    {case['NLQ']}")
    print(f"Target: {case['Target']}")
    rendered_flags = {}
    for model_name in ("Seq2Vis", "Transformer", "RGVisNet", "GRED"):
        prediction = case[model_name]
        chart = renderer.try_render_text(prediction, database)
        rendered_flags[model_name] = chart is not None
        match = compare_queries(prediction, case["Target"])
        status = "match" if match.overall else "no match"
        render = "chart rendered" if chart is not None else "NO CHART (spec/execution error)"
        print(f"{model_name:<12} [{status:>9}] [{render}] {prediction}")
        if chart is not None and model_name == "GRED":
            print("GRED chart preview:")
            print(chart.ascii_render(width=30, max_rows=6))

    # the target itself must render on the perturbed database
    target_chart = renderer.try_render_text(case["Target"], database)
    assert target_chart is not None
    # GRED's prediction must at least be renderable against the renamed schema
    assert rendered_flags["GRED"]


def test_case_study_prediction_latency(benchmark, workbench, prepared_gred):
    """Single-question GRED latency (retrieval + three LLM stages)."""
    suite = workbench.suite
    example = suite.dual_variant.examples[1]
    database = suite.catalog.get(example.db_id)
    result = benchmark(lambda: prepared_gred.predict(example.nlq, database))
    assert result
