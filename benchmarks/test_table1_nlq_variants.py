"""Table 1 — results on nvBench-Rob_nlq (NLQ-only variants)."""

from __future__ import annotations

from repro.evaluation.report import format_accuracy_table
from repro.robustness.variants import VariantKind

PAPER_TABLE1 = {
    "Seq2Vis": 0.3452,
    "Transformer": 0.3604,
    "RGVisNet": 0.4587,
    "GRED (Ours)": 0.5998,
}


def test_table1_nlq_variants(benchmark, workbench, trained_baselines, prepared_gred):
    def build_table():
        return workbench.table_results(VariantKind.NLQ)

    results = benchmark.pedantic(build_table, rounds=1, iterations=1)

    print("\n" + format_accuracy_table(results, title="Table 1 — nvBench-Rob_nlq (measured)"))
    print("\nPaper overall accuracies: " + ", ".join(f"{k}={v:.2%}" for k, v in PAPER_TABLE1.items()))

    # shape: GRED beats every baseline on the NLQ-variant set, and vis accuracy
    # stays high for all models (chart type is the easiest component)
    gred = results["GRED (Ours)"]
    for name in ("Seq2Vis", "Transformer", "RGVisNet"):
        assert gred.overall_accuracy > results[name].overall_accuracy, name
    assert gred.vis_accuracy > 0.7
