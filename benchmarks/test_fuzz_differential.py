"""Scaled differential fuzzing over the full engine matrix.

A seeded schema graph is built, populated with correlated data at a tiered
scale, and thousands of statistics-driven DVQs are streamed through the
interpreter (reference), SQLite, and both columnar variants.  Every engine
must return identical rows and identical failure categories; any mismatch is
delta-debugged down to a minimal, paste-ready, seeded reproducer and printed
via the report summary.

The sweep is scaled through environment variables so the same test serves as
a fast tier-1 smoke and as the at-scale acceptance run:

    REPRO_FUZZ_QUERIES    number of portable queries to sweep   (default 200)
    REPRO_FUZZ_ROWS       total rows across the schema graph    (default 8000)
    REPRO_FUZZ_TABLES     table count in the schema graph       (default 8)
    REPRO_FUZZ_TOPOLOGY   star | snowflake | chain              (default star)
    REPRO_FUZZ_WORKERS    BatchRunner thread pool size          (default 2)
    REPRO_FUZZ_SEED       base seed (query i uses seed base+i)  (default 0)
    REPRO_FUZZ_JOIN_COST  nested-loop work bound per join       (default 300000)

``make fuzz-check`` runs a CI-sized smoke (2k queries, 30k rows);
``make fuzz`` runs the acceptance sweep (10k queries, 12-table snowflake,
120k rows).  Marker: ``fuzz``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.workload import SchemaGraphConfig, build_workload_database, fuzz_database

pytestmark = pytest.mark.fuzz


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


QUERIES = _env_int("REPRO_FUZZ_QUERIES", 200)
ROWS = _env_int("REPRO_FUZZ_ROWS", 8_000)
TABLES = _env_int("REPRO_FUZZ_TABLES", 8)
TOPOLOGY = os.environ.get("REPRO_FUZZ_TOPOLOGY", "star")
WORKERS = _env_int("REPRO_FUZZ_WORKERS", 2)
BASE_SEED = _env_int("REPRO_FUZZ_SEED", 0)
JOIN_COST = _env_int("REPRO_FUZZ_JOIN_COST", 300_000)


@pytest.fixture(scope="module")
def fuzz_db():
    config = SchemaGraphConfig(
        seed=BASE_SEED + 1, table_count=TABLES, topology=TOPOLOGY, name="fuzz_bench"
    )
    started = time.perf_counter()
    database = build_workload_database(config, total_rows=ROWS)
    print(
        f"\nfuzz database: {len(database.tables())} tables ({TOPOLOGY}), "
        f"{database.row_count():,} rows, built in {time.perf_counter() - started:.1f}s"
    )
    return database


def test_portable_sweep_is_mismatch_free(fuzz_db):
    """The headline sweep: N portable DVQs, one comparison per engine, 0 mismatches."""
    report = fuzz_database(
        fuzz_db,
        count=QUERIES,
        base_seed=BASE_SEED,
        max_workers=WORKERS,
        max_join_cost=JOIN_COST,
    )
    print(report.summary())
    rate = report.total / report.wall_seconds if report.wall_seconds else 0.0
    print(f"throughput: {rate:.1f} queries/s over {len(report.engines)} engines")
    assert report.total == QUERIES
    assert report.comparisons == QUERIES * len(report.engines)
    # every failing seed and its minimized reproducer is in the summary above
    assert report.ok, report.summary()
    assert report.category_counts.get("ok", 0) == QUERIES


def test_non_portable_sweep_agrees_on_failure_categories(fuzz_db):
    """A smaller corrupted sweep: engines must classify rejections identically."""
    count = max(QUERIES // 10, 50)
    report = fuzz_database(
        fuzz_db,
        count=count,
        base_seed=BASE_SEED + 10_000,
        portable_subset=False,
        max_workers=WORKERS,
        max_join_cost=JOIN_COST,
    )
    print(report.summary())
    assert report.ok, report.summary()
    broken = {
        category: n
        for category, n in report.category_counts.items()
        if category != "ok"
    }
    assert broken, "corruption produced no rejected queries"
    assert set(broken) <= {"missing_table", "missing_column"}
