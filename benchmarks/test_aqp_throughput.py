"""Approximate-query-processing throughput — sampled vs exact columnar.

This benchmark is the perf acceptance bar for the AQP path
(:mod:`repro.plan.sampling` + ``ColumnarBackend(approximate=True)``).  A
1M-row sales fact table is built deterministically; an aggregate/bin chart
workload (COUNT / SUM / AVG, group-by and date binning, with and without
filters and a dimension join) is then executed exactly and from the
precomputed 5% row samples, and the wall-clock speed-up recorded.

The acceptance bar is a >= 10x end-to-end speed-up with every observed
per-group relative error <= 5% — far inside the reported 3-sigma CLT bounds
(attached to each result as
:class:`~repro.plan.sampling.ApproximationInfo`), and visually
indistinguishable on a chart.  Group-by-category queries ride the keyed
(stratified) sample, so no bar ever disappears and plain per-category
COUNTs are exact; binned and joined queries ride the uniform sample.

Timing protocol: one untimed warm-up pass per backend builds the shared
caches (typed stores, per-column statistics, the row samples), then each
backend takes the best of three passes — the steady state an interactive
chart session actually sees.

Run alone with ``make bench-aqp`` (marker: ``aqp``); CI runs the
correctness half via ``make bench-aqp-check``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend

pytestmark = pytest.mark.aqp

FACT_ROWS = 1_000_000
DIM_ROWS = 8
#: Scale of the correctness half — above the AQP rewrite's
#: ``min_table_rows`` floor but cheap enough for CI.
CHECK_ROWS = 40_000

#: Every query is AQP-eligible: COUNT/SUM/AVG over groups or bins, no top-k.
QUERIES = [
    "Visualize BAR SELECT CATEGORY , COUNT(*) FROM sales GROUP BY CATEGORY",
    "Visualize BAR SELECT CATEGORY , SUM(AMOUNT) FROM sales GROUP BY CATEGORY",
    "Visualize BAR SELECT CATEGORY , AVG(AMOUNT) FROM sales GROUP BY CATEGORY",
    "Visualize LINE SELECT SOLD_AT , COUNT(*) FROM sales BIN SOLD_AT BY YEAR",
    "Visualize BAR SELECT CATEGORY , COUNT(*) FROM sales "
    "WHERE AMOUNT > 2000 GROUP BY CATEGORY",
    "Visualize BAR SELECT REGION_NAME , AVG(AMOUNT) FROM sales AS T1 "
    "JOIN regions AS T2 ON T1.REGION_ID = T2.REGION_ID GROUP BY REGION_NAME",
]

#: Queries the rewrite must decline (extremes / top-k), silently running exact.
INELIGIBLE_QUERIES = [
    "Visualize BAR SELECT CATEGORY , MAX(AMOUNT) FROM sales GROUP BY CATEGORY",
    "Visualize BAR SELECT CATEGORY , COUNT(*) FROM sales "
    "GROUP BY CATEGORY ORDER BY COUNT(*) DESC LIMIT 3",
    "Visualize BAR SELECT CATEGORY , COUNT(DISTINCT AMOUNT) FROM sales "
    "GROUP BY CATEGORY",
]

_CATEGORIES = [
    "Grocery", "Clothing", "Garden", "Toys", "Media", "Sports", "Office", "Auto",
]


def _bench_database(fact_rows: int) -> Database:
    schema = build_schema(
        "aqp_bench",
        [
            (
                "sales",
                [
                    ("SALE_ID", ColumnType.NUMBER, "id"),
                    ("AMOUNT", ColumnType.NUMBER, "price"),
                    ("CATEGORY", ColumnType.TEXT, "category"),
                    ("SOLD_AT", ColumnType.DATE, "date"),
                    ("REGION_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "regions",
                [
                    ("REGION_ID", ColumnType.NUMBER, "id"),
                    ("REGION_NAME", ColumnType.TEXT, "region"),
                ],
            ),
        ],
        foreign_keys=[("sales", "REGION_ID", "regions", "REGION_ID")],
    )
    rng = random.Random(31)
    regions = [
        {"REGION_ID": index + 1, "REGION_NAME": f"Region {index + 1}"}
        for index in range(DIM_ROWS)
    ]
    sales = [
        {
            "SALE_ID": index + 1,
            "AMOUNT": rng.randint(100, 10_000),
            "CATEGORY": rng.choice(_CATEGORIES),
            "SOLD_AT": f"{rng.randint(2016, 2023):04d}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}",
            "REGION_ID": rng.randint(1, DIM_ROWS),
        }
        for index in range(fact_rows)
    ]
    database = Database.from_rows(schema, {"regions": regions, "sales": sales})
    for table in database.tables():
        table.typed_store()
    return database


def _timed(backend, queries, database):
    results = []
    started = time.perf_counter()
    for query in queries:
        results.append(backend.execute(query, database))
    return time.perf_counter() - started, results


def _relative_errors(exact, approximate):
    """Per-group relative errors of every numeric aggregate column."""
    errors = []
    exact_by_key = {row[0]: row for row in exact.rows}
    assert len(approximate.rows) == len(exact.rows), "a group went missing"
    for row in approximate.rows:
        exact_row = exact_by_key[row[0]]
        for value, truth in zip(row[1:], exact_row[1:]):
            if isinstance(truth, (int, float)) and truth:
                errors.append(abs(value - truth) / abs(truth))
    return errors


def test_aqp_results_stay_within_reported_bounds():
    """Correctness half (CI-safe): bounded errors, exactness on declines."""
    database = _bench_database(CHECK_ROWS)
    exact = ColumnarBackend()
    approximate = ColumnarBackend(approximate=True)

    for text in QUERIES:
        query = parse_dvq(text)
        truth = exact.execute(query, database)
        sampled = approximate.execute(query, database)
        info = sampled.approximation
        assert info is not None, f"rewrite unexpectedly declined: {text}"
        assert sampled.columns == truth.columns
        errors = _relative_errors(truth, sampled)
        worst = max(errors, default=0.0)
        assert worst <= max(info.max_relative_error, 1e-9), (
            f"observed error {worst:.4f} above reported bound "
            f"{info.max_relative_error:.4f}: {text}"
        )

    for text in INELIGIBLE_QUERIES:
        query = parse_dvq(text)
        truth = exact.execute(query, database)
        sampled = approximate.execute(query, database)
        assert sampled.approximation is None, f"must decline to exact: {text}"
        assert sampled.rows == truth.rows, text


def test_aqp_throughput_is_at_least_10x_on_1m_row_aggregates(bench_report):
    """Timing half: >= 10x over exact columnar at 1M rows, errors <= 5%."""
    database = _bench_database(FACT_ROWS)
    queries = [parse_dvq(text) for text in QUERIES]

    exact = ColumnarBackend()
    approximate = ColumnarBackend(approximate=True)

    # untimed warm-up: builds the typed stores' lowered shadows, the
    # per-column statistics and the row samples every later pass shares
    _, expected = _timed(exact, queries, database)
    _timed(approximate, queries, database)

    exact_seconds = min(_timed(exact, queries, database)[0] for _ in range(3))
    approx_seconds, results = min(
        (_timed(approximate, queries, database) for _ in range(3)),
        key=lambda pair: pair[0],
    )

    worst_error = 0.0
    for text, truth, sampled in zip(QUERIES, expected, results):
        assert sampled.approximation is not None, text
        errors = _relative_errors(truth, sampled)
        worst_error = max(worst_error, max(errors, default=0.0))

    speedup = exact_seconds / approx_seconds
    print(
        f"\nAQP throughput over {len(queries)} aggregate/bin queries "
        f"({FACT_ROWS:,}-row fact table, 5% samples):"
    )
    print(f"  exact columnar:   {exact_seconds * 1e3:.1f} ms")
    print(f"  sampled columnar: {approx_seconds * 1e3:.1f} ms  ({speedup:.1f}x)")
    print(f"  worst observed relative error: {worst_error:.4f}")

    bench_report(
        speedup=speedup,
        rows=FACT_ROWS,
        queries=len(queries),
        worst_relative_error=worst_error,
        timings={"exact": exact_seconds, "approximate": approx_seconds},
    )

    # the acceptance bar: instant charts with visually exact values
    assert speedup >= 10.0, f"AQP only {speedup:.2f}x faster than exact columnar"
    assert worst_error <= 0.05, f"observed relative error {worst_error:.4f} > 5%"
