"""Runtime throughput — serial vs batched execution and LLM-cache effect.

This benchmark is the perf baseline for the :mod:`repro.runtime` subsystem.
The simulated chat model answers in microseconds, so a
:class:`~repro.runtime.latency.LatencyChatModel` re-introduces a fixed
per-completion latency (as a GIL-releasing sleep, like a socket read on a real
endpoint).  We then measure:

1. serial (``max_workers=1``) vs batched (``max_workers=8``) wall-clock time
   of ``GRED.trace_batch`` over the same examples — batched must be >= 2x
   faster while producing bit-identical traces; and
2. the hit rate and speed-up of an :class:`~repro.runtime.cache.LLMCache` on
   a repeated pass over the same test set.
"""

from __future__ import annotations

import time

from repro.core import GRED, GREDConfig
from repro.llm.simulated import SimulatedChatModel
from repro.nvbench.generator import build_corpus
from repro.runtime import BatchRunner, LatencyChatModel, aggregate_stage_timings, format_stage_table

#: Simulated per-completion latency; ~3 completions per traced example.
LATENCY_SECONDS = 0.02
EXAMPLE_COUNT = 16
BATCH_WORKERS = 8


def _prepared_gred(llm) -> tuple:
    dataset = build_corpus(scale=0.05, seed=11)
    model = GRED(GREDConfig(top_k=5), llm=llm)
    model.fit(dataset.train, dataset.catalog)
    return model, dataset


def test_batched_throughput_vs_serial(bench_report):
    llm = LatencyChatModel(SimulatedChatModel(), seconds_per_call=LATENCY_SECONDS)
    model, dataset = _prepared_gred(llm)
    examples = dataset.test[:EXAMPLE_COUNT]

    # Warm the per-database annotation cache so both timed runs do equal work.
    model.trace_batch(examples, dataset.catalog)

    serial_report = model.trace_batch(examples, dataset.catalog, runner=BatchRunner(max_workers=1))
    batched_report = model.trace_batch(
        examples, dataset.catalog, runner=BatchRunner(max_workers=BATCH_WORKERS)
    )

    speedup = serial_report.wall_seconds / batched_report.wall_seconds
    print(
        f"\nruntime throughput over {len(examples)} examples "
        f"({LATENCY_SECONDS * 1e3:.0f} ms simulated LLM latency, {llm.calls} completions):"
    )
    print(f"  serial  ({serial_report.max_workers} worker):  {serial_report.summary()}")
    print(f"  batched ({batched_report.max_workers} workers): {batched_report.summary()}")
    print(f"  speedup: {speedup:.1f}x")
    print(format_stage_table(aggregate_stage_timings(
        trace.timings for trace in batched_report.values()
    )))

    bench_report(
        speedup=speedup,
        rows=len(examples),
        timings={
            "serial": serial_report.wall_seconds,
            "batched": batched_report.wall_seconds,
        },
    )

    # identical traces, regardless of worker count (GREDTrace equality ignores timings)
    assert batched_report.values() == serial_report.values()
    assert serial_report.failure_count == batched_report.failure_count == 0
    # the acceptance bar: >= 2x throughput with >= 4 workers
    assert speedup >= 2.0, f"batched runtime only {speedup:.2f}x faster than serial"


def test_llm_cache_hit_rate_on_repeated_pass():
    llm = LatencyChatModel(SimulatedChatModel(), seconds_per_call=0.005)
    model, dataset = _prepared_gred(llm)
    cached = GRED(GREDConfig(top_k=5, use_llm_cache=True), llm=llm)
    cached.fit(dataset.train, dataset.catalog)
    examples = dataset.test[:EXAMPLE_COUNT]

    started = time.perf_counter()
    first = cached.predict_batch(examples, dataset.catalog)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    second = cached.predict_batch(examples, dataset.catalog)
    warm_seconds = time.perf_counter() - started

    stats = cached.llm_cache.stats
    print(f"\n{stats.summary()}")
    print(f"  cold pass: {cold_seconds:.2f}s, warm pass: {warm_seconds:.3f}s")

    assert first == second
    # every completion of the warm pass is served from the cache
    assert stats.hits >= len(examples) * 2
    assert warm_seconds < cold_seconds
