"""Index throughput — partitioned (IVF-style) vs exact search at scale.

This benchmark is the perf gate for the :mod:`repro.index` subsystem, on a
~50k-entry clustered library (synthetic unit vectors; text embeddings cluster
the same way by domain):

1. **Recall** — probing ``nprobe`` of the k-means partitions must find at
   least 95% of the exact top-5 neighbours;
2. **Throughput** — batched partitioned search must answer queries at >=
   ``MIN_SPEEDUP`` x the exact backend's rate (measured ~6x with
   ``nprobe/num_partitions`` = 16/128, on top of the partition fan-out
   across ``BatchRunner`` workers);
3. **Persistence** — reloading a snapshotted library must not re-embed
   anything (asserted via embedder call counts), and the recall/latency
   trade-off is reported on the real corpus via the workbench ablation.

CI runs the correctness half only (``make bench-index-check``, which skips
the timing test); the timing bar stays local / ``make bench-index`` where the
hardware is not shared.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.retriever import GREDRetriever
from repro.index import ExactIndex, IndexConfig, PartitionedIndex
from repro.nvbench.generator import build_corpus

pytestmark = pytest.mark.index

LIBRARY_SIZE = 50_000
DIMENSIONS = 64
CLUSTERS = 256
QUERY_COUNT = 256
TOP_K = 5
NUM_PARTITIONS = 128
NPROBE = 16
SEARCH_WORKERS = 4

#: Measured ~6-7x on a quiet multi-core machine; a throttled single-core CI
#: box reaches 2.6-3.0x (thread fan-out cannot overlap, and sustained load
#: lowers the clock), so the asserted bar sits below the knife edge while
#: still requiring a substantial win over brute force.
MIN_SPEEDUP = 2.5
MIN_RECALL = 0.95


def _unit(rows: np.ndarray) -> np.ndarray:
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


@pytest.fixture(scope="module")
def library():
    """A clustered ~50k vector library, its queries, and both backends."""
    rng = np.random.default_rng(97)
    centers = _unit(rng.normal(size=(CLUSTERS, DIMENSIONS)))
    assignment = rng.integers(0, CLUSTERS, size=LIBRARY_SIZE)
    rows = _unit(centers[assignment] + 0.15 * rng.normal(size=(LIBRARY_SIZE, DIMENSIONS)))
    queries = _unit(
        centers[rng.integers(0, CLUSTERS, size=QUERY_COUNT)]
        + 0.15 * rng.normal(size=(QUERY_COUNT, DIMENSIONS))
    )
    keys = [f"e{i:06d}" for i in range(LIBRARY_SIZE)]
    payloads = list(range(LIBRARY_SIZE))

    exact = ExactIndex()
    exact.add(keys, rows, payloads)
    partitioned = PartitionedIndex(
        num_partitions=NUM_PARTITIONS, nprobe=NPROBE, search_workers=SEARCH_WORKERS
    )
    partitioned.add(keys, rows, payloads)
    partitioned.search_matrix(queries[:1], TOP_K)  # pay k-means training up front
    return exact, partitioned, queries


def _recall(truth, approx) -> float:
    overlaps = [
        len({hit.key for hit in t} & {hit.key for hit in a}) / max(1, len(t))
        for t, a in zip(truth, approx)
    ]
    return sum(overlaps) / len(overlaps)


def test_partitioned_recall_at_5(library):
    exact, partitioned, queries = library
    recall = _recall(
        exact.search_matrix(queries, TOP_K), partitioned.search_matrix(queries, TOP_K)
    )
    print(
        f"\nrecall@{TOP_K} of partitioned ({NPROBE}/{NUM_PARTITIONS} partitions probed) "
        f"vs exact over {QUERY_COUNT} queries: {recall:.3f}"
    )
    assert recall >= MIN_RECALL, f"recall@{TOP_K} {recall:.3f} below {MIN_RECALL}"


def test_partitioned_results_identical_across_worker_counts(library):
    _, partitioned, queries = library
    serial = PartitionedIndex(num_partitions=NUM_PARTITIONS, nprobe=NPROBE, search_workers=1)
    matrix, keys, payloads = partitioned.snapshot()
    serial.add(keys, matrix, payloads)
    expected = serial.search_matrix(queries[:32], TOP_K)
    actual = partitioned.search_matrix(queries[:32], TOP_K)
    assert [[(h.key, h.score) for h in hits] for hits in actual] == [
        [(h.key, h.score) for h in hits] for hits in expected
    ]


def test_partitioned_throughput_vs_exact(library, bench_report):
    exact, partitioned, queries = library
    exact.search_matrix(queries[:8], TOP_K)  # warm both paths
    partitioned.search_matrix(queries[:8], TOP_K)

    # best-of-3 per side: one slow pass (a GC pause, a frequency dip on a
    # shared box) must not decide the bar
    exact_seconds = float("inf")
    partitioned_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        truth = exact.search_matrix(queries, TOP_K)
        exact_seconds = min(exact_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        approx = partitioned.search_matrix(queries, TOP_K)
        partitioned_seconds = min(partitioned_seconds, time.perf_counter() - started)

    speedup = exact_seconds / partitioned_seconds
    recall = _recall(truth, approx)
    print(
        f"\nindex throughput over a {LIBRARY_SIZE:,}-entry library, {QUERY_COUNT} queries:\n"
        f"  exact:       {exact_seconds:.3f}s ({QUERY_COUNT / exact_seconds:,.0f} q/s)\n"
        f"  partitioned: {partitioned_seconds:.3f}s ({QUERY_COUNT / partitioned_seconds:,.0f} q/s, "
        f"{SEARCH_WORKERS} workers)\n"
        f"  speedup: {speedup:.1f}x at recall@{TOP_K} {recall:.3f}"
    )
    bench_report(
        speedup=speedup,
        rows=LIBRARY_SIZE,
        queries=QUERY_COUNT,
        recall=recall,
        timings={"exact": exact_seconds, "partitioned": partitioned_seconds},
    )
    # the acceptance bar: a solid throughput win without giving up recall
    assert recall >= MIN_RECALL
    assert speedup >= MIN_SPEEDUP, f"partitioned only {speedup:.2f}x faster than exact"


def test_snapshot_load_skips_reembedding(tmp_path):
    """A prepared retriever restored from its snapshot embeds zero texts."""
    dataset = build_corpus(scale=0.05, seed=17)
    config = IndexConfig(snapshot_path=str(tmp_path / "library"))

    first = GREDRetriever(index_config=config)
    first.prepare(dataset.train)
    cold_embeds = first.embedder.texts_embedded
    assert cold_embeds >= 2 * len(dataset.train)  # both libraries embedded

    restored = GREDRetriever(index_config=config)
    restored.prepare(dataset.train)
    assert restored.embedder.texts_embedded == 0  # the library came from disk

    queries = [example.nlq for example in dataset.test[:10]]
    expected = first.retrieve_by_nlq_many(queries, top_k=TOP_K)
    actual = restored.retrieve_by_nlq_many(queries, top_k=TOP_K)
    assert [[(h.key, h.score) for h in hits] for hits in actual] == [
        [(h.key, h.score) for h in hits] for hits in expected
    ]
    # exactly one embedding call per query, nothing else
    assert restored.embedder.texts_embedded == len(queries)


def test_workbench_index_ablation_on_real_corpus(workbench):
    """Exact vs partitioned on the actual nvBench corpus: recall holds."""
    report = workbench.index_ablation(nprobe=4, query_limit=100)
    print(
        f"\nworkbench index ablation ({report['library_size']} entries, "
        f"{report['query_count']} queries, nprobe={report['nprobe']}):\n"
        f"  recall@{report['top_k']}: {report['recall']:.3f}\n"
        f"  exact {report['exact_seconds'] * 1e3:.1f} ms vs partitioned "
        f"{report['partitioned_seconds'] * 1e3:.1f} ms"
    )
    assert report["recall"] >= 0.9
