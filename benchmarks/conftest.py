"""Shared state for the benchmark harness.

A single workbench instance is reused by every benchmark so the corpus is
generated and the models are trained once.  The scale is reduced relative to
the paper (see EXPERIMENTS.md) so the full harness regenerates every table and
figure in a few minutes; pass ``--paper-scale`` to run at the paper's corpus
size.
"""

from __future__ import annotations

import gc
import json
import pathlib

import pytest

from repro.experiments import Workbench, WorkbenchConfig

#: Machine-readable bench results land next to this file as
#: ``BENCH_<name>.json`` (git-ignored), one per throughput module, so runs
#: can be diffed across commits without scraping pytest stdout.
BENCH_DIR = pathlib.Path(__file__).resolve().parent


@pytest.fixture(autouse=True)
def _collect_before_timing():
    """Start every benchmark with an empty GC backlog.

    Earlier modules (the fuzz sweep in particular) can leave enough
    allocation debt that a generational collection fires inside another
    benchmark's timed window; on a small CI box that alone moves a timing
    bar.  Collecting up front keeps each measurement self-contained.
    """
    gc.collect()
    yield


@pytest.fixture
def bench_report(request):
    """A callable writing this module's ``BENCH_<name>.json`` result file.

    The name is the module's ``test_<name>_throughput`` stem, so
    ``test_plan_throughput.py`` writes ``BENCH_plan.json``.  Call it with
    the headline numbers (``speedup=``, ``rows=``, ``timings={label:
    seconds}``, anything JSON-serialisable); repeated calls from one module
    merge into the same file, so multi-test modules accumulate one report.
    """

    def write(**payload) -> pathlib.Path:
        stem = request.module.__name__.rsplit(".", 1)[-1]
        name = stem.removeprefix("test_").removesuffix("_throughput")
        path = BENCH_DIR / f"BENCH_{name}.json"
        merged = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except ValueError:
                merged = {}
        merged.update(payload)
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        return path

    return write


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="Run the benchmark harness at the paper's full corpus scale (slow).",
    )


@pytest.fixture(scope="session")
def workbench(request) -> Workbench:
    if request.config.getoption("--paper-scale"):
        config = WorkbenchConfig(scale=1.0, seed=7, evaluation_limit=None)
    else:
        config = WorkbenchConfig(scale=0.08, seed=7, evaluation_limit=80)
    return Workbench(config)


@pytest.fixture(scope="session")
def trained_baselines(workbench):
    return workbench.baselines()


@pytest.fixture(scope="session")
def prepared_gred(workbench):
    return workbench.gred()
