"""Shared state for the benchmark harness.

A single workbench instance is reused by every benchmark so the corpus is
generated and the models are trained once.  The scale is reduced relative to
the paper (see EXPERIMENTS.md) so the full harness regenerates every table and
figure in a few minutes; pass ``--paper-scale`` to run at the paper's corpus
size.
"""

from __future__ import annotations

import gc

import pytest

from repro.experiments import Workbench, WorkbenchConfig


@pytest.fixture(autouse=True)
def _collect_before_timing():
    """Start every benchmark with an empty GC backlog.

    Earlier modules (the fuzz sweep in particular) can leave enough
    allocation debt that a generational collection fires inside another
    benchmark's timed window; on a small CI box that alone moves a timing
    bar.  Collecting up front keeps each measurement self-contained.
    """
    gc.collect()
    yield


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="Run the benchmark harness at the paper's full corpus scale (slow).",
    )


@pytest.fixture(scope="session")
def workbench(request) -> Workbench:
    if request.config.getoption("--paper-scale"):
        config = WorkbenchConfig(scale=1.0, seed=7, evaluation_limit=None)
    else:
        config = WorkbenchConfig(scale=0.08, seed=7, evaluation_limit=80)
    return Workbench(config)


@pytest.fixture(scope="session")
def trained_baselines(workbench):
    return workbench.baselines()


@pytest.fixture(scope="session")
def prepared_gred(workbench):
    return workbench.gred()
