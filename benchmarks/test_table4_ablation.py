"""Table 4 — ablation of GRED's three components on the three robustness sets."""

from __future__ import annotations

from repro.robustness.variants import VariantKind

PAPER_TABLE4 = {
    "GRED": {"nlq": 0.5998, "schema": 0.6193, "both": 0.5485},
    "GRED w/o RTN&DBG": {"nlq": 0.6277, "schema": 0.4213, "both": 0.3646},
    "GRED w/o RTN": {"nlq": 0.6108, "schema": 0.6210, "both": 0.5190},
    "GRED w/o DBG": {"nlq": 0.6168, "schema": 0.4247, "both": 0.3857},
}

_KIND_LABEL = {
    VariantKind.NLQ.value: "nlq",
    VariantKind.SCHEMA.value: "schema",
    VariantKind.BOTH.value: "both",
}


def test_table4_ablation(benchmark, workbench):
    def build_table():
        return workbench.ablation_table()

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)

    print("\nTable 4 — GRED ablation (measured overall accuracy):")
    header = f"{'Variant':<20}" + "".join(f"{label:>12}" for label in ("nlq", "schema", "both"))
    print(header)
    for name, per_kind in table.items():
        cells = {_KIND_LABEL[kind]: value for kind, value in per_kind.items()}
        print(f"{name:<20}" + "".join(f"{cells[label]:>11.1%} " for label in ("nlq", "schema", "both")))
    print("\nTable 4 — paper overall accuracy:")
    print(header)
    for name, cells in PAPER_TABLE4.items():
        print(f"{name:<20}" + "".join(f"{cells[label]:>11.1%} " for label in ("nlq", "schema", "both")))

    full = {_KIND_LABEL[k]: v for k, v in table["GRED"].items()}
    no_debug = {_KIND_LABEL[k]: v for k, v in table["GRED w/o DBG"].items()}
    no_both = {_KIND_LABEL[k]: v for k, v in table["GRED w/o RTN&DBG"].items()}

    # shape: removing the debugger hurts the schema-variant sets the most,
    # while the NLQ-only set is largely unaffected by the debugger
    assert full["schema"] >= no_debug["schema"]
    assert full["both"] >= no_both["both"]
    assert abs(full["nlq"] - no_debug["nlq"]) < 0.25
