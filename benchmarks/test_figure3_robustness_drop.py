"""Figure 3 — the accuracy collapse of existing text-to-vis models on nvBench-Rob.

Prints each baseline's overall accuracy on the original test split versus the
dual-variant nvBench-Rob split, mirroring the bar chart in Figure 3 of the
paper (RGVisNet 85.17 -> 24.81, Transformer 68.69 -> 12.77, Seq2Vis
79.73 -> 5.50).  The reproduction checks the *shape*: every baseline drops
sharply while GRED does not.
"""

from __future__ import annotations

from repro.evaluation.report import format_overall_series
from repro.robustness.variants import VariantKind

PAPER_FIGURE3 = {
    "Seq2Vis": {"nvBench": 0.7973, "nvBench-Rob_(nlq,schema)": 0.0550},
    "Transformer": {"nvBench": 0.6869, "nvBench-Rob_(nlq,schema)": 0.1277},
    "RGVisNet": {"nvBench": 0.8517, "nvBench-Rob_(nlq,schema)": 0.2481},
}


def test_figure3_robustness_drop(benchmark, workbench, trained_baselines, prepared_gred):
    def evaluate_series():
        return workbench.figure3_series(include_gred=True)

    series = benchmark.pedantic(evaluate_series, rounds=1, iterations=1)

    print("\nFigure 3 — overall accuracy, measured:")
    print(format_overall_series(series))
    print("\nFigure 3 — overall accuracy, paper:")
    print(format_overall_series(PAPER_FIGURE3))

    original = VariantKind.ORIGINAL.value
    dual = VariantKind.BOTH.value
    for name in ("Seq2Vis", "Transformer", "RGVisNet"):
        measured = series[name]
        # every baseline performs well on nvBench and collapses on the dual variant
        assert measured[original] > 0.4, name
        assert measured[dual] < measured[original] * 0.6, name
    # GRED does not collapse: it stays well above every baseline on the dual variant
    gred = series["GRED (Ours)"]
    best_baseline_dual = max(series[name][dual] for name in PAPER_FIGURE3)
    assert gred[dual] > best_baseline_dual
