"""ORDER BY / top-k throughput — vectorized sort keys + partitioned sort.

This benchmark is the perf acceptance bar for the vectorized ordering layer
(:mod:`repro.executor.ordering`) and its parallel kernels
(:func:`~repro.executor.parallel.partitioned_sort`,
:func:`~repro.executor.parallel.parallel_topk`): a 1M-row orders table
sorted and top-k-cut through the same columnar engine three ways — scalar
(``vectorize=False``, the per-row ``sorted()`` / bounded-heap path), serial
vectorized (``max_workers=1``, uint64 sort codes + ``argsort`` /
``argpartition``) and parallel.  The bars: serial vectorized >= 5x over the
scalar path, and the thread pool >= 2x more on a machine with >= 4 cores
(on smaller boxes the timing half still measures and records, then skips
the parallel bar).

Every timed query carries a LIMIT on purpose: result normalisation re-sorts
all *output* rows in Python, so an un-limited 1M-row ORDER BY would measure
that scalar re-sort, not the engine's kernels.

The correctness half always runs and is the half CI gates on
(``make bench-sort-check``): every worker count in {1, 2, 4, 8} must return
*bit-identical* rows on the full workload — at a smaller scale, over
NULL- and NaN-bearing sort columns — and match the row-interpreter oracle.

Run alone with ``make bench-sort`` (marker: ``sort``).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.workload import rows_agree

pytestmark = pytest.mark.sort

FACT_ROWS = 1_000_000
#: Scale of the always-on correctness half (the interpreter oracle is orders
#: of magnitude slower, so it gets a smaller but structurally identical db).
CHECK_ROWS = 40_000
WORKER_COUNTS = (1, 2, 4, 8)
VECTOR_SPEEDUP_BAR = 5.0
PARALLEL_SPEEDUP_BAR = 2.0

QUERIES = [
    # the headline shape: deep top-k cut on a NULL/NaN-bearing number column
    "Visualize BAR SELECT STATUS , AMOUNT FROM orders "
    "ORDER BY AMOUNT DESC LIMIT 100",
    "Visualize BAR SELECT ORDER_ID , AMOUNT FROM orders "
    "ORDER BY AMOUNT LIMIT 100",
    # text sort key: dictionary codes + case-insensitive rank
    "Visualize BAR SELECT STATUS , QUANTITY FROM orders "
    "ORDER BY STATUS LIMIT 500",
    # filtered top-k: the cut runs over the scan's surviving rows
    "Visualize BAR SELECT ORDER_ID , QUANTITY FROM orders "
    "WHERE QUANTITY BETWEEN 10 AND 90 ORDER BY QUANTITY DESC LIMIT 50",
]

_STATUSES = ["placed", "shipped", "Delivered", "returned", "cancelled", "HELD"]


def _bench_database(fact_rows: int) -> Database:
    schema = build_schema(
        "sort_bench",
        [
            (
                "orders",
                [
                    ("ORDER_ID", ColumnType.NUMBER, "id"),
                    ("AMOUNT", ColumnType.NUMBER, "price"),
                    ("QUANTITY", ColumnType.NUMBER, "quantity"),
                    ("STATUS", ColumnType.TEXT, "status"),
                ],
            ),
        ],
    )
    rng = random.Random(71)

    def amount():
        # ~2% NULL and ~1% NaN keep the full NUMBER < NaN < NULL rank on the
        # measured path; heavy duplicates put ties on every pivot boundary
        roll = rng.random()
        if roll < 0.02:
            return None
        if roll < 0.03:
            return float("nan")
        return float(rng.randint(1, 5_000))

    orders = [
        {
            "ORDER_ID": index + 1,
            "AMOUNT": amount(),
            "QUANTITY": rng.randint(1, 100),
            "STATUS": rng.choice(_STATUSES),
        }
        for index in range(fact_rows)
    ]
    database = Database.from_rows(schema, {"orders": orders})
    # pre-build the typed stores so the timings measure kernels, not the
    # one-time column materialisation every engine shares
    for table in database.tables():
        table.typed_store()
    return database


def _timed(backend, queries, database):
    results = []
    started = time.perf_counter()
    for query in queries:
        results.append(backend.execute(query, database))
    return time.perf_counter() - started, results


def _assert_identical(expected, actual, label):
    for query_text, left, right in zip(QUERIES, expected, actual):
        assert left.columns == right.columns, f"{label}: {query_text}"
        # NaN-aware row equality: NaN cells must match NaN cells exactly
        assert rows_agree(left.rows, right.rows), f"{label}: {query_text}"


def test_sorted_rows_are_identical_across_worker_counts():
    """Correctness half (CI-gated): bit-identical rows for every worker count."""
    database = _bench_database(CHECK_ROWS)
    queries = [parse_dvq(text) for text in QUERIES]
    oracle = [InterpreterBackend().execute(query, database) for query in queries]
    scalar = ColumnarBackend(vectorize=False)
    _assert_identical(
        oracle,
        [scalar.execute(query, database) for query in queries],
        "vectorize=False",
    )
    for workers in WORKER_COUNTS:
        # small morsels so the partitioned sort kernels engage at check scale
        backend = ColumnarBackend(max_workers=workers, morsel_size=4_096)
        actual = [backend.execute(query, database) for query in queries]
        _assert_identical(oracle, actual, f"max_workers={workers}")


def test_sort_throughput_is_at_least_5x_on_1m_rows(bench_report):
    """Timing half: vectorized >= 5x scalar; parallel >= 2x more (>= 4 cores)."""
    database = _bench_database(FACT_ROWS)
    queries = [parse_dvq(text) for text in QUERIES]
    cores = os.cpu_count() or 1
    workers = max(2, min(8, cores))

    scalar = ColumnarBackend(vectorize=False)
    serial = ColumnarBackend(max_workers=1)
    parallel = ColumnarBackend(max_workers=workers)

    _, expected = _timed(scalar, queries, database)  # warm-up, kept as oracle
    scalar_seconds = min(_timed(scalar, queries, database)[0] for _ in range(2))
    _timed(serial, queries, database)
    serial_seconds, serial_results = min(
        (_timed(serial, queries, database) for _ in range(3)),
        key=lambda pair: pair[0],
    )
    _timed(parallel, queries, database)
    parallel_seconds, parallel_results = min(
        (_timed(parallel, queries, database) for _ in range(3)),
        key=lambda pair: pair[0],
    )
    _assert_identical(expected, serial_results, "max_workers=1")
    _assert_identical(expected, parallel_results, f"max_workers={workers}")

    vector_speedup = scalar_seconds / serial_seconds
    parallel_speedup = serial_seconds / parallel_seconds
    print(
        f"\nsort/top-k throughput over {len(queries)} queries "
        f"({FACT_ROWS:,} rows, {cores} cores):"
    )
    for label, seconds in [
        ("columnar scalar (vectorize=False)", scalar_seconds),
        ("columnar vectorized (max_workers=1)", serial_seconds),
        (f"columnar parallel (max_workers={workers})", parallel_seconds),
    ]:
        print(
            f"  {label}:".ljust(44)
            + f"{seconds:.2f}s  ({scalar_seconds / seconds:.1f}x)"
        )

    bench_report(
        vector_speedup=vector_speedup,
        parallel_speedup=parallel_speedup,
        speedup=vector_speedup * parallel_speedup,
        rows=FACT_ROWS,
        queries=len(queries),
        cores=cores,
        workers=workers,
        timings={
            "scalar": scalar_seconds,
            "vectorized": serial_seconds,
            "parallel": parallel_seconds,
        },
    )

    assert vector_speedup >= VECTOR_SPEEDUP_BAR, (
        f"vectorized sort only {vector_speedup:.2f}x faster than the scalar path"
    )
    if cores < 4:
        pytest.skip(
            f"only {cores} core(s): the >= {PARALLEL_SPEEDUP_BAR}x parallel bar "
            f"needs a multi-core machine (measured {parallel_speedup:.2f}x, "
            "recorded anyway)"
        )
    assert parallel_speedup >= PARALLEL_SPEEDUP_BAR, (
        f"parallel sort only {parallel_speedup:.2f}x faster than max_workers=1"
    )
