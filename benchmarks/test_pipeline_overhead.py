"""Benchmark guard for the stage-plan machinery and the repair loop.

Two promises are enforced here:

* the declarative :class:`~repro.pipeline.plan.StagePlan` (contexts, records,
  middleware closures) adds **< 10% wall-clock overhead** over the historical
  direct three-call loop it replaced;
* the execution-guided repair loop buys a **strictly higher execution rate**
  on the seeded workbench corpus than the same pipeline with the loop
  disabled.
"""

from __future__ import annotations

from repro.core import GRED, GREDConfig
from repro.robustness.variants import VariantKind
from repro.runtime.timing import Stopwatch

#: Examples per timing loop and repetitions per measurement (min is kept).
N_EXAMPLES = 30
REPEATS = 3
OVERHEAD_BUDGET = 0.10


def _direct_three_call_loop(model: GRED, pairs) -> None:
    """The pre-refactor pipeline body: generate/retune/debug called by hand."""
    for nlq, database in pairs:
        dvq_gen = model.generator.generate(nlq, database)
        dvq_rtn = model.retuner.retune(dvq_gen) if dvq_gen else dvq_gen
        if dvq_rtn:
            model.debugger.debug(dvq_rtn, database)


def _plan_loop(model: GRED, pairs) -> None:
    for nlq, database in pairs:
        model.trace(nlq, database)


def _best_of(loop, model: GRED, pairs) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        with Stopwatch() as watch:
            loop(model, pairs)
        best = min(best, watch.seconds)
    return best


def test_stage_plan_overhead_is_below_ten_percent(workbench):
    dataset = workbench.dataset
    model = GRED(GREDConfig(top_k=10, use_llm_cache=False)).fit(
        dataset.train, dataset.catalog
    )
    pairs = [
        (example.nlq, dataset.catalog.get(example.db_id))
        for example in dataset.test[:N_EXAMPLES]
    ]
    # one warm-up pass so database annotations are cached for both loops
    _plan_loop(model, pairs)
    direct = _best_of(_direct_three_call_loop, model, pairs)
    planned = _best_of(_plan_loop, model, pairs)
    overhead = planned / direct - 1.0
    print(
        f"\nstage-plan overhead: direct {direct * 1e3:.1f} ms, "
        f"plan {planned * 1e3:.1f} ms over {len(pairs)} traces "
        f"({overhead:+.1%}, budget {OVERHEAD_BUDGET:.0%})"
    )
    assert planned <= direct * (1.0 + OVERHEAD_BUDGET), (
        f"stage-plan machinery added {overhead:.1%} overhead "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


def test_repair_loop_execution_rate_uplift(workbench):
    """Records the headline number: executability bought by repair rounds."""
    report = workbench.repair_uplift(kind=VariantKind.BOTH, max_repair_rounds=2)
    without = report["execution_rate_without_repair"]
    with_repair = report["execution_rate_with_repair"]
    print(
        f"\nexecution rate on {report['variant']}: {without:.3f} without repair, "
        f"{with_repair:.3f} with repair (uplift {report['uplift']:+.3f}); "
        f"{report['repair_summary']}"
    )
    assert without is not None and with_repair is not None
    assert with_repair > without, "repair loop must strictly raise the execution rate"
    assert report["repair_summary"].repaired >= 1
