"""Execution throughput — interpreter vs the DVQ->SQL SQLite backend.

This benchmark is the perf baseline for the :mod:`repro.sql` subsystem.  A
single 50k-row table is generated with
:class:`~repro.database.datagen.DataGenerator`; a representative mix of DVQs
(filters, group-bys, binning, top-k) is then executed by both engines and the
wall-clock speed-up recorded.  SQLite pays a one-off bulk-load on its first
query (included in its timing below), after which every execution runs at
engine speed — the acceptance bar is a >= 2x end-to-end speed-up, and in
practice the gap is one to two orders of magnitude.

Both engines must also return identical (normalised) results for every
benchmark query — throughput without equivalence would be meaningless.
"""

from __future__ import annotations

import time

from repro.database import DataGenerator
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import InterpreterBackend
from repro.sql import SQLiteBackend

ROW_COUNT = 50_000

QUERIES = [
    "Visualize BAR SELECT REGION , COUNT(*) FROM sales GROUP BY REGION",
    "Visualize BAR SELECT REGION , AVG(AMOUNT) FROM sales WHERE AMOUNT > 500 GROUP BY REGION",
    "Visualize LINE SELECT SOLD_ON , SUM(AMOUNT) FROM sales BIN SOLD_ON BY YEAR",
    "Visualize BAR SELECT AMOUNT , COUNT(AMOUNT) FROM sales BIN AMOUNT BY INTERVAL",
    "Visualize PIE SELECT PRODUCT , COUNT(*) FROM sales GROUP BY PRODUCT "
    "ORDER BY COUNT(*) DESC LIMIT 5",
]


def _sales_database():
    schema = build_schema(
        "sales_bench",
        [
            (
                "sales",
                [
                    ("SALE_ID", ColumnType.NUMBER, "id"),
                    ("PRODUCT", ColumnType.TEXT, "product"),
                    ("REGION", ColumnType.TEXT, "city"),
                    ("AMOUNT", ColumnType.NUMBER, "price"),
                    ("SOLD_ON", ColumnType.DATE, "date"),
                ],
            )
        ],
    )
    return DataGenerator(seed=17).populate(schema, rows_per_table=ROW_COUNT)


def _timed(backend, queries, database):
    results = []
    started = time.perf_counter()
    for query in queries:
        results.append(backend.execute(query, database))
    return time.perf_counter() - started, results


def test_sqlite_backend_is_at_least_2x_faster_on_50k_rows(bench_report):
    database = _sales_database()
    queries = [parse_dvq(text) for text in QUERIES]
    interpreter = InterpreterBackend()
    sqlite = SQLiteBackend()

    interpreter_seconds, expected = _timed(interpreter, queries, database)
    # SQLite timing includes its one-off bulk load of the 50k rows
    sqlite_seconds, actual = _timed(sqlite, queries, database)
    warm_seconds, _ = _timed(sqlite, queries, database)

    for query_text, left, right in zip(QUERIES, expected, actual):
        assert left.columns == right.columns, query_text
        assert left.rows == right.rows, query_text

    speedup = interpreter_seconds / sqlite_seconds
    warm_speedup = interpreter_seconds / warm_seconds
    print(
        f"\nsql backend throughput over {len(queries)} queries on a "
        f"{ROW_COUNT:,}-row table:"
    )
    print(f"  interpreter:          {interpreter_seconds:.2f}s")
    print(f"  sqlite (incl. load):  {sqlite_seconds:.2f}s  ({speedup:.1f}x)")
    print(f"  sqlite (warm cache):  {warm_seconds:.3f}s  ({warm_speedup:.0f}x)")

    bench_report(
        speedup=speedup,
        rows=ROW_COUNT,
        queries=len(queries),
        timings={
            "interpreter": interpreter_seconds,
            "sqlite_with_load": sqlite_seconds,
            "sqlite_warm": warm_seconds,
        },
    )

    # the acceptance bar: >= 2x even when paying the bulk load
    assert speedup >= 2.0, f"sqlite backend only {speedup:.2f}x faster than the interpreter"
    assert warm_speedup >= speedup
