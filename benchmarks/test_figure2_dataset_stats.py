"""Figure 2 — statistics of the nvBench-Rob development corpus.

Regenerates the chart-type distribution, the hardness distribution and the
catalog-level counts, and prints them next to the numbers reported in the
paper's Figure 2.  The benchmark measures corpus + robustness-suite
construction time.
"""

from __future__ import annotations

from repro.nvbench.stats import (
    PAPER_CATALOG_COUNTS,
    PAPER_CHART_TYPE_COUNTS,
    PAPER_HARDNESS_COUNTS,
    compute_statistics,
)
from repro.nvbench.generator import CorpusConfig, NVBenchGenerator
from repro.robustness.variants import RobustnessSuiteBuilder


def _print_side_by_side(title, measured, paper, total_measured, total_paper):
    print(f"\n{title}")
    print(f"{'key':<22}{'measured':>12}{'measured %':>12}{'paper':>10}{'paper %':>10}")
    for key, paper_value in paper.items():
        measured_value = measured.get(key, 0)
        measured_share = measured_value / total_measured if total_measured else 0.0
        paper_share = paper_value / total_paper if total_paper else 0.0
        print(f"{key:<22}{measured_value:>12}{measured_share:>11.1%}{paper_value:>10}{paper_share:>9.1%}")


def test_figure2_dataset_statistics(benchmark, workbench):
    dataset = workbench.dataset

    def build_suite():
        return RobustnessSuiteBuilder().build(dataset)

    suite = benchmark(build_suite)
    statistics = compute_statistics(suite.original.examples, dataset.catalog)

    _print_side_by_side(
        "Figure 2 (top): chart-type distribution of the robustness dev set",
        statistics.chart_type_counts,
        PAPER_CHART_TYPE_COUNTS,
        statistics.total_examples,
        sum(PAPER_CHART_TYPE_COUNTS.values()),
    )
    _print_side_by_side(
        "Figure 2 (middle): hardness distribution",
        statistics.hardness_counts,
        PAPER_HARDNESS_COUNTS,
        statistics.total_examples,
        sum(PAPER_HARDNESS_COUNTS.values()),
    )
    print("\nFigure 2 (bottom): catalog counts (measured vs paper)")
    for key, paper_value in PAPER_CATALOG_COUNTS.items():
        print(f"{key:<24}{statistics.catalog_counts.get(key, 0):>12.2f}{paper_value:>12.2f}")

    # shape assertions: bar charts dominate and medium is the largest hardness band
    bar_share = statistics.chart_type_counts.get("BAR", 0) / statistics.total_examples
    assert bar_share > 0.5
    assert max(statistics.hardness_counts, key=statistics.hardness_counts.get) in ("Medium", "Hard")


def test_figure2_full_corpus_generation_speed(benchmark):
    """Benchmark raw corpus generation (catalog + examples + splits) at small scale."""
    def generate():
        return NVBenchGenerator(CorpusConfig(scale=0.05, seed=3)).generate()

    dataset = benchmark(generate)
    assert len(dataset) > 100
