"""Table 2 — results on nvBench-Rob_schema (schema-only variants)."""

from __future__ import annotations

from repro.evaluation.report import format_accuracy_table
from repro.robustness.variants import VariantKind

PAPER_TABLE2 = {
    "Seq2Vis": 0.1455,
    "Transformer": 0.2961,
    "RGVisNet": 0.4491,
    "GRED (Ours)": 0.6193,
}


def test_table2_schema_variants(benchmark, workbench, trained_baselines, prepared_gred):
    def build_table():
        return workbench.table_results(VariantKind.SCHEMA)

    results = benchmark.pedantic(build_table, rounds=1, iterations=1)

    print("\n" + format_accuracy_table(results, title="Table 2 — nvBench-Rob_schema (measured)"))
    print("\nPaper overall accuracies: " + ", ".join(f"{k}={v:.2%}" for k, v in PAPER_TABLE2.items()))

    gred = results["GRED (Ours)"]
    for name in ("Seq2Vis", "Transformer", "RGVisNet"):
        assert gred.overall_accuracy > results[name].overall_accuracy, name
    # the debugger's contribution shows up as a data/axis gap over the best baseline
    best_baseline_axis = max(results[name].axis_accuracy for name in ("Seq2Vis", "Transformer", "RGVisNet"))
    assert gred.axis_accuracy >= best_baseline_axis
