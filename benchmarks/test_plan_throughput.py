"""Execution throughput — the columnar plan engine vs the legacy row interpreter.

This benchmark is the perf baseline for the :mod:`repro.plan` +
:class:`~repro.executor.ColumnarBackend` subsystem.  A 50k-row fact table
joined to a 40-row dimension table is built deterministically; a
representative join + group + top-k workload is then executed by the legacy
row-at-a-time interpreter and by the columnar engine, and the wall-clock
speed-up recorded.  The acceptance bar is a >= 3x end-to-end speed-up; the
optimizer ablation (predicate pushdown and projection pruning individually
disabled, plus the fully unoptimized plan) is reported alongside.

Every engine variant must also return identical (normalised) results for
every benchmark query — throughput without equivalence would be meaningless.

Run alone with ``make bench-plan`` (marker: ``plan``); CI runs the
correctness half via ``make bench-plan-check``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.plan import OptimizerConfig

pytestmark = pytest.mark.plan

FACT_ROWS = 50_000
DIM_ROWS = 40

QUERIES = [
    # the headline shape: join + filter + group + aggregate + top-k
    "Visualize BAR SELECT DEPT_NAME , AVG(SALARY) FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
    "WHERE SALARY > 2000 GROUP BY DEPT_NAME ORDER BY AVG(SALARY) DESC LIMIT 5",
    "Visualize PIE SELECT CITY , COUNT(*) FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
    "GROUP BY CITY ORDER BY COUNT(*) DESC LIMIT 4",
    "Visualize BAR SELECT DEPT_NAME , SUM(SALARY) FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
    "WHERE CITY = 'Zurich' OR CITY = 'Tokyo' GROUP BY DEPT_NAME",
    "Visualize LINE SELECT HIRE_DATE , COUNT(*) FROM employees "
    "WHERE SALARY BETWEEN 1000 AND 8000 BIN HIRE_DATE BY YEAR",
]

_CITIES = ["Zurich", "Tokyo", "Lisbon", "Austin", "Oslo", "Seoul", "Quito"]


def _bench_database() -> Database:
    schema = build_schema(
        "plan_bench",
        [
            (
                "employees",
                [
                    ("EMP_ID", ColumnType.NUMBER, "id"),
                    ("SALARY", ColumnType.NUMBER, "salary"),
                    ("HIRE_DATE", ColumnType.DATE, "date"),
                    ("DEPT_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "departments",
                [
                    ("DEPT_ID", ColumnType.NUMBER, "id"),
                    ("DEPT_NAME", ColumnType.TEXT, "department"),
                    ("CITY", ColumnType.TEXT, "city"),
                ],
            ),
        ],
        foreign_keys=[("employees", "DEPT_ID", "departments", "DEPT_ID")],
    )
    rng = random.Random(23)
    departments = [
        {
            "DEPT_ID": index + 1,
            "DEPT_NAME": f"Dept {index + 1:02d}",
            "CITY": rng.choice(_CITIES),
        }
        for index in range(DIM_ROWS)
    ]
    employees = [
        {
            "EMP_ID": index + 1,
            "SALARY": rng.randint(100, 10_000),
            "HIRE_DATE": f"{rng.randint(1995, 2023):04d}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}",
            "DEPT_ID": rng.randint(1, DIM_ROWS),
        }
        for index in range(FACT_ROWS)
    ]
    return Database.from_rows(
        schema, {"departments": departments, "employees": employees}
    )


def _timed(backend, queries, database):
    results = []
    started = time.perf_counter()
    for query in queries:
        results.append(backend.execute(query, database))
    return time.perf_counter() - started, results


def _assert_identical(expected, actual, label):
    for query_text, left, right in zip(QUERIES, expected, actual):
        assert left.columns == right.columns, f"{label}: {query_text}"
        assert left.rows == right.rows, f"{label}: {query_text}"


def test_plan_engine_matches_legacy_interpreter_on_the_bench_workload():
    """Correctness half (CI-safe): every optimizer variant, identical results."""
    database = _bench_database()
    queries = [parse_dvq(text) for text in QUERIES]
    expected = [InterpreterBackend().execute(query, database) for query in queries]
    variants = {
        "optimized": ColumnarBackend(),
        "no pushdown": ColumnarBackend(optimizer_config=OptimizerConfig(pushdown=False)),
        "no pruning": ColumnarBackend(optimizer_config=OptimizerConfig(pruning=False)),
        "unoptimized": ColumnarBackend(optimize=False),
    }
    for label, backend in variants.items():
        actual = [backend.execute(query, database) for query in queries]
        _assert_identical(expected, actual, label)


def test_plan_engine_throughput_is_at_least_3x_on_50k_row_join(bench_report):
    """Timing half: >= 3x over the legacy interpreter, ablations reported."""
    database = _bench_database()
    queries = [parse_dvq(text) for text in QUERIES]

    # untimed warm-up: the first columnar execution pays the one-time typed
    # column store + lowered-text shadow builds every variant then shares;
    # the timings below compare engines, not cache construction
    _timed(ColumnarBackend(), queries, database)

    interpreter_seconds, expected = _timed(InterpreterBackend(), queries, database)
    columnar_seconds, actual = _timed(ColumnarBackend(), queries, database)
    _assert_identical(expected, actual, "optimized")

    ablations = {
        "no pushdown": OptimizerConfig(pushdown=False),
        "no pruning": OptimizerConfig(pruning=False),
        "no pushdown+pruning": OptimizerConfig(pushdown=False, pruning=False),
    }
    ablation_seconds = {
        label: _timed(
            ColumnarBackend(optimizer_config=config), queries, database
        )[0]
        for label, config in ablations.items()
    }
    unoptimized_seconds, _ = _timed(ColumnarBackend(optimize=False), queries, database)

    speedup = interpreter_seconds / columnar_seconds
    print(
        f"\nplan-engine throughput over {len(queries)} queries "
        f"({FACT_ROWS:,}-row fact join {DIM_ROWS}-row dim):"
    )
    rows = [("legacy row interpreter", interpreter_seconds), ("columnar (optimized)", columnar_seconds)]
    rows += [(f"columnar ({label})", seconds) for label, seconds in ablation_seconds.items()]
    rows.append(("columnar (unoptimized)", unoptimized_seconds))
    for label, seconds in rows:
        print(
            f"  {label}:".ljust(34)
            + f"{seconds:.2f}s  ({interpreter_seconds / seconds:.1f}x)"
        )

    bench_report(
        speedup=speedup,
        rows=FACT_ROWS,
        queries=len(queries),
        timings={label: seconds for label, seconds in rows},
    )

    # the acceptance bar: the repair loop and evaluation runs ride this engine
    assert speedup >= 3.0, f"columnar engine only {speedup:.2f}x faster than the interpreter"
    # the full rule set must not be slower than running with no optimizer at all
    assert columnar_seconds <= unoptimized_seconds * 1.5
