"""A small NumPy neural substrate used by the baseline text-to-vis models.

The original baselines (Seq2Vis, Transformer, RGVisNet) are PyTorch
encoder-decoders.  Offline we keep the part of those models that the paper's
robustness analysis actually exercises — a trained encoder that predicts the
query *sketch* (chart type, aggregation, ordering, grouping, binning) from the
question, combined with a lexical copy mechanism for schema tokens — and
implement the trainable encoder as NumPy multi-layer perceptrons over hashed
bag-of-words features, trained with Adam and manual backpropagation.
"""

from repro.neural.vocab import Vocabulary
from repro.neural.features import BagOfWordsFeaturizer
from repro.neural.mlp import MLPClassifier, TrainingConfig
from repro.neural.multihead import MultiHeadSketchClassifier

__all__ = [
    "BagOfWordsFeaturizer",
    "MLPClassifier",
    "MultiHeadSketchClassifier",
    "TrainingConfig",
    "Vocabulary",
]
