"""Token and label vocabularies."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class Vocabulary:
    """A bidirectional token <-> index mapping with an UNK entry at index 0."""

    UNK = "<unk>"

    def __init__(self, tokens: Optional[Iterable[str]] = None):
        self._token_to_index: Dict[str, int] = {self.UNK: 0}
        self._index_to_token: List[str] = [self.UNK]
        if tokens:
            for token in tokens:
                self.add(token)

    def __len__(self) -> int:
        return len(self._index_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_index

    def add(self, token: str) -> int:
        if token not in self._token_to_index:
            self._token_to_index[token] = len(self._index_to_token)
            self._index_to_token.append(token)
        return self._token_to_index[token]

    def index(self, token: str) -> int:
        return self._token_to_index.get(token, 0)

    def token(self, index: int) -> str:
        if 0 <= index < len(self._index_to_token):
            return self._index_to_token[index]
        return self.UNK

    def tokens(self) -> List[str]:
        return list(self._index_to_token)

    @classmethod
    def from_corpus(cls, documents: Iterable[Iterable[str]], min_count: int = 1,
                    max_size: Optional[int] = None) -> "Vocabulary":
        """Build a vocabulary from tokenised documents, most frequent first."""
        counts: Dict[str, int] = {}
        for document in documents:
            for token in document:
                counts[token] = counts.get(token, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        vocabulary = cls()
        for token, count in ranked:
            if count < min_count:
                continue
            if max_size is not None and len(vocabulary) >= max_size:
                break
            vocabulary.add(token)
        return vocabulary
