"""A NumPy multi-layer perceptron classifier trained with Adam."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the classifier training loop."""

    hidden_size: int = 64
    epochs: int = 12
    batch_size: int = 64
    learning_rate: float = 0.01
    weight_decay: float = 1e-5
    seed: int = 3


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class _Adam:
    """Adam optimiser state for a list of parameter arrays."""

    def __init__(self, parameters, learning_rate: float):
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.m = [np.zeros_like(p) for p in parameters]
        self.v = [np.zeros_like(p) for p in parameters]
        self.t = 0
        self.beta1 = 0.9
        self.beta2 = 0.999
        self.eps = 1e-8

    def step(self, gradients) -> None:
        self.t += 1
        for index, (parameter, gradient) in enumerate(zip(self.parameters, gradients)):
            self.m[index] = self.beta1 * self.m[index] + (1 - self.beta1) * gradient
            self.v[index] = self.beta2 * self.v[index] + (1 - self.beta2) * gradient ** 2
            m_hat = self.m[index] / (1 - self.beta1 ** self.t)
            v_hat = self.v[index] / (1 - self.beta2 ** self.t)
            parameter -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


class MLPClassifier:
    """One-hidden-layer ReLU MLP with softmax output and manual backprop."""

    def __init__(self, input_dim: int, num_classes: int, config: TrainingConfig = TrainingConfig()):
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.config = config
        rng = np.random.default_rng(config.seed)
        scale1 = np.sqrt(2.0 / input_dim)
        scale2 = np.sqrt(2.0 / config.hidden_size)
        self.w1 = rng.normal(0.0, scale1, size=(input_dim, config.hidden_size))
        self.b1 = np.zeros(config.hidden_size)
        self.w2 = rng.normal(0.0, scale2, size=(config.hidden_size, num_classes))
        self.b2 = np.zeros(num_classes)
        self._optimizer = _Adam([self.w1, self.b1, self.w2, self.b2], config.learning_rate)
        self.loss_history: list = []

    # -- forward / backward ----------------------------------------------------

    def _forward(self, inputs: np.ndarray):
        hidden_pre = inputs @ self.w1 + self.b1
        hidden = np.maximum(hidden_pre, 0.0)
        logits = hidden @ self.w2 + self.b2
        return hidden_pre, hidden, logits

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        _, _, logits = self._forward(inputs)
        return _softmax(logits)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        return self.predict_proba(inputs).argmax(axis=1)

    def fit(self, inputs: np.ndarray, labels: Sequence[int],
            sample_weight: Optional[np.ndarray] = None) -> "MLPClassifier":
        """Train with mini-batch Adam on cross-entropy loss."""
        labels = np.asarray(labels, dtype=np.int64)
        count = inputs.shape[0]
        if count == 0:
            return self
        if sample_weight is None:
            sample_weight = np.ones(count)
        rng = np.random.default_rng(self.config.seed)
        for _ in range(self.config.epochs):
            order = rng.permutation(count)
            epoch_loss = 0.0
            for start in range(0, count, self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                batch_inputs = inputs[batch]
                batch_labels = labels[batch]
                batch_weights = sample_weight[batch]
                loss = self._train_batch(batch_inputs, batch_labels, batch_weights)
                epoch_loss += loss * len(batch)
            self.loss_history.append(epoch_loss / count)
        return self

    def _train_batch(self, inputs: np.ndarray, labels: np.ndarray, weights: np.ndarray) -> float:
        batch_size = inputs.shape[0]
        hidden_pre, hidden, logits = self._forward(inputs)
        probabilities = _softmax(logits)
        correct = probabilities[np.arange(batch_size), labels]
        loss = float(np.mean(-np.log(np.clip(correct, 1e-12, None)) * weights))

        grad_logits = probabilities.copy()
        grad_logits[np.arange(batch_size), labels] -= 1.0
        grad_logits *= (weights / batch_size)[:, None]

        grad_w2 = hidden.T @ grad_logits + self.config.weight_decay * self.w2
        grad_b2 = grad_logits.sum(axis=0)
        grad_hidden = grad_logits @ self.w2.T
        grad_hidden[hidden_pre <= 0] = 0.0
        grad_w1 = inputs.T @ grad_hidden + self.config.weight_decay * self.w1
        grad_b1 = grad_hidden.sum(axis=0)

        self._optimizer.step([grad_w1, grad_b1, grad_w2, grad_b2])
        return loss

    def accuracy(self, inputs: np.ndarray, labels: Sequence[int]) -> float:
        labels = np.asarray(labels)
        if len(labels) == 0:
            return 0.0
        return float((self.predict(inputs) == labels).mean())
