"""Feature extraction for the neural sketch classifiers."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.embeddings.tokenization import word_tokens
from repro.neural.vocab import Vocabulary


class BagOfWordsFeaturizer:
    """Maps questions to L2-normalised bag-of-words (uni+bi-gram) vectors."""

    def __init__(self, vocabulary: Optional[Vocabulary] = None, use_bigrams: bool = True):
        self.vocabulary = vocabulary or Vocabulary()
        self.use_bigrams = use_bigrams

    def tokens(self, text: str) -> List[str]:
        unigrams = word_tokens(text)
        if not self.use_bigrams:
            return unigrams
        bigrams = [f"{a}_{b}" for a, b in zip(unigrams, unigrams[1:])]
        return unigrams + bigrams

    def fit(self, texts: Iterable[str], min_count: int = 1, max_size: int = 20000) -> "BagOfWordsFeaturizer":
        self.vocabulary = Vocabulary.from_corpus(
            (self.tokens(text) for text in texts), min_count=min_count, max_size=max_size
        )
        return self

    @property
    def dimension(self) -> int:
        return len(self.vocabulary)

    def transform_one(self, text: str) -> np.ndarray:
        vector = np.zeros(self.dimension, dtype=np.float64)
        for token in self.tokens(text):
            vector[self.vocabulary.index(token)] += 1.0
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.vstack([self.transform_one(text) for text in texts])
