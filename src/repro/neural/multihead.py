"""A multi-head sketch classifier: one MLP head per sketch attribute."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.neural.features import BagOfWordsFeaturizer
from repro.neural.mlp import MLPClassifier, TrainingConfig


@dataclass
class _Head:
    labels: List[str]
    classifier: Optional[MLPClassifier] = None
    label_to_index: Dict[str, int] = field(default_factory=dict)


class MultiHeadSketchClassifier:
    """Predicts several categorical sketch attributes from one question encoding.

    Each head (chart type, aggregate, order direction, ...) is an independent
    softmax classifier over the shared bag-of-words features, matching how the
    original seq2seq baselines decode sketch keywords from the encoded question.
    """

    def __init__(self, config: TrainingConfig = TrainingConfig(),
                 featurizer: Optional[BagOfWordsFeaturizer] = None):
        self.config = config
        self.featurizer = featurizer or BagOfWordsFeaturizer()
        self._heads: Dict[str, _Head] = {}
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def head_names(self) -> List[str]:
        return list(self._heads)

    def fit(self, questions: Sequence[str], targets: Sequence[Dict[str, str]]) -> "MultiHeadSketchClassifier":
        """Train every head from per-question target dictionaries.

        ``targets[i]`` maps head name to the gold label string of question ``i``.
        """
        if len(questions) != len(targets):
            raise ValueError("questions and targets must have the same length")
        self.featurizer.fit(questions)
        features = self.featurizer.transform(questions)
        head_names = sorted({name for target in targets for name in target})
        for name in head_names:
            labels = sorted({target[name] for target in targets if name in target})
            head = _Head(labels=labels, label_to_index={label: i for i, label in enumerate(labels)})
            if len(labels) < 2:
                self._heads[name] = head
                continue
            rows: List[int] = []
            encoded: List[int] = []
            for index, target in enumerate(targets):
                if name in target:
                    rows.append(index)
                    encoded.append(head.label_to_index[target[name]])
            classifier = MLPClassifier(
                input_dim=self.featurizer.dimension,
                num_classes=len(labels),
                config=self.config,
            )
            classifier.fit(features[rows], encoded)
            head.classifier = classifier
            self._heads[name] = head
        self._fitted = True
        return self

    def predict(self, question: str) -> Dict[str, str]:
        """Predict a label for every head."""
        if not self._fitted:
            raise RuntimeError("MultiHeadSketchClassifier.predict called before fit")
        features = self.featurizer.transform_one(question)[None, :]
        prediction: Dict[str, str] = {}
        for name, head in self._heads.items():
            if head.classifier is None:
                prediction[name] = head.labels[0] if head.labels else ""
                continue
            index = int(head.classifier.predict(features)[0])
            prediction[name] = head.labels[index]
        return prediction

    def accuracy(self, questions: Sequence[str], targets: Sequence[Dict[str, str]]) -> Dict[str, float]:
        """Per-head accuracy on a labelled evaluation set."""
        features = self.featurizer.transform(questions)
        scores: Dict[str, float] = {}
        for name, head in self._heads.items():
            if head.classifier is None:
                continue
            rows: List[int] = []
            encoded: List[int] = []
            for index, target in enumerate(targets):
                if name in target and target[name] in head.label_to_index:
                    rows.append(index)
                    encoded.append(head.label_to_index[target[name]])
            if rows:
                scores[name] = head.classifier.accuracy(features[rows], encoded)
        return scores
