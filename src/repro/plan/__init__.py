"""Logical query plans: one IR between the DVQ AST and every execution engine.

The subpackage has three layers:

* :mod:`repro.plan.nodes` — the immutable plan IR (Scan / Join / Filter /
  Bin / Aggregate / Project / Sort / Limit) plus the resolved-column and
  predicate algebra both engines consume;
* :mod:`repro.plan.planner` — :func:`plan_query`, lowering a parsed
  :class:`~repro.dvq.nodes.DVQuery` to the canonical plan with all schema
  resolution (and its interpreter-compatibility quirks) done once;
* :mod:`repro.plan.optimizer` — :func:`optimize` with the rule set in
  :class:`OptimizerConfig` (constant folding incl. the null sentinel,
  predicate pushdown, hash-join selection, projection pruning), plus the
  cost-based rules — join-order enumeration, hash-build-side selection,
  filter-cascade ordering — driven by :class:`~repro.plan.cost.CostModel`
  over the engine statistics in :mod:`repro.database.statistics`;
* :mod:`repro.plan.sampling` — the AQP rewrite: eligible aggregate plans run
  over a :class:`~repro.plan.nodes.Sample` of the largest table with
  post-execution scale-up and CLT error bounds.

The columnar physical engine (:class:`repro.executor.ColumnarBackend`) runs
optimized plans over column batches; the SQL compiler
(:class:`repro.sql.DVQToSQLCompiler`) renders the canonical plan as SQLite
SQL.  ``plan.explain()`` prints any plan as an indented operator tree
(``explain(statistics=...)`` annotates estimated cardinality and cost) —
see ``examples/plan_explain.py``.
"""

# import order matters: nodes and optimizer must be initialised before
# planner, whose executor imports transitively load repro.executor.columnar
# (which needs repro.plan.nodes / repro.plan.optimizer mid-import)
from repro.plan.nodes import (
    HASH,
    NESTED_LOOP,
    Aggregate,
    AggregateOutput,
    Bin,
    BinKey,
    BinOutput,
    ColumnOutput,
    Comparison,
    Connective,
    ConstPredicate,
    Filter,
    GroupKey,
    Join,
    Limit,
    OutputExpr,
    PlanNode,
    Predicate,
    Project,
    ResolvedColumn,
    Sample,
    Scan,
    Sort,
    iter_nodes,
    output_labels,
    output_node,
)
from repro.plan.cost import CostModel
from repro.plan.optimizer import (
    DEFAULT_OPTIMIZER,
    OptimizerConfig,
    fold_predicate,
    optimize,
    order_filter_cascades,
    prune_projections,
    push_down_predicates,
    reorder_joins,
    select_build_sides,
    select_hash_joins,
)
from repro.plan.sampling import (
    ApproximationInfo,
    SamplingConfig,
    SamplingRewrite,
    rewrite_with_sampling,
)
from repro.plan.planner import Scope, plan_query

__all__ = [
    "Aggregate",
    "AggregateOutput",
    "ApproximationInfo",
    "Bin",
    "BinKey",
    "BinOutput",
    "ColumnOutput",
    "Comparison",
    "Connective",
    "ConstPredicate",
    "CostModel",
    "DEFAULT_OPTIMIZER",
    "Filter",
    "GroupKey",
    "HASH",
    "Join",
    "Limit",
    "NESTED_LOOP",
    "OptimizerConfig",
    "OutputExpr",
    "PlanNode",
    "Predicate",
    "Project",
    "ResolvedColumn",
    "Sample",
    "SamplingConfig",
    "SamplingRewrite",
    "Scan",
    "Scope",
    "Sort",
    "fold_predicate",
    "iter_nodes",
    "optimize",
    "order_filter_cascades",
    "output_labels",
    "output_node",
    "plan_query",
    "prune_projections",
    "push_down_predicates",
    "reorder_joins",
    "rewrite_with_sampling",
    "select_build_sides",
    "select_hash_joins",
]
