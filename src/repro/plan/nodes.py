"""Logical-plan IR nodes shared by every execution engine.

A plan is an immutable tree of relational operators lowered from a parsed
:class:`~repro.dvq.nodes.DVQuery` by :func:`repro.plan.planner.plan_query`.
Both execution layers consume it: the columnar physical engine
(:mod:`repro.executor.columnar`) runs optimized plans over column batches, and
the SQL compiler (:mod:`repro.sql.compiler`) renders the canonical plan as
SQLite SQL.  Everything schema-dependent — table existence, alias resolution,
exact column casing, column types, the ORDER BY output index — is resolved
once at plan time into :class:`ResolvedColumn` references, so the engines
never re-derive interpreter quirks from the raw AST.

The canonical (unoptimized) plan shape is a single spine::

    Limit?( Sort?( Aggregate|Project( Bin?( Filter?( Join*( Scan ))))))

Optimizer rules (:mod:`repro.plan.optimizer`) rewrite inside that spine:
predicate pushdown moves :class:`Filter` nodes below :class:`Join`\\ s,
projection pruning narrows :attr:`Scan.columns`, and join selection flips
:attr:`Join.strategy` to ``hash``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

from repro.database.schema import ColumnType
from repro.dvq.nodes import BinUnit, Condition

#: Join strategies a :class:`Join` node can carry.
NESTED_LOOP = "nested_loop"
HASH = "hash"


@dataclass(frozen=True)
class ResolvedColumn:
    """A column reference resolved against the schema at plan time.

    Attributes:
        table: canonical table name in the schema.
        effective: the qualifier the query sees — the alias when the table is
            aliased, else the table name (this is also the SQL-visible name).
        column: the column's exact schema casing.
        ctype: the column's logical type (drives BIN lowering).
    """

    table: str
    effective: str
    column: str
    ctype: ColumnType

    def key(self) -> Tuple[str, str]:
        """The case-insensitive batch/scan key ``(effective, column)``."""
        return (self.effective.lower(), self.column.lower())

    def render(self) -> str:
        return f"{self.effective}.{self.column}"


# -- predicate algebra -------------------------------------------------------


class _PredicateBase:
    def columns(self) -> Tuple[ResolvedColumn, ...]:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(_PredicateBase):
    """A leaf predicate: the original DVQ condition plus its resolved column.

    Evaluation semantics live in :func:`repro.executor.predicates.evaluate_condition`
    (Python engines) and :meth:`repro.sql.compiler.DVQToSQLCompiler` (SQL) —
    the plan only fixes *which* column the condition reads.
    """

    column: ResolvedColumn
    condition: Condition

    def columns(self) -> Tuple[ResolvedColumn, ...]:
        return (self.column,)

    def render(self) -> str:
        return self.condition.render()


@dataclass(frozen=True)
class Connective(_PredicateBase):
    """``AND`` / ``OR`` over two sub-predicates.

    The planner folds a DVQ's flat connector list into a left-associative
    tree, preserving nvBench's no-precedence semantics.
    """

    op: str  # "AND" | "OR"
    left: "Predicate"
    right: "Predicate"

    def columns(self) -> Tuple[ResolvedColumn, ...]:
        return self.left.columns() + self.right.columns()

    def render(self) -> str:
        return f"( {self.left.render()} {self.op} {self.right.render()} )"


@dataclass(frozen=True)
class ConstPredicate(_PredicateBase):
    """A predicate folded to a constant by the optimizer."""

    value: bool

    def columns(self) -> Tuple[ResolvedColumn, ...]:
        return ()

    def render(self) -> str:
        return "TRUE" if self.value else "FALSE"


Predicate = Union[Comparison, Connective, ConstPredicate]


# -- output expressions and group keys --------------------------------------


@dataclass(frozen=True)
class ColumnOutput:
    """A bare column in the SELECT list (one encoded axis)."""

    column: ResolvedColumn
    label: str

    def render(self) -> str:
        return self.label


@dataclass(frozen=True)
class AggregateOutput:
    """An aggregate in the SELECT list; ``argument`` is ``None`` for ``COUNT(*)``."""

    function: str
    argument: Optional[ResolvedColumn]
    distinct: bool
    label: str

    def render(self) -> str:
        return self.label


@dataclass(frozen=True)
class BinOutput:
    """A SELECT item that reads the derived bin column of a :class:`Bin` node."""

    label: str

    def render(self) -> str:
        return self.label


OutputExpr = Union[ColumnOutput, AggregateOutput, BinOutput]


@dataclass(frozen=True)
class BinKey:
    """Grouping by the derived bin column (always the first group key)."""

    def render(self) -> str:
        return "BIN"


GroupKey = Union[BinKey, ResolvedColumn]


# -- plan nodes --------------------------------------------------------------


class _NodeBase:
    """Shared plan-node behaviour: child access and ``explain()``."""

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def explain(self, statistics: Optional[object] = None) -> str:
        """Render the plan subtree as an indented operator listing.

        With ``statistics`` — a :class:`~repro.plan.cost.CostModel` or the
        :class:`~repro.database.database.Database` to build one from — every
        node is annotated with its estimated output cardinality and
        cumulative cost, making the optimizer's cost-based decisions
        (join order, build side, filter ordering, sampling) inspectable.
        """
        model = None
        if statistics is not None:
            # deferred: cost imports this module
            from repro.plan.cost import as_cost_model

            model = as_cost_model(statistics)
        lines = []

        def walk(node: "PlanNode", depth: int) -> None:
            text = "  " * depth + node.describe()
            if model is not None:
                text += f"  [{model.annotate(node)}]"
            lines.append(text)
            for child in node.children():
                walk(child, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def describe(self) -> str:  # pragma: no cover - overridden everywhere
        return type(self).__name__


@dataclass(frozen=True)
class Scan(_NodeBase):
    """Materialise the listed columns of one base table.

    ``columns`` holds exact-casing schema names; the planner lists every
    column and projection pruning narrows it to the referenced subset.
    """

    table: str
    effective: str
    columns: Tuple[str, ...]

    def describe(self) -> str:
        name = self.table if self.table == self.effective else f"{self.table} AS {self.effective}"
        return f"Scan({name}, columns=[{', '.join(self.columns)}])"


@dataclass(frozen=True)
class Join(_NodeBase):
    """Equi-join of the plan so far (left) with one base table (right).

    ``left_key`` / ``right_key`` keep the ON clause's textual order for SQL
    rendering; ``build_key`` is planner metadata recording which of the two
    resolves into the right (newly joined) subtree — ``"right"`` for a
    well-formed clause, ``"left"`` when the sides were written swapped,
    ``None`` for degenerate clauses — used by the optimizer's hash-join
    selection (degenerate joins stay nested-loop).  ``build_side`` records
    which *input* the cost-based optimizer chose to build the join table on:
    ``"right"`` (the historical default, matching the interpreter's emit
    order) or ``"left"`` when the accumulated left input is estimated
    smaller; the engine restores the canonical left-major emit order after a
    flipped build, so the choice is invisible in results.  The engine itself
    re-derives the sides from the batches at run time, mirroring the
    interpreter's name-based fallback lookup; key equality is Python ``==``
    with NULL keys never matching — SQL join semantics, shared by every
    engine.
    """

    left: "PlanNode"
    right: "PlanNode"
    left_key: ResolvedColumn
    right_key: ResolvedColumn
    build_key: Optional[str] = "right"
    strategy: str = NESTED_LOOP
    build_side: str = "right"
    #: cost-based parallel-execution hint: ``True`` = partition across
    #: workers, ``False`` = stay serial, ``None`` (no statistics) = let the
    #: engine decide from actual input sizes.  Purely physical — results are
    #: identical either way.
    parallel: Optional[bool] = None

    def children(self) -> Tuple["PlanNode", ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        build = "" if self.build_side == "right" else f", build={self.build_side}"
        flags = ", parallel" if self.parallel else ""
        return (
            f"Join({self.left_key.render()} = {self.right_key.render()}, "
            f"strategy={self.strategy}{build}{flags})"
        )


@dataclass(frozen=True)
class Sample(_NodeBase):
    """Replace a scan's rows with a precomputed seeded row sample.

    The AQP rewrite (:mod:`repro.plan.sampling`) inserts this directly above
    one :class:`Scan`; the engine answers it from the table's cached
    :meth:`~repro.database.table.Table.sample` (a sorted row-id subset), so
    everything above — filters, joins, grouping — runs unchanged on ~
    ``fraction`` of the rows.  ``kind`` is ``"uniform"`` or ``"keyed"``
    (stratified by the group-by column ``key``); scale-up of the aggregate
    outputs happens after execution, driven by the sample's metadata.
    """

    child: "PlanNode"
    table: str
    kind: str
    key: Optional[str]
    fraction: float
    seed: int

    def children(self) -> Tuple["PlanNode", ...]:
        return (self.child,)

    def describe(self) -> str:
        key = f", key={self.key}" if self.key else ""
        return f"Sample({self.kind}{key}, fraction={self.fraction}, seed={self.seed})"


@dataclass(frozen=True)
class Filter(_NodeBase):
    """Keep the rows satisfying ``predicate``."""

    child: "PlanNode"
    predicate: Predicate

    def children(self) -> Tuple["PlanNode", ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter({self.predicate.render()})"


@dataclass(frozen=True)
class Bin(_NodeBase):
    """Derive the bin label column for ``BIN <column> BY <unit>``."""

    child: "PlanNode"
    column: ResolvedColumn
    unit: BinUnit

    def children(self) -> Tuple["PlanNode", ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Bin({self.column.render()} BY {self.unit.value})"


@dataclass(frozen=True)
class Aggregate(_NodeBase):
    """Hash grouping by ``keys`` producing ``outputs`` in SELECT order.

    An empty key tuple is the implicit all-rows group of aggregates-only
    queries: one output row when input rows exist, zero on empty input
    (matching the interpreter and the compiled SQL's constant group).
    """

    child: "PlanNode"
    keys: Tuple[GroupKey, ...]
    outputs: Tuple[OutputExpr, ...]
    #: cost-based parallel-execution hint (see :attr:`Join.parallel`).
    parallel: Optional[bool] = None

    def children(self) -> Tuple["PlanNode", ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(key.render() for key in self.keys)
        outputs = ", ".join(output.render() for output in self.outputs)
        flags = ", parallel" if self.parallel else ""
        return f"Aggregate(keys=[{keys}], outputs=[{outputs}]{flags})"


@dataclass(frozen=True)
class Project(_NodeBase):
    """Flat projection of the SELECT columns (no grouping, no bin)."""

    child: "PlanNode"
    outputs: Tuple[ColumnOutput, ...]

    def children(self) -> Tuple["PlanNode", ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project([{', '.join(output.render() for output in self.outputs)}])"


@dataclass(frozen=True)
class Sort(_NodeBase):
    """ORDER BY, resolved to an output-column index at plan time."""

    child: "PlanNode"
    index: int
    descending: bool
    #: cost-based parallel-execution hint (see :attr:`Join.parallel`).
    parallel: Optional[bool] = None

    def children(self) -> Tuple["PlanNode", ...]:
        return (self.child,)

    def describe(self) -> str:
        flags = ", parallel" if self.parallel else ""
        return f"Sort(#{self.index} {'DESC' if self.descending else 'ASC'}{flags})"


@dataclass(frozen=True)
class Limit(_NodeBase):
    """Deterministic top-k cut (canonical tie-break across engines)."""

    child: "PlanNode"
    count: int
    #: cost-based parallel-execution hint for the top-k selection kernel
    #: (see :attr:`Join.parallel`).
    parallel: Optional[bool] = None

    def children(self) -> Tuple["PlanNode", ...]:
        return (self.child,)

    def describe(self) -> str:
        flags = ", parallel" if self.parallel else ""
        return f"Limit({self.count}{flags})"


PlanNode = Union[Scan, Sample, Join, Filter, Bin, Aggregate, Project, Sort, Limit]


def iter_nodes(plan: PlanNode) -> Iterator[PlanNode]:
    """Pre-order iteration over every node of the plan."""
    yield plan
    for child in plan.children():
        yield from iter_nodes(child)


def output_node(plan: PlanNode) -> Union[Aggregate, Project]:
    """The plan's output-producing node (its :class:`Aggregate` or :class:`Project`)."""
    for node in iter_nodes(plan):
        if isinstance(node, (Aggregate, Project)):
            return node
    raise ValueError(f"Plan has no Aggregate/Project node:\n{plan.explain()}")


def output_labels(plan: PlanNode) -> Tuple[str, ...]:
    """The output column labels, identical across every engine."""
    return tuple(output.label for output in output_node(plan).outputs)
