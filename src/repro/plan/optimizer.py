"""Rule-based optimization of logical plans.

:func:`optimize` rewrites a canonical plan (see :mod:`repro.plan.planner`)
for the columnar physical engine.  Every rule is semantics-preserving — the
differential suite runs the engine with the optimizer on and off against the
row interpreter and SQLite — and individually toggleable through
:class:`OptimizerConfig`:

* **constant folding** (``fold_constants``): comparisons that can never hold
  (``x > NULL``, BETWEEN with a NULL bound) become ``FALSE``; the
  interpreter's null-sentinel equality ``x = 'null'`` is folded into the
  explicit ``(x IS NULL OR x = 'null')`` form (and ``!=`` into its dual) so
  the quirk is visible in the plan; constant branches collapse through
  AND/OR.
* **predicate pushdown** (``pushdown``): top-level AND-conjuncts of a filter
  above a join chain that reference a single table move below the joins to
  sit directly on that table's scan, shrinking the join input.
* **hash-join selection** (``hash_join``): equi-joins whose build side is the
  newly joined table switch from the interpreter's historical nested loop to
  a hash join.
* **projection pruning** (``pruning``): scans materialise only the columns
  the rest of the plan references (outputs, group keys, predicates, join
  keys, the bin column).

Four further rules are *cost-based*: they consult table statistics through a
:class:`~repro.plan.cost.CostModel` and only run when :func:`optimize` is
handed one (``statistics=``) — without statistics the optimizer behaves
exactly as the rule-based subset above:

* **join-order enumeration** (``join_order``): the left-deep join spine is
  greedily re-nested to keep the estimated intermediate cardinality minimal;
  each original Join node keeps its ON keys and metadata, only the nesting
  order changes, so results are identical up to (normalised-away) row order.
* **hash-build-side selection** (``build_side``): each join builds its hash
  table on whichever input is estimated smaller
  (:attr:`~repro.plan.nodes.Join.build_side`); the engine restores the
  canonical emit order after a flipped build.
* **filter-cascade ordering** (``filter_order``): a filter of several
  AND-conjuncts becomes a cascade of single-conjunct filters, most selective
  innermost, so later (expensive) predicates only see surviving rows — the
  engine's vectorized masks have no short-circuit inside one predicate tree.
* **parallel-operator choice** (``parallel_ops``): joins, aggregates, sorts
  and top-k cuts get a ``parallel`` hint from estimated input cardinality —
  ``True`` above :data:`~repro.plan.cost.PARALLEL_ROW_THRESHOLD` (sorts
  compare their ``n log n`` work against the threshold's), ``False`` below,
  so small inputs skip partitioning overhead.  A purely physical hint for
  the columnar engine's partitioned kernels; results are identical either
  way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.dvq.nodes import Condition
from repro.plan.cost import CostModel, as_cost_model
from repro.plan.nodes import (
    HASH,
    Aggregate,
    Bin,
    BinKey,
    Comparison,
    Connective,
    ConstPredicate,
    Filter,
    Join,
    Limit,
    PlanNode,
    Predicate,
    Project,
    AggregateOutput,
    ColumnOutput,
    ResolvedColumn,
    Sample,
    Scan,
    Sort,
)


@dataclass(frozen=True)
class OptimizerConfig:
    """Which rewrite rules :func:`optimize` applies (all on by default).

    The cost-based rules (``join_order``, ``build_side``, ``filter_order``,
    ``parallel_ops``) additionally require statistics to be passed to
    :func:`optimize`; with no statistics they are inert regardless of these
    flags.
    """

    fold_constants: bool = True
    pushdown: bool = True
    hash_join: bool = True
    pruning: bool = True
    join_order: bool = True
    build_side: bool = True
    filter_order: bool = True
    parallel_ops: bool = True

    def rule_names(self) -> Tuple[str, ...]:
        names = []
        for name in (
            "fold_constants",
            "pushdown",
            "join_order",
            "build_side",
            "filter_order",
            "parallel_ops",
            "hash_join",
            "pruning",
        ):
            if getattr(self, name):
                names.append(name)
        return tuple(names)


DEFAULT_OPTIMIZER = OptimizerConfig()


def optimize(
    plan: PlanNode,
    config: OptimizerConfig = DEFAULT_OPTIMIZER,
    statistics: Optional[Union[CostModel, object]] = None,
) -> PlanNode:
    """Apply the enabled rules to ``plan`` and return the rewritten plan.

    ``statistics`` — a :class:`~repro.plan.cost.CostModel` or a database to
    build one from — arms the cost-based rules; ``None`` (the default) keeps
    the optimizer purely rule-based.
    """
    if config.fold_constants:
        plan = fold_plan_constants(plan)
    if config.pushdown:
        plan = push_down_predicates(plan)
    if statistics is not None:
        model = as_cost_model(statistics)
        if config.join_order:
            plan = reorder_joins(plan, model)
        if config.build_side:
            plan = select_build_sides(plan, model)
        if config.filter_order:
            plan = order_filter_cascades(plan, model)
        if config.parallel_ops:
            plan = choose_parallel_operators(plan, model)
    if config.hash_join:
        plan = select_hash_joins(plan)
    if config.pruning:
        plan = prune_projections(plan)
    return plan


def _rewrite(plan: PlanNode, fn) -> PlanNode:
    """Bottom-up structural rewrite: children first, then ``fn`` on the node."""
    if isinstance(plan, Join):
        plan = replace(plan, left=_rewrite(plan.left, fn), right=_rewrite(plan.right, fn))
    elif isinstance(plan, (Filter, Bin, Aggregate, Project, Sort, Limit, Sample)):
        plan = replace(plan, child=_rewrite(plan.child, fn))
    return fn(plan)


# -- constant folding --------------------------------------------------------


def fold_predicate(predicate: Predicate) -> Predicate:
    """Fold one predicate tree (see module docstring for the rules)."""
    if isinstance(predicate, Connective):
        left = fold_predicate(predicate.left)
        right = fold_predicate(predicate.right)
        for const, other in ((left, right), (right, left)):
            if isinstance(const, ConstPredicate):
                if predicate.op == "AND":
                    return ConstPredicate(False) if not const.value else other
                return other if not const.value else ConstPredicate(True)
        return Connective(op=predicate.op, left=left, right=right)
    if isinstance(predicate, Comparison):
        condition = predicate.condition
        operator = condition.operator.upper()
        if operator in (">", ">=", "<", "<=") and condition.value is None:
            return ConstPredicate(False)
        if operator == "BETWEEN" and (condition.value is None or condition.value2 is None):
            return ConstPredicate(False)
        if (
            operator in ("=", "!=")
            and isinstance(condition.value, str)
            and condition.value.lower() == "null"
        ):
            # make the interpreter's null-sentinel explicit:  x = 'null' is
            # (x IS NULL OR x = 'null'); x != 'null' is its dual
            null_test = Comparison(
                column=predicate.column,
                condition=Condition(
                    column=condition.column, operator="IS NULL", negated=operator == "!="
                ),
            )
            connector = "OR" if operator == "=" else "AND"
            return Connective(op=connector, left=null_test, right=predicate)
    return predicate


def fold_plan_constants(plan: PlanNode) -> PlanNode:
    def fold(node: PlanNode) -> PlanNode:
        if isinstance(node, Filter):
            predicate = fold_predicate(node.predicate)
            if isinstance(predicate, ConstPredicate) and predicate.value:
                return node.child
            return replace(node, predicate=predicate)
        return node

    return _rewrite(plan, fold)


# -- predicate pushdown ------------------------------------------------------


def _split_conjuncts(predicate: Predicate) -> List[Predicate]:
    if isinstance(predicate, Connective) and predicate.op == "AND":
        return _split_conjuncts(predicate.left) + _split_conjuncts(predicate.right)
    return [predicate]


def _join_conjuncts(conjuncts: List[Predicate]) -> Predicate:
    predicate = conjuncts[0]
    for conjunct in conjuncts[1:]:
        predicate = Connective(op="AND", left=predicate, right=conjunct)
    return predicate


def _scan_effectives(node: PlanNode) -> Set[str]:
    return {scan.effective.lower() for scan in _scans(node)}


def _scans(node: PlanNode) -> List[Scan]:
    if isinstance(node, Scan):
        return [node]
    scans: List[Scan] = []
    for child in node.children():
        scans.extend(_scans(child))
    return scans


def push_down_predicates(plan: PlanNode) -> PlanNode:
    """Move single-table AND-conjuncts of join-topping filters onto their scans."""

    def push(node: PlanNode) -> PlanNode:
        if not (isinstance(node, Filter) and isinstance(node.child, Join)):
            return node
        scans = _scan_effectives(node.child)
        pushable: Dict[str, List[Predicate]] = {}
        residual: List[Predicate] = []
        for conjunct in _split_conjuncts(node.predicate):
            tables = {column.effective.lower() for column in conjunct.columns()}
            if len(tables) == 1 and next(iter(tables)) in scans:
                pushable.setdefault(next(iter(tables)), []).append(conjunct)
            else:
                residual.append(conjunct)
        if not pushable:
            return node
        rewritten = _attach_filters(node.child, pushable)
        if residual:
            return Filter(child=rewritten, predicate=_join_conjuncts(residual))
        return rewritten

    return _rewrite(plan, push)


def _attach_filters(node: PlanNode, pushable: Dict[str, List[Predicate]]) -> PlanNode:
    if isinstance(node, Scan):
        conjuncts = pushable.get(node.effective.lower())
        if conjuncts:
            return Filter(child=node, predicate=_join_conjuncts(conjuncts))
        return node
    if isinstance(node, Join):
        return replace(
            node,
            left=_attach_filters(node.left, pushable),
            right=_attach_filters(node.right, pushable),
        )
    if isinstance(node, Filter):  # a filter pushed by an earlier pass
        return replace(node, child=_attach_filters(node.child, pushable))
    return node


# -- cost-based rules --------------------------------------------------------


def reorder_joins(plan: PlanNode, model: CostModel) -> PlanNode:
    """Greedily re-nest the left-deep join spine by estimated cardinality.

    The base (deepest-left) input stays fixed; at every step the admissible
    join — one whose probe key's table is already placed — with the smallest
    estimated output joins next, ties broken by original order.  Each Join
    node keeps its ON keys, build metadata and strategy; only the nesting
    changes, so the joined row *multiset* is identical and any emit-order
    difference is absorbed by result normalisation.  Spines containing a
    degenerate join (``build_key is None``) are left untouched: their
    name-based side resolution is position-dependent.
    """

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, Join):
            return _reorder_spine(node, model)
        if isinstance(node, (Filter, Bin, Aggregate, Project, Sort, Limit, Sample)):
            return replace(node, child=walk(node.child))
        return node

    return walk(plan)


def _reorder_spine(top: Join, model: CostModel) -> PlanNode:
    steps: List[Join] = []
    node: PlanNode = top
    while isinstance(node, Join):
        steps.append(node)
        node = node.left
    base = node
    if len(steps) < 2 or any(step.build_key is None for step in steps):
        return top
    steps.reverse()  # bottom-up: original join order
    placed = _scan_effectives(base)
    remaining = list(steps)
    current_rows = model.cardinality(base)
    ordered: List[Join] = []
    while remaining:
        best: Optional[Tuple[float, int, Join]] = None
        for position, step in enumerate(remaining):
            probe_key = step.left_key if step.build_key == "right" else step.right_key
            if probe_key.effective.lower() not in placed:
                continue
            rows = model.join_cardinality(
                current_rows,
                model.cardinality(step.right),
                step.left_key,
                step.right_key,
            )
            if best is None or rows < best[0]:
                best = (rows, position, step)
        if best is None:
            return top  # disconnected spine: keep the written order
        current_rows, position, step = best
        remaining.pop(position)
        ordered.append(step)
        placed |= _scan_effectives(step.right)
    if all(chosen is original for chosen, original in zip(ordered, steps)):
        return top
    rebuilt: PlanNode = base
    for step in ordered:
        rebuilt = replace(step, left=rebuilt)
    return rebuilt


def select_build_sides(plan: PlanNode, model: CostModel) -> PlanNode:
    """Build each join's hash table on the input estimated smaller.

    Sets :attr:`~repro.plan.nodes.Join.build_side` to ``"left"`` when the
    accumulated left input is estimated smaller than the newly joined right
    table; the engine probes with the larger side and restores the canonical
    emit order.  Degenerate joins keep the default.
    """

    def select(node: PlanNode) -> PlanNode:
        if isinstance(node, Join) and node.build_key is not None:
            left_rows = model.cardinality(node.left)
            right_rows = model.cardinality(node.right)
            side = "left" if left_rows < right_rows else "right"
            if side != node.build_side:
                return replace(node, build_side=side)
        return node

    return _rewrite(plan, select)


def order_filter_cascades(plan: PlanNode, model: CostModel) -> PlanNode:
    """Split multi-conjunct filters into cascades, most selective innermost.

    One :class:`Filter` evaluates every conjunct over its whole input (the
    vectorized AND has no short-circuit); a cascade lets each later conjunct
    run only on the rows surviving the earlier, cheaper-by-selectivity ones.
    Conjunct masks are independent, so any order computes the same rows.
    """

    def order(node: PlanNode) -> PlanNode:
        if not isinstance(node, Filter):
            return node
        conjuncts = _split_conjuncts(node.predicate)
        if len(conjuncts) < 2:
            return node
        ranked = sorted(
            range(len(conjuncts)),
            key=lambda index: (model.selectivity(conjuncts[index]), index),
        )
        child = node.child
        for index in ranked:
            child = Filter(child=child, predicate=conjuncts[index])
        return child

    return _rewrite(plan, order)


def choose_parallel_operators(plan: PlanNode, model: CostModel) -> PlanNode:
    """Pin each join/aggregate/sort/limit serial or parallel from cardinality.

    Small inputs (below :data:`~repro.plan.cost.PARALLEL_ROW_THRESHOLD` —
    for sorts and top-k cuts, below its equivalent ``n log n`` work) would
    pay partitioning overhead for nothing, so they are pinned serial
    (``parallel=False``); large inputs are told to partition.  The hint is
    purely physical — the engine's partitioned kernels reproduce the serial
    kernels bit-for-bit — so this rule never changes results.
    """

    def choose(node: PlanNode) -> PlanNode:
        if isinstance(node, (Join, Aggregate, Sort, Limit)):
            return replace(node, parallel=model.parallel_profitable(node))
        return node

    return _rewrite(plan, choose)


# -- hash-join selection -----------------------------------------------------


def select_hash_joins(plan: PlanNode) -> PlanNode:
    def select(node: PlanNode) -> PlanNode:
        if isinstance(node, Join) and node.build_key is not None:
            return replace(node, strategy=HASH)
        return node

    return _rewrite(plan, select)


# -- projection pruning ------------------------------------------------------


def _referenced_columns(plan: PlanNode) -> Set[Tuple[str, str]]:
    needed: Set[Tuple[str, str]] = set()

    def note(column: ResolvedColumn) -> None:
        needed.add(column.key())

    from repro.plan.nodes import iter_nodes

    for node in iter_nodes(plan):
        if isinstance(node, Join):
            note(node.left_key)
            note(node.right_key)
            # the engine matches the build side by bare column name in the
            # newly joined table (interpreter semantics) — keep both ON-key
            # names available on the right scan so pruning cannot change
            # which rows a degenerate join produces
            right_effective = _scans(node.right)[0].effective.lower()
            needed.add((right_effective, node.left_key.column.lower()))
            needed.add((right_effective, node.right_key.column.lower()))
        elif isinstance(node, Filter):
            for column in node.predicate.columns():
                note(column)
        elif isinstance(node, Bin):
            note(node.column)
        elif isinstance(node, Aggregate):
            for key in node.keys:
                if not isinstance(key, BinKey):
                    note(key)
            for output in node.outputs:
                if isinstance(output, ColumnOutput):
                    note(output.column)
                elif isinstance(output, AggregateOutput) and output.argument is not None:
                    note(output.argument)
        elif isinstance(node, Project):
            for output in node.outputs:
                note(output.column)
    return needed


def prune_projections(plan: PlanNode) -> PlanNode:
    """Narrow every scan to the columns the rest of the plan references."""
    needed = _referenced_columns(plan)

    def prune(node: PlanNode) -> PlanNode:
        if isinstance(node, Scan):
            effective = node.effective.lower()
            columns = tuple(
                column for column in node.columns if (effective, column.lower()) in needed
            )
            return replace(node, columns=columns)
        return node

    return _rewrite(plan, prune)
