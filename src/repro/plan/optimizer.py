"""Rule-based optimization of logical plans.

:func:`optimize` rewrites a canonical plan (see :mod:`repro.plan.planner`)
for the columnar physical engine.  Every rule is semantics-preserving — the
differential suite runs the engine with the optimizer on and off against the
row interpreter and SQLite — and individually toggleable through
:class:`OptimizerConfig`:

* **constant folding** (``fold_constants``): comparisons that can never hold
  (``x > NULL``, BETWEEN with a NULL bound) become ``FALSE``; the
  interpreter's null-sentinel equality ``x = 'null'`` is folded into the
  explicit ``(x IS NULL OR x = 'null')`` form (and ``!=`` into its dual) so
  the quirk is visible in the plan; constant branches collapse through
  AND/OR.
* **predicate pushdown** (``pushdown``): top-level AND-conjuncts of a filter
  above a join chain that reference a single table move below the joins to
  sit directly on that table's scan, shrinking the join input.
* **hash-join selection** (``hash_join``): equi-joins whose build side is the
  newly joined table switch from the interpreter's historical nested loop to
  a hash join.
* **projection pruning** (``pruning``): scans materialise only the columns
  the rest of the plan references (outputs, group keys, predicates, join
  keys, the bin column).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Set, Tuple

from repro.dvq.nodes import Condition
from repro.plan.nodes import (
    HASH,
    Aggregate,
    Bin,
    BinKey,
    Comparison,
    Connective,
    ConstPredicate,
    Filter,
    Join,
    Limit,
    PlanNode,
    Predicate,
    Project,
    AggregateOutput,
    ColumnOutput,
    ResolvedColumn,
    Scan,
    Sort,
)


@dataclass(frozen=True)
class OptimizerConfig:
    """Which rewrite rules :func:`optimize` applies (all on by default)."""

    fold_constants: bool = True
    pushdown: bool = True
    hash_join: bool = True
    pruning: bool = True

    def rule_names(self) -> Tuple[str, ...]:
        names = []
        for name in ("fold_constants", "pushdown", "hash_join", "pruning"):
            if getattr(self, name):
                names.append(name)
        return tuple(names)


DEFAULT_OPTIMIZER = OptimizerConfig()


def optimize(plan: PlanNode, config: OptimizerConfig = DEFAULT_OPTIMIZER) -> PlanNode:
    """Apply the enabled rules to ``plan`` and return the rewritten plan."""
    if config.fold_constants:
        plan = fold_plan_constants(plan)
    if config.pushdown:
        plan = push_down_predicates(plan)
    if config.hash_join:
        plan = select_hash_joins(plan)
    if config.pruning:
        plan = prune_projections(plan)
    return plan


def _rewrite(plan: PlanNode, fn) -> PlanNode:
    """Bottom-up structural rewrite: children first, then ``fn`` on the node."""
    if isinstance(plan, Join):
        plan = replace(plan, left=_rewrite(plan.left, fn), right=_rewrite(plan.right, fn))
    elif isinstance(plan, (Filter, Bin, Aggregate, Project, Sort, Limit)):
        plan = replace(plan, child=_rewrite(plan.child, fn))
    return fn(plan)


# -- constant folding --------------------------------------------------------


def fold_predicate(predicate: Predicate) -> Predicate:
    """Fold one predicate tree (see module docstring for the rules)."""
    if isinstance(predicate, Connective):
        left = fold_predicate(predicate.left)
        right = fold_predicate(predicate.right)
        for const, other in ((left, right), (right, left)):
            if isinstance(const, ConstPredicate):
                if predicate.op == "AND":
                    return ConstPredicate(False) if not const.value else other
                return other if not const.value else ConstPredicate(True)
        return Connective(op=predicate.op, left=left, right=right)
    if isinstance(predicate, Comparison):
        condition = predicate.condition
        operator = condition.operator.upper()
        if operator in (">", ">=", "<", "<=") and condition.value is None:
            return ConstPredicate(False)
        if operator == "BETWEEN" and (condition.value is None or condition.value2 is None):
            return ConstPredicate(False)
        if (
            operator in ("=", "!=")
            and isinstance(condition.value, str)
            and condition.value.lower() == "null"
        ):
            # make the interpreter's null-sentinel explicit:  x = 'null' is
            # (x IS NULL OR x = 'null'); x != 'null' is its dual
            null_test = Comparison(
                column=predicate.column,
                condition=Condition(
                    column=condition.column, operator="IS NULL", negated=operator == "!="
                ),
            )
            connector = "OR" if operator == "=" else "AND"
            return Connective(op=connector, left=null_test, right=predicate)
    return predicate


def fold_plan_constants(plan: PlanNode) -> PlanNode:
    def fold(node: PlanNode) -> PlanNode:
        if isinstance(node, Filter):
            predicate = fold_predicate(node.predicate)
            if isinstance(predicate, ConstPredicate) and predicate.value:
                return node.child
            return replace(node, predicate=predicate)
        return node

    return _rewrite(plan, fold)


# -- predicate pushdown ------------------------------------------------------


def _split_conjuncts(predicate: Predicate) -> List[Predicate]:
    if isinstance(predicate, Connective) and predicate.op == "AND":
        return _split_conjuncts(predicate.left) + _split_conjuncts(predicate.right)
    return [predicate]


def _join_conjuncts(conjuncts: List[Predicate]) -> Predicate:
    predicate = conjuncts[0]
    for conjunct in conjuncts[1:]:
        predicate = Connective(op="AND", left=predicate, right=conjunct)
    return predicate


def _scan_effectives(node: PlanNode) -> Set[str]:
    return {scan.effective.lower() for scan in _scans(node)}


def _scans(node: PlanNode) -> List[Scan]:
    if isinstance(node, Scan):
        return [node]
    scans: List[Scan] = []
    for child in node.children():
        scans.extend(_scans(child))
    return scans


def push_down_predicates(plan: PlanNode) -> PlanNode:
    """Move single-table AND-conjuncts of join-topping filters onto their scans."""

    def push(node: PlanNode) -> PlanNode:
        if not (isinstance(node, Filter) and isinstance(node.child, Join)):
            return node
        scans = _scan_effectives(node.child)
        pushable: Dict[str, List[Predicate]] = {}
        residual: List[Predicate] = []
        for conjunct in _split_conjuncts(node.predicate):
            tables = {column.effective.lower() for column in conjunct.columns()}
            if len(tables) == 1 and next(iter(tables)) in scans:
                pushable.setdefault(next(iter(tables)), []).append(conjunct)
            else:
                residual.append(conjunct)
        if not pushable:
            return node
        rewritten = _attach_filters(node.child, pushable)
        if residual:
            return Filter(child=rewritten, predicate=_join_conjuncts(residual))
        return rewritten

    return _rewrite(plan, push)


def _attach_filters(node: PlanNode, pushable: Dict[str, List[Predicate]]) -> PlanNode:
    if isinstance(node, Scan):
        conjuncts = pushable.get(node.effective.lower())
        if conjuncts:
            return Filter(child=node, predicate=_join_conjuncts(conjuncts))
        return node
    if isinstance(node, Join):
        return replace(
            node,
            left=_attach_filters(node.left, pushable),
            right=_attach_filters(node.right, pushable),
        )
    if isinstance(node, Filter):  # a filter pushed by an earlier pass
        return replace(node, child=_attach_filters(node.child, pushable))
    return node


# -- hash-join selection -----------------------------------------------------


def select_hash_joins(plan: PlanNode) -> PlanNode:
    def select(node: PlanNode) -> PlanNode:
        if isinstance(node, Join) and node.build_key is not None:
            return replace(node, strategy=HASH)
        return node

    return _rewrite(plan, select)


# -- projection pruning ------------------------------------------------------


def _referenced_columns(plan: PlanNode) -> Set[Tuple[str, str]]:
    needed: Set[Tuple[str, str]] = set()

    def note(column: ResolvedColumn) -> None:
        needed.add(column.key())

    from repro.plan.nodes import iter_nodes

    for node in iter_nodes(plan):
        if isinstance(node, Join):
            note(node.left_key)
            note(node.right_key)
            # the engine matches the build side by bare column name in the
            # newly joined table (interpreter semantics) — keep both ON-key
            # names available on the right scan so pruning cannot change
            # which rows a degenerate join produces
            right_effective = _scans(node.right)[0].effective.lower()
            needed.add((right_effective, node.left_key.column.lower()))
            needed.add((right_effective, node.right_key.column.lower()))
        elif isinstance(node, Filter):
            for column in node.predicate.columns():
                note(column)
        elif isinstance(node, Bin):
            note(node.column)
        elif isinstance(node, Aggregate):
            for key in node.keys:
                if not isinstance(key, BinKey):
                    note(key)
            for output in node.outputs:
                if isinstance(output, ColumnOutput):
                    note(output.column)
                elif isinstance(output, AggregateOutput) and output.argument is not None:
                    note(output.argument)
        elif isinstance(node, Project):
            for output in node.outputs:
                note(output.column)
    return needed


def prune_projections(plan: PlanNode) -> PlanNode:
    """Narrow every scan to the columns the rest of the plan references."""
    needed = _referenced_columns(plan)

    def prune(node: PlanNode) -> PlanNode:
        if isinstance(node, Scan):
            effective = node.effective.lower()
            columns = tuple(
                column for column in node.columns if (effective, column.lower()) in needed
            )
            return replace(node, columns=columns)
        return node

    return _rewrite(plan, prune)
