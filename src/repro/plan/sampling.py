"""The AQP rewrite: answer aggregate DVQs from precomputed row samples.

Charts tolerate approximation — a bar chart rendered from an unbiased 5%
sample is visually indistinguishable from the exact one — so
:func:`rewrite_with_sampling` turns an optimized plan whose output is
COUNT/SUM/AVG over groups into the same plan running over a
:class:`~repro.plan.nodes.Sample` of the largest base table, plus the
metadata needed to scale the results back up and attach CLT-based
relative-error bounds.

**Decline-to-exact contract** (mirroring the engine's decline-to-scalar
kernels): the rewrite returns ``None`` — and the backend silently runs the
exact plan — whenever approximation would be unsafe or pointless:

* the output is not a group/bin aggregate, or uses MIN / MAX / DISTINCT
  (a sample cannot bound extremes or distinct counts);
* the plan carries a LIMIT — top-k membership is sensitive to per-group
  noise near the cut;
* the largest table is below ``min_table_rows`` (exact is already instant),
  appears twice (a self-join would square the sampling rate), or the
  expected sample support per group is under ``min_rows_per_group``;
* a SUM/AVG column's estimated coefficient of variation exceeds
  ``max_cv`` — the CLT bound would be unreliable on such skew.

**Sample choice**: when the single group key is a column of the sampled
table, the keyed (stratified) sample guarantees every group survives with
``>= fraction`` of its rows — per-group COUNTs over a plain single-table
group-by are then *exact*; otherwise the uniform sample with one global
scale factor is used.  The rewrite appends a hidden per-group ``COUNT(*)``
output so scale-up and error bounds use the true per-group sample support,
then strips it from the final rows.

**Error bounds**: for a group with ``k`` sampled rows drawn at effective
rate ``f``, the reported relative bound is ``z * sqrt((1-f)/k)`` for COUNT,
``* sqrt(1+cv^2)`` for SUM, and ``* cv`` for AVG, where ``cv`` is the
column's coefficient of variation estimated from its equi-depth histogram.
With the default ``z = 3`` these are ~99.7% bounds under CLT assumptions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.database.sampling import DEFAULT_FRACTION, KEYED, UNIFORM
from repro.plan.cost import CostModel
from repro.plan.nodes import (
    Aggregate,
    AggregateOutput,
    Bin,
    ColumnOutput,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    ResolvedColumn,
    Sample,
    Scan,
    Sort,
    iter_nodes,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.database.database import Database
    from repro.database.sampling import TableSample
    from repro.database.statistics import ColumnStatistics

#: Label of the hidden per-group support column appended to the sampled plan.
SUPPORT_LABEL = "__aqp_support__"

#: Aggregates a sample can answer with bounded relative error.
_SCALABLE = ("COUNT", "SUM", "AVG")


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs of the AQP rewrite (defaults tuned for the 1M-row benchmark)."""

    fraction: float = DEFAULT_FRACTION
    seed: int = 7
    min_table_rows: int = 10_000
    min_rows_per_group: float = 25.0
    z_score: float = 3.0
    max_cv: float = 5.0


DEFAULT_SAMPLING = SamplingConfig()


@dataclass(frozen=True)
class ApproximationInfo:
    """Attached to an approximate :class:`~repro.executor.executor.ExecutionResult`.

    ``error_bounds`` maps each scaled output label to the maximum CLT
    relative-error bound observed across its groups (at ``z_score`` sigmas,
    ~99.7% confidence for the default 3).
    """

    sampled_table: str
    kind: str
    key: Optional[str]
    fraction: float
    seed: int
    sampled_rows: int
    table_rows: int
    z_score: float
    error_bounds: Dict[str, float] = field(default_factory=dict)

    @property
    def max_relative_error(self) -> float:
        return max(self.error_bounds.values(), default=0.0)


@dataclass(frozen=True)
class SamplingRewrite:
    """A sampled plan plus everything needed to scale its output back up."""

    plan: PlanNode
    outputs: Tuple[object, ...]
    labels: Tuple[str, ...]
    sample: "TableSample"
    table: str
    kind: str
    key: Optional[str]
    config: SamplingConfig
    group_key_index: Optional[int]
    cvs: Dict[int, float]

    def finish(
        self, rows: List[Tuple[object, ...]]
    ) -> Tuple[List[Tuple[object, ...]], ApproximationInfo]:
        """Scale raw sampled rows up and compute per-label error bounds.

        The last value of every raw row is the hidden per-group support
        ``k`` (sampled rows in the group); it drives both the keyed-strata
        scale lookup fallback and the CLT bounds, and is stripped here.
        """
        z = self.config.z_score
        global_fraction = (
            self.sample.sampled_rows / self.sample.row_count
            if self.sample.row_count
            else 1.0
        )
        bounds: Dict[str, float] = {}
        scaled_rows: List[Tuple[object, ...]] = []
        for row in rows:
            support = row[-1]
            k = float(support) if isinstance(support, (int, float)) and support else 1.0
            scale = self.sample.scale
            fraction = global_fraction
            if self.kind == KEYED and self.group_key_index is not None:
                stratum = self.sample.strata.get(row[self.group_key_index])
                if stratum is not None and stratum.sampled:
                    scale = stratum.scale
                    fraction = stratum.sampled / stratum.population
            base_error = z * math.sqrt(max(1.0 - fraction, 0.0) / k)
            scaled: List[object] = []
            for position, output in enumerate(self.outputs):
                value = row[position]
                if not isinstance(output, AggregateOutput) or value is None:
                    scaled.append(value)
                    continue
                function = output.function.upper()
                if function == "COUNT":
                    scaled.append(value * scale)
                    bound = base_error
                elif function == "SUM":
                    cv = self.cvs.get(position, 1.0)
                    scaled.append(value * scale)
                    bound = base_error * math.sqrt(1.0 + cv * cv)
                else:  # AVG: the sample mean needs no scale-up
                    scaled.append(value)
                    bound = base_error * self.cvs.get(position, 1.0)
                label = self.labels[position]
                if bound > bounds.get(label, 0.0):
                    bounds[label] = bound
            scaled_rows.append(tuple(scaled))
        info = ApproximationInfo(
            sampled_table=self.table,
            kind=self.kind,
            key=self.key,
            fraction=self.config.fraction,
            seed=self.config.seed,
            sampled_rows=self.sample.sampled_rows,
            table_rows=self.sample.row_count,
            z_score=z,
            error_bounds=bounds,
        )
        return scaled_rows, info


def _cv_estimate(stats: "ColumnStatistics") -> Optional[float]:
    """Coefficient of variation off the equi-depth histogram midpoints.

    Equi-depth edges are quantiles, so adjacent-edge midpoints are an
    (approximately) equal-weight discretisation of the distribution.
    ``None`` when the column is not numeric or the estimate is degenerate
    (mean near zero — relative error is meaningless there).
    """
    edges = [
        float(edge) for edge in stats.histogram if isinstance(edge, (int, float))
    ]
    if len(edges) < len(stats.histogram) or len(edges) < 3:
        return None
    midpoints = [(a + b) / 2.0 for a, b in zip(edges, edges[1:])]
    mean = sum(midpoints) / len(midpoints)
    variance = sum(m * m for m in midpoints) / len(midpoints) - mean * mean
    std = math.sqrt(max(variance, 0.0))
    if abs(mean) <= 1e-12:
        return None
    return std / abs(mean)


def rewrite_with_sampling(
    plan: PlanNode,
    database: "Database",
    config: SamplingConfig = DEFAULT_SAMPLING,
) -> Optional[SamplingRewrite]:
    """Rewrite ``plan`` to run on a sample, or ``None`` to decline to exact."""
    aggregate: Optional[Aggregate] = None
    scans: List[Scan] = []
    for node in iter_nodes(plan):
        if isinstance(node, (Limit, Sample, Project)):
            return None  # top-k sensitive / already sampled / not an aggregate
        if isinstance(node, Aggregate):
            aggregate = node
        elif isinstance(node, Scan):
            scans.append(node)
    if aggregate is None or not scans:
        return None
    for output in aggregate.outputs:
        if isinstance(output, AggregateOutput):
            if output.distinct or output.function.upper() not in _SCALABLE:
                return None
    # sample the largest base table (ties broken by plan order for determinism)
    target = max(scans, key=lambda scan: len(database.table(scan.table).rows))
    table = database.table(target.table)
    if len(table.rows) < config.min_table_rows:
        return None
    if sum(1 for scan in scans if scan.table.lower() == target.table.lower()) > 1:
        return None  # a self-join would sample both sides
    # expected per-group sample support, off the cost model
    model = CostModel(database)
    groups = max(model.cardinality(aggregate), 1.0)
    support = config.fraction * model.cardinality(aggregate.child) / groups
    if support < config.min_rows_per_group:
        return None
    # keyed (stratified) sample when the single group key lives on the
    # sampled table and is selected; uniform otherwise
    kind, key, group_key_index = UNIFORM, None, None
    if len(aggregate.keys) == 1 and isinstance(aggregate.keys[0], ResolvedColumn):
        group_key = aggregate.keys[0]
        if (
            group_key.table.lower() == target.table.lower()
            and group_key.effective.lower() == target.effective.lower()
        ):
            for position, output in enumerate(aggregate.outputs):
                if (
                    isinstance(output, ColumnOutput)
                    and output.column.key() == group_key.key()
                ):
                    kind, key, group_key_index = KEYED, group_key.column, position
                    break
    sample = table.sample(kind=kind, key=key, fraction=config.fraction, seed=config.seed)
    if sample is None and kind == KEYED:  # too many strata: fall back to uniform
        kind, key, group_key_index = UNIFORM, None, None
        sample = table.sample(kind=UNIFORM, fraction=config.fraction, seed=config.seed)
    if sample is None or sample.sampled_rows == 0:
        return None
    if sample.sampled_rows >= sample.row_count:
        return None  # the sample is the table: nothing to gain
    # SUM/AVG columns need a usable coefficient of variation for the bounds
    cvs: Dict[int, float] = {}
    for position, output in enumerate(aggregate.outputs):
        if (
            isinstance(output, AggregateOutput)
            and output.function.upper() in ("SUM", "AVG")
            and output.argument is not None
        ):
            argument = output.argument
            stats = database.table(argument.table).column_statistics(argument.column)
            cv = _cv_estimate(stats)
            if cv is None or cv > config.max_cv:
                return None
            cvs[position] = cv
    sampled_plan = _insert_sample(plan, target, kind, key, config)
    sampled_plan = _append_support(sampled_plan)
    return SamplingRewrite(
        plan=sampled_plan,
        outputs=aggregate.outputs,
        labels=tuple(output.label for output in aggregate.outputs),
        sample=sample,
        table=target.table,
        kind=kind,
        key=key,
        config=config,
        group_key_index=group_key_index,
        cvs=cvs,
    )


def _walk(node: PlanNode, fn) -> PlanNode:
    """Bottom-up rewrite (local twin of the optimizer's ``_rewrite``)."""
    if isinstance(node, Join):
        node = replace(node, left=_walk(node.left, fn), right=_walk(node.right, fn))
    elif isinstance(node, (Filter, Bin, Aggregate, Project, Sort, Limit, Sample)):
        node = replace(node, child=_walk(node.child, fn))
    return fn(node)


def _insert_sample(
    plan: PlanNode, target: Scan, kind: str, key: Optional[str], config: SamplingConfig
) -> PlanNode:
    def insert(node: PlanNode) -> PlanNode:
        if (
            isinstance(node, Scan)
            and node.table == target.table
            and node.effective == target.effective
        ):
            return Sample(
                child=node,
                table=node.table,
                kind=kind,
                key=key,
                fraction=config.fraction,
                seed=config.seed,
            )
        return node

    return _walk(plan, insert)


def _append_support(plan: PlanNode) -> PlanNode:
    support = AggregateOutput(
        function="COUNT", argument=None, distinct=False, label=SUPPORT_LABEL
    )

    def append(node: PlanNode) -> PlanNode:
        if isinstance(node, Aggregate):
            return replace(node, outputs=node.outputs + (support,))
        return node

    return _walk(plan, append)
