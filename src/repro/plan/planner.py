"""Lowering of DVQ ASTs to the logical-plan IR.

:func:`plan_query` resolves a parsed :class:`~repro.dvq.nodes.DVQuery`
against a database schema and emits the canonical plan spine (see
:mod:`repro.plan.nodes`).  This is the single place where the
interpreter-compatibility rules of name resolution live:

* unknown tables and columns raise :class:`~repro.executor.errors.ExecutionError`
  with the exact message shapes
  :func:`repro.executor.backend.classify_failure` maps to failure
  categories, keeping the "no chart" verdict identical on every engine;
* qualified references match the alias *or* the underlying table name (the
  interpreter tolerates both), unqualified references search the tables in
  join order;
* references are resolved in the AST's reference order (SELECT, JOIN keys,
  WHERE, GROUP BY, ORDER BY, BIN) so a query with several broken identifiers
  reports the same one on every engine;
* the ORDER BY target is resolved to an output-column index via
  :func:`repro.executor.ordering.order_index`, and a select item naming the
  binned column becomes a :class:`~repro.plan.nodes.BinOutput`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.database.database import Database
from repro.database.schema import DatabaseSchema, TableSchema
from repro.dvq.nodes import (
    AggregateExpr,
    ColumnRef,
    DVQuery,
    SelectItem,
    SortDirection,
)
from repro.executor.errors import ExecutionError
from repro.executor.ordering import order_index
from repro.plan.nodes import (
    Aggregate,
    Bin,
    BinKey,
    BinOutput,
    ColumnOutput,
    Comparison,
    Connective,
    Filter,
    GroupKey,
    Join,
    Limit,
    OutputExpr,
    PlanNode,
    Predicate,
    Project,
    ResolvedColumn,
    Scan,
    Sort,
    AggregateOutput,
)


class _ScopeEntry:
    """One table visible to the query: its schema plus its effective name."""

    __slots__ = ("schema", "effective")

    def __init__(self, schema: TableSchema, effective: str):
        self.schema = schema
        self.effective = effective


class Scope:
    """Column resolution over the tables a query references."""

    def __init__(self) -> None:
        self.entries: List[_ScopeEntry] = []

    def add(self, schema: TableSchema, alias: Optional[str]) -> None:
        self.entries.append(_ScopeEntry(schema, alias or schema.name))

    def resolve(self, ref: ColumnRef, query: DVQuery) -> ResolvedColumn:
        """Resolve ``ref`` to a :class:`ResolvedColumn` or raise.

        Qualified references match the alias or the underlying table name;
        unqualified references search the tables in join order, mirroring the
        interpreter's lookup.
        """
        if ref.table:
            wanted = ref.table.lower()
            for entry in self.entries:
                if wanted in (entry.effective.lower(), entry.schema.name.lower()):
                    if entry.schema.has_column(ref.column):
                        return self._resolved(entry, ref.column)
                    raise ExecutionError(
                        f"Table {ref.table!r} has no column {ref.column!r}", query=query
                    )
            raise ExecutionError(f"Unknown table or alias {ref.table!r}", query=query)
        for entry in self.entries:
            if entry.schema.has_column(ref.column):
                return self._resolved(entry, ref.column)
        raise ExecutionError(f"Unknown column {ref.column!r}", query=query)

    @staticmethod
    def _resolved(entry: _ScopeEntry, column_name: str) -> ResolvedColumn:
        column = entry.schema.column(column_name)
        return ResolvedColumn(
            table=entry.schema.name,
            effective=entry.effective,
            column=column.name,
            ctype=column.ctype,
        )


def _is_bin_item(item: SelectItem, query: DVQuery) -> bool:
    return (
        query.bin is not None
        and not item.is_aggregate
        and item.column.lower_key() == query.bin.column.lower_key()
    )


def plan_query(query: DVQuery, schema: Union[Database, DatabaseSchema]) -> PlanNode:
    """Lower ``query`` to its canonical logical plan against ``schema``.

    Raises:
        ExecutionError: when the query references missing tables or columns —
            the same failure mode (and failure categories) as every engine.
    """
    if isinstance(schema, Database):
        schema = schema.schema
    scope = _build_scope(query, schema)

    # resolution in the AST's reference order, so multi-error queries surface
    # the same identifier on every engine
    outputs = tuple(_resolve_output(item, query, scope) for item in query.select)
    join_keys: List[Tuple[ResolvedColumn, ResolvedColumn]] = [
        (scope.resolve(join.left, query), scope.resolve(join.right, query))
        for join in query.joins
    ]
    predicate: Optional[Predicate] = None
    if query.where is not None and query.where.conditions:
        predicate = _where_predicate(query, scope)
    group_columns = tuple(scope.resolve(column, query) for column in query.group_by)
    if query.order_by is not None:
        order_argument = (
            query.order_by.expr.argument
            if isinstance(query.order_by.expr, AggregateExpr)
            else query.order_by.expr
        )
        if order_argument.column != "*":
            scope.resolve(order_argument, query)
    bin_column: Optional[ResolvedColumn] = None
    if query.bin is not None:
        bin_column = scope.resolve(query.bin.column, query)

    # -- relational spine ----------------------------------------------------
    primary = schema.table(query.table)
    root: PlanNode = Scan(
        table=primary.name,
        effective=query.table_alias or primary.name,
        columns=tuple(primary.column_names()),
    )
    for join, (left_key, right_key) in zip(query.joins, join_keys):
        joined = schema.table(join.table)
        effective = join.alias or joined.name
        build_key: Optional[str] = None
        if right_key.effective.lower() == effective.lower():
            build_key = "right"
        elif left_key.effective.lower() == effective.lower():
            build_key = "left"
        root = Join(
            left=root,
            right=Scan(
                table=joined.name,
                effective=effective,
                columns=tuple(joined.column_names()),
            ),
            left_key=left_key,
            right_key=right_key,
            build_key=build_key,
        )
    if predicate is not None:
        root = Filter(child=root, predicate=predicate)
    if bin_column is not None:
        assert query.bin is not None
        root = Bin(child=root, column=bin_column, unit=query.bin.unit)

    if query.needs_grouping():
        root = Aggregate(child=root, keys=_group_keys(query, scope, outputs), outputs=outputs)
    else:
        root = Project(child=root, outputs=outputs)  # type: ignore[arg-type]

    if query.order_by is not None:
        root = Sort(
            child=root,
            index=order_index(query),
            descending=query.order_by.direction is SortDirection.DESC,
        )
    if query.limit is not None:
        root = Limit(child=root, count=query.limit)
    return root


# -- pieces ------------------------------------------------------------------


def _build_scope(query: DVQuery, schema: DatabaseSchema) -> Scope:
    scope = Scope()
    if not schema.has_table(query.table):
        raise ExecutionError(
            f"Database {schema.name!r} has no table {query.table!r}",
            query=query,
            database=schema.name,
        )
    scope.add(schema.table(query.table), query.table_alias)
    for join in query.joins:
        if not schema.has_table(join.table):
            raise ExecutionError(
                f"Database {schema.name!r} has no table {join.table!r}",
                query=query,
                database=schema.name,
            )
        scope.add(schema.table(join.table), join.alias)
    return scope


def _resolve_output(item: SelectItem, query: DVQuery, scope: Scope) -> OutputExpr:
    label = item.render()
    if isinstance(item.expr, AggregateExpr):
        aggregate = item.expr
        argument: Optional[ResolvedColumn] = None
        if aggregate.argument.column != "*":
            argument = scope.resolve(aggregate.argument, query)
        return AggregateOutput(
            function=aggregate.function.value,
            argument=argument,
            distinct=aggregate.distinct,
            label=label,
        )
    resolved = scope.resolve(item.expr, query)
    if _is_bin_item(item, query):
        return BinOutput(label=label)
    return ColumnOutput(column=resolved, label=label)


def _where_predicate(query: DVQuery, scope: Scope) -> Predicate:
    where = query.where
    assert where is not None
    leaves = [
        Comparison(column=scope.resolve(condition.column, query), condition=condition)
        for condition in where.conditions
    ]
    predicate: Predicate = leaves[0]
    for index, connector in enumerate(where.connectors):
        # strict left-to-right association, no AND-over-OR precedence
        predicate = Connective(op=connector.upper(), left=predicate, right=leaves[index + 1])
    return predicate


def _group_keys(
    query: DVQuery, scope: Scope, outputs: Tuple[OutputExpr, ...]
) -> Tuple[GroupKey, ...]:
    keys: List[GroupKey] = []
    if query.bin is not None:
        keys.append(BinKey())
    for column in query.group_by:
        keys.append(scope.resolve(column, query))
    if not keys:
        # implicit grouping by the non-aggregated select columns
        for output in outputs:
            if isinstance(output, ColumnOutput):
                keys.append(output.column)
    return tuple(keys)
