"""Cardinality estimation and the cost model behind the cost-based rules.

:class:`CostModel` turns per-table statistics
(:meth:`repro.database.table.Table.column_statistics` — row counts, NDV,
equi-depth histograms, MCVs) into the classic textbook estimates:

* **selectivity** of a predicate — equality selects an MCV's exact frequency
  when the literal is one, ``1/NDV`` otherwise; range predicates interpolate
  over the equi-depth histogram edges (each adjacent pair of edges holds
  ``~1/bins`` of the rows); AND multiplies, OR adds-minus-product; every
  estimate is scaled by the non-null fraction since NULL never satisfies a
  comparison.
* **cardinality** of a plan node — scans produce the table's row count,
  filters multiply by selectivity, equi-joins use the containment assumption
  ``|L| * |R| / max(ndv(L.key), ndv(R.key))``, aggregates produce the product
  of group-key NDVs capped by their input.
* **cost** of a plan node — a unitless row-touch count: linear passes for
  scans/filters/aggregates, ``build + probe + output`` for hash joins,
  ``|L| * |R|`` for nested loops, ``n log n`` for sorts.

The optimizer's cost-based rules (:mod:`repro.plan.optimizer` — join-order
enumeration, hash-build-side selection, filter-cascade ordering) and the AQP
rewrite (:mod:`repro.plan.sampling`) consume these estimates;
``plan.explain(statistics=...)`` annotates each node with them.  Statistics
are fetched lazily through the :class:`~repro.database.table.Table` cache, so
a query only pays for the columns its plan references.

Estimates never have to be *right* — every cost-based rewrite is
semantics-preserving and the differential suite holds the engine to
bit-identical results regardless — they only have to be deterministic.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Union

from repro.plan.nodes import (
    HASH,
    Aggregate,
    Bin,
    BinKey,
    Comparison,
    Connective,
    ConstPredicate,
    Filter,
    Join,
    Limit,
    PlanNode,
    Predicate,
    Project,
    ResolvedColumn,
    Sample,
    Scan,
    Sort,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.database.database import Database
    from repro.database.statistics import ColumnStatistics

#: Fallbacks when a table or column has no statistics (never the case for
#: planned queries, but the model must stay total and deterministic).
DEFAULT_ROW_COUNT = 1000.0
DEFAULT_SELECTIVITY = 1.0 / 3.0
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_LIKE_SELECTIVITY = 0.25

#: Guessed group count of a derived bin column (a chart axis: months, years,
#: interval buckets — small by construction).
BIN_GROUP_ESTIMATE = 50.0

#: Guessed NDV of a group key with no statistics.
DEFAULT_GROUP_NDV = 25.0

#: Estimated input rows above which partitioned parallel joins/aggregation
#: pay for their partitioning overhead.  Below it the cost-based optimizer
#: pins the operator serial (``parallel=False``); above it the engine is
#: told to partition.  Roughly two default morsels — the same break-even
#: the morsel-parallel scans use.
PARALLEL_ROW_THRESHOLD = 100_000.0


def _clamp(value: float, low: float = 0.0, high: float = 1.0) -> float:
    return min(max(value, low), high)


class CostModel:
    """Selectivity / cardinality / cost estimates over logical plans.

    Thin and stateless: statistics live in the per-:class:`Table` cache, so
    one model per database is cheap to build and safe to share across
    queries.  Every estimate method is total — missing statistics degrade to
    the documented defaults, never to an exception.
    """

    def __init__(self, database: "Database"):
        self._database = database

    # -- statistics access ---------------------------------------------------

    def table_row_count(self, table: str) -> Optional[float]:
        try:
            return float(len(self._database.table(table).rows))
        except Exception:
            return None

    def column_stats(self, column: ResolvedColumn) -> Optional["ColumnStatistics"]:
        try:
            return self._database.table(column.table).column_statistics(column.column)
        except Exception:
            return None

    # -- selectivity ---------------------------------------------------------

    def selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of input rows satisfying ``predicate``."""
        if isinstance(predicate, ConstPredicate):
            return 1.0 if predicate.value else 0.0
        if isinstance(predicate, Connective):
            left = self.selectivity(predicate.left)
            right = self.selectivity(predicate.right)
            if predicate.op == "AND":
                return left * right
            return _clamp(left + right - left * right)
        return self._comparison_selectivity(predicate)

    def _comparison_selectivity(self, comparison: Comparison) -> float:
        stats = self.column_stats(comparison.column)
        condition = comparison.condition
        operator = condition.operator.upper()
        if stats is None or stats.row_count == 0:
            if operator == "=":
                return DEFAULT_EQUALITY_SELECTIVITY
            if operator in ("!=", "<>"):
                return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
            if operator == "LIKE":
                return DEFAULT_LIKE_SELECTIVITY
            return DEFAULT_SELECTIVITY
        non_null = 1.0 - stats.null_fraction
        if operator == "IS NULL":
            return non_null if condition.negated else stats.null_fraction
        if operator == "=":
            return non_null * self._equality_fraction(stats, condition.value)
        if operator in ("!=", "<>"):
            return non_null * (1.0 - self._equality_fraction(stats, condition.value))
        if operator == "IN":
            values = condition.value if isinstance(condition.value, (tuple, list)) else ()
            fraction = _clamp(
                sum(self._equality_fraction(stats, value) for value in values)
            )
            return non_null * ((1.0 - fraction) if condition.negated else fraction)
        if operator in (">", ">=", "<", "<="):
            below = self._fraction_below(stats, condition.value)
            if below is None:
                return non_null * DEFAULT_SELECTIVITY
            return non_null * _clamp(below if operator in ("<", "<=") else 1.0 - below)
        if operator == "BETWEEN":
            low = self._fraction_below(stats, condition.value)
            high = self._fraction_below(stats, condition.value2)
            if low is None or high is None:
                return non_null * DEFAULT_SELECTIVITY / 2.0
            return non_null * _clamp(high - low)
        if operator == "LIKE":
            return non_null * DEFAULT_LIKE_SELECTIVITY
        return DEFAULT_SELECTIVITY

    @staticmethod
    def _equality_fraction(stats: "ColumnStatistics", value: object) -> float:
        """P(column = value | column not null): MCV frequency, else 1/NDV."""
        if value is None:
            return 0.0  # x = NULL never holds
        non_null = max(stats.row_count - stats.null_count, 1)
        for common, count in stats.most_common:
            try:
                if common == value:
                    return count / non_null
            except TypeError:  # pragma: no cover - exotic __eq__ only
                continue
        return 1.0 / stats.ndv if stats.ndv else 0.0

    @staticmethod
    def _fraction_below(stats: "ColumnStatistics", value: object) -> Optional[float]:
        """P(column <= value | not null) off the equi-depth histogram edges.

        Each adjacent edge pair holds ~1/bins of the rows, so the fraction of
        edges at or below the literal approximates the CDF.  ``None`` when
        the literal is not comparable to the edges (e.g. a string literal
        against a numeric column).
        """
        edges = stats.histogram
        if len(edges) < 2:
            return None
        try:
            at_or_below = sum(1 for edge in edges if edge <= value)
        except TypeError:
            return None
        return _clamp((at_or_below - 0.5) / (len(edges) - 1))

    # -- cardinality ---------------------------------------------------------

    def join_cardinality(
        self,
        left_rows: float,
        right_rows: float,
        left_key: ResolvedColumn,
        right_key: ResolvedColumn,
    ) -> float:
        """Containment estimate: ``|L| * |R| / max(ndv(l), ndv(r), 1)``."""
        denominator = 1.0
        for key in (left_key, right_key):
            stats = self.column_stats(key)
            if stats is not None and stats.ndv:
                denominator = max(denominator, float(stats.ndv))
        return left_rows * right_rows / denominator

    def cardinality(self, node: PlanNode) -> float:
        """Estimated output row count of ``node``."""
        if isinstance(node, Scan):
            rows = self.table_row_count(node.table)
            return rows if rows is not None else DEFAULT_ROW_COUNT
        if isinstance(node, Sample):
            return max(self.cardinality(node.child) * node.fraction, 1.0)
        if isinstance(node, Filter):
            return self.cardinality(node.child) * self.selectivity(node.predicate)
        if isinstance(node, Join):
            return self.join_cardinality(
                self.cardinality(node.left),
                self.cardinality(node.right),
                node.left_key,
                node.right_key,
            )
        if isinstance(node, Aggregate):
            child = self.cardinality(node.child)
            if not node.keys:
                return 1.0 if child >= 1.0 else child
            groups = 1.0
            for key in node.keys:
                if isinstance(key, BinKey):
                    groups *= BIN_GROUP_ESTIMATE
                else:
                    stats = self.column_stats(key)
                    if stats is None:
                        groups *= DEFAULT_GROUP_NDV
                    else:
                        groups *= stats.ndv + (1 if stats.null_count else 0)
            return min(child, groups)
        if isinstance(node, Limit):
            return min(self.cardinality(node.child), float(node.count))
        if isinstance(node, (Bin, Project, Sort)):
            return self.cardinality(node.child)
        return DEFAULT_ROW_COUNT  # pragma: no cover - exhaustive above

    # -- cost ----------------------------------------------------------------

    def cost(self, node: PlanNode) -> float:
        """Cumulative unitless cost (row touches) of executing ``node``."""
        if isinstance(node, Scan):
            return self.cardinality(node)
        if isinstance(node, Sample):
            return self.cost(node.child) + self.cardinality(node)
        if isinstance(node, (Filter, Bin, Project, Aggregate)):
            return self.cost(node.child) + self.cardinality(node.child)
        if isinstance(node, Join):
            left_rows = self.cardinality(node.left)
            right_rows = self.cardinality(node.right)
            children = self.cost(node.left) + self.cost(node.right)
            if node.strategy == HASH:
                return children + left_rows + right_rows + self.cardinality(node)
            return children + left_rows * right_rows
        if isinstance(node, (Sort, Limit)):
            rows = self.cardinality(node.child)
            return self.cost(node.child) + rows * math.log2(rows + 2.0)
        return self.cardinality(node)  # pragma: no cover - exhaustive above

    def parallel_profitable(self, node: PlanNode) -> bool:
        """Whether partitioned parallel execution of ``node`` should pay off.

        Joins partition on the larger input (that bounds the per-partition
        work), aggregates on their child's rows.  Sorts and top-k cuts
        compare their ``n log n`` sort work against the threshold's own
        ``n log n`` work — the same break-even expressed in the sort's cost
        function (``log`` being monotone, this crosses exactly at the row
        threshold).  Purely a physical-execution hint: the engine produces
        identical results either way.
        """
        if isinstance(node, Join):
            rows = max(self.cardinality(node.left), self.cardinality(node.right))
        elif isinstance(node, Aggregate):
            rows = self.cardinality(node.child)
        elif isinstance(node, (Sort, Limit)):
            rows = self.cardinality(node.child)
            work = rows * math.log2(rows + 2.0)
            threshold = PARALLEL_ROW_THRESHOLD * math.log2(
                PARALLEL_ROW_THRESHOLD + 2.0
            )
            return work >= threshold
        else:
            return False
        return rows >= PARALLEL_ROW_THRESHOLD

    def annotate(self, node: PlanNode) -> str:
        """The ``explain`` annotation for one node."""
        return f"rows~{self.cardinality(node):.0f} cost~{self.cost(node):.0f}"


def as_cost_model(statistics: Union[CostModel, "Database"]) -> CostModel:
    """Accept a prebuilt :class:`CostModel` or a database to wrap one around."""
    if isinstance(statistics, CostModel):
        return statistics
    return CostModel(statistics)
