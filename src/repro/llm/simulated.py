"""The simulated chat model: routes prompts to deterministic behaviours."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.llm import markers
from repro.llm.behaviors.annotation import AnnotationBehaviour
from repro.llm.behaviors.debug import DebugBehaviour, RepairBehaviour
from repro.llm.behaviors.generation import GenerationBehaviour
from repro.llm.behaviors.retune import RetuneBehaviour
from repro.llm.interface import ChatMessage, ChatModel, CompletionLog, CompletionParams, CompletionRecord
from repro.robustness.synonyms import SynonymLexicon, default_lexicon


class SimulatedChatModel(ChatModel):
    """Offline stand-in for GPT-3.5-Turbo used by GRED.

    The model inspects the prompt for the task sentinels defined in
    :mod:`repro.llm.markers` and dispatches to the matching behaviour.  Every
    call is recorded in :attr:`log` so tests and experiments can inspect which
    behaviours were exercised and how often.
    """

    def __init__(self, lexicon: Optional[SynonymLexicon] = None):
        self.lexicon = lexicon or default_lexicon()
        self.annotation = AnnotationBehaviour(lexicon=self.lexicon)
        self.generation = GenerationBehaviour(lexicon=self.lexicon)
        self.retune = RetuneBehaviour()
        self.debug = DebugBehaviour(lexicon=self.lexicon)
        self.repair = RepairBehaviour(lexicon=self.lexicon)
        self.log = CompletionLog()

    def complete(
        self, messages: Sequence[ChatMessage], params: Optional[CompletionParams] = None
    ) -> str:
        params = params or CompletionParams()
        prompt = "\n".join(message.content for message in messages)
        behaviour, response = self._dispatch(prompt)
        self.log.records.append(
            CompletionRecord(
                messages=list(messages), params=params, response=response, behaviour=behaviour
            )
        )
        return response

    def _dispatch(self, prompt: str):
        if markers.TASK_REPAIR.lower() in prompt.lower():
            return self.repair.name, self.repair.run(prompt)
        if markers.TASK_DEBUG.lower() in prompt.lower():
            return self.debug.name, self.debug.run(prompt)
        if markers.TASK_RETUNE.lower() in prompt.lower():
            return self.retune.name, self.retune.run(prompt)
        if markers.TASK_GENERATION.lower() in prompt.lower():
            return self.generation.name, self.generation.run(prompt)
        if markers.TASK_ANNOTATION.lower() in prompt.lower():
            return self.annotation.name, self.annotation.run(prompt)
        # unknown prompt: echo nothing, like a refusal
        return "unknown", ""
