"""Section markers shared by GRED's prompt makers and the simulated LLM parser.

The prompt layouts follow Appendix C of the paper.  Keeping the markers in one
module lets :mod:`repro.core.prompts` build prompts and
:mod:`repro.llm.parsing` parse them without the two packages importing each
other.
"""

SCHEMA_HEADER = "### Database Schemas:"
ANNOTATION_HEADER = "### Natural Language Annotations:"
QUESTION_HEADER = "### Natural Language Question:"
CHART_TYPES_HEADER = "### Chart Type:"
DVQ_HEADER = "### Data Visualization Query:"
REFERENCE_DVQS_HEADER = "### Reference DVQs:"
ORIGINAL_DVQ_HEADER = "### Original DVQ:"
MODIFIED_DVQ_HEADER = "### Modified DVQ:"
REVISED_DVQ_HEADER = "### Revised DVQ:"
EXECUTION_ERROR_HEADER = "### Execution Error:"
ANSWER_PREFIX = "A:"

#: Task sentinels used to route a prompt to the right behaviour.
TASK_ANNOTATION = "Please generate detailed natural language annotations"
TASK_GENERATION = "Generate DVQs based on their correspoding Database Schemas"
TASK_RETUNE = "please modify the Original DVQ to mimic the style"
TASK_DEBUG = "Please replace the column names in the Data Visualization Query"
TASK_REPAIR = "Please repair the Data Visualization Query so that it executes"
