"""The chat-completion interface shared by real and simulated LLMs."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class ChatMessage:
    """One chat message with an OpenAI-style role."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"Unknown chat role {self.role!r}")


@dataclass(frozen=True)
class CompletionParams:
    """Sampling parameters mirroring ``openai.ChatCompletion.create``.

    The paper uses ``temperature=0.0`` everywhere, ``frequency_penalty`` and
    ``presence_penalty`` of ``0.0`` for annotation generation and ``-0.5`` for
    the main GRED pipeline (Section 5.1).
    """

    temperature: float = 0.0
    frequency_penalty: float = 0.0
    presence_penalty: float = 0.0
    model: str = "simulated-gpt-3.5-turbo"


@dataclass
class CompletionRecord:
    """One logged request/response pair."""

    messages: List[ChatMessage]
    params: CompletionParams
    response: str
    behaviour: str = ""


@dataclass
class CompletionLog:
    """An in-memory log of every completion made through a model."""

    records: List[CompletionRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def by_behaviour(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.behaviour] = counts.get(record.behaviour, 0) + 1
        return counts


class ChatModel(abc.ABC):
    """Anything that can answer a list of chat messages with text."""

    @abc.abstractmethod
    def complete(
        self, messages: Sequence[ChatMessage], params: Optional[CompletionParams] = None
    ) -> str:
        """Return the assistant response for ``messages``."""

    def complete_text(self, system: str, user: str, params: Optional[CompletionParams] = None) -> str:
        """Convenience wrapper for a (system, user) prompt pair."""
        return self.complete(
            [ChatMessage(role="system", content=system), ChatMessage(role="user", content=user)],
            params=params,
        )
