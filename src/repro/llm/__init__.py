"""A simulated chat-completion LLM.

GRED drives GPT-3.5-Turbo through three prompt families (generation, retuning,
debugging) plus a database-annotation prompt used during preparation.  Offline
we substitute :class:`SimulatedChatModel`: it exposes the same chat-completion
interface (messages in, text out, temperature/penalty parameters accepted) and
routes each prompt to a deterministic behaviour that mimics what the paper
relies on the LLM to do — adapting retrieved examples, imitating programming
style, and repairing schema references from annotations.
"""

from repro.llm.interface import ChatMessage, ChatModel, CompletionLog, CompletionParams
from repro.llm.simulated import SimulatedChatModel

__all__ = [
    "ChatMessage",
    "ChatModel",
    "CompletionLog",
    "CompletionParams",
    "SimulatedChatModel",
]
