"""Parsing helpers that recover structured content from GRED-style prompts."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.database.schema import Column, ColumnType, DatabaseSchema, ForeignKey, TableSchema
from repro.llm import markers

_TABLE_LINE = re.compile(r"#\s*Table\s+(?P<name>\w+)\s*,\s*columns\s*=\s*\[(?P<columns>[^\]]*)\]")
_FK_LINE = re.compile(r"#\s*Foreign_keys\s*=\s*\[(?P<body>[^\]]*)\]")
_FK_PAIR = re.compile(r"(\w+)\.(\w+)\s*=\s*(\w+)\.(\w+)")


@dataclass
class PromptExample:
    """One few-shot example parsed from a generation prompt."""

    schema_text: str
    question: str
    dvq: str


def parse_schema_block(text: str) -> DatabaseSchema:
    """Parse the "# Table ..., columns = [...]" block into a schema object.

    Column types are unknown in the prompt, so every column defaults to TEXT —
    downstream consumers only need names and foreign keys.
    """
    tables: List[TableSchema] = []
    for match in _TABLE_LINE.finditer(text):
        name = match.group("name")
        raw_columns = [part.strip() for part in match.group("columns").split(",")]
        columns = tuple(
            Column(name=column, ctype=ColumnType.TEXT)
            for column in raw_columns
            if column and column != "*"
        )
        if columns:
            tables.append(TableSchema(name=name, columns=columns))
    foreign_keys: List[ForeignKey] = []
    fk_match = _FK_LINE.search(text)
    if fk_match:
        for table, column, ref_table, ref_column in _FK_PAIR.findall(fk_match.group("body")):
            foreign_keys.append(ForeignKey(table, column, ref_table, ref_column))
    return DatabaseSchema(name="prompt_schema", tables=tuple(tables), foreign_keys=tuple(foreign_keys))


def _sections(text: str, header: str) -> List[str]:
    """All text chunks following occurrences of ``header`` up to the next header."""
    chunks: List[str] = []
    positions = [match.start() for match in re.finditer(re.escape(header), text)]
    header_pattern = re.compile(r"^###", re.MULTILINE)
    for position in positions:
        start = position + len(header)
        next_header = header_pattern.search(text, start)
        end = next_header.start() if next_header else len(text)
        chunks.append(text[start:end].strip())
    return chunks


def parse_generation_prompt(text: str) -> Tuple[List[PromptExample], str, str]:
    """Parse a generation prompt into (examples, target schema text, target question)."""
    schema_blocks = _sections(text, markers.SCHEMA_HEADER)
    question_blocks = _sections(text, markers.QUESTION_HEADER)
    dvq_blocks = _sections(text, markers.DVQ_HEADER)
    examples: List[PromptExample] = []
    for index in range(len(dvq_blocks)):
        dvq_text = dvq_blocks[index]
        answer = _extract_answer(dvq_text)
        if not answer:
            continue
        schema_text = schema_blocks[index] if index < len(schema_blocks) else ""
        question = _clean_question(question_blocks[index]) if index < len(question_blocks) else ""
        examples.append(PromptExample(schema_text=schema_text, question=question, dvq=answer))
    target_schema = schema_blocks[-1] if schema_blocks else ""
    target_question = _clean_question(question_blocks[-1]) if question_blocks else ""
    return examples, target_schema, target_question


def _clean_question(block: str) -> str:
    lines = [line.strip() for line in block.splitlines() if line.strip()]
    content = " ".join(line.lstrip("# ").strip() for line in lines)
    return content.strip().strip('"“”')


def _extract_answer(block: str) -> Optional[str]:
    match = re.search(r"A:\s*(.+)", block, re.DOTALL)
    if not match:
        return None
    answer = " ".join(match.group(1).split())
    return answer or None


def parse_retune_prompt(text: str) -> Tuple[List[str], str]:
    """Parse a retuning prompt into (reference DVQs, original DVQ)."""
    reference_blocks = _sections(text, markers.REFERENCE_DVQS_HEADER)
    references: List[str] = []
    for block in reference_blocks:
        for line in block.splitlines():
            line = line.strip().lstrip("#").strip()
            line = re.sub(r"^\d+\s*-\s*", "", line)
            if line.lower().startswith("visualize"):
                references.append(" ".join(line.split()))
    original_blocks = _sections(text, markers.ORIGINAL_DVQ_HEADER)
    original = ""
    if original_blocks:
        for line in original_blocks[-1].splitlines():
            line = line.strip().lstrip("#").strip()
            if line.lower().startswith("visualize"):
                original = " ".join(line.split())
                break
    return references, original


def parse_repair_prompt(text: str) -> Tuple[DatabaseSchema, str, str, List[str]]:
    """Parse a repair prompt into (schema, annotations, original DVQ, missing names).

    The repair prompt shares the debugging layout plus an
    ``### Execution Error:`` section whose ``# missing: a , b`` line lists the
    identifiers the execution engine reported as absent.
    """
    schema, annotations, original = parse_debug_prompt(text)
    missing: List[str] = []
    for block in _sections(text, markers.EXECUTION_ERROR_HEADER):
        for line in block.splitlines():
            line = line.strip().lstrip("#").strip()
            if line.lower().startswith("missing:"):
                names = line.split(":", 1)[1]
                missing.extend(
                    name.strip() for name in names.split(",") if name.strip()
                )
    return schema, annotations, original, missing


def parse_debug_prompt(text: str) -> Tuple[DatabaseSchema, str, str]:
    """Parse a debugging prompt into (schema, annotation text, original DVQ)."""
    schema_blocks = _sections(text, markers.SCHEMA_HEADER)
    schema = parse_schema_block(schema_blocks[-1] if schema_blocks else "")
    annotation_blocks = _sections(text, markers.ANNOTATION_HEADER)
    annotations = annotation_blocks[-1] if annotation_blocks else ""
    original_blocks = _sections(text, markers.ORIGINAL_DVQ_HEADER)
    original = ""
    if original_blocks:
        for line in original_blocks[-1].splitlines():
            line = line.strip().lstrip("#").strip()
            if line.lower().startswith("visualize"):
                original = " ".join(line.split())
                break
    return schema, annotations, original
