"""Database-annotation behaviour (Appendix C.1 of the paper).

Given a schema description, produce natural-language annotations for every
table and column.  The simulated model expands identifier words into readable
phrases and adds the synonym glosses a real LLM would volunteer; those glosses
are what make the annotation-based debugger able to repair renamed columns.
"""

from __future__ import annotations

from typing import List, Optional

from repro.database.schema import DatabaseSchema
from repro.embeddings.tokenization import split_identifier
from repro.llm.parsing import parse_schema_block
from repro.robustness.synonyms import SynonymLexicon, default_lexicon


class AnnotationBehaviour:
    """Generates the per-table / per-column annotation block."""

    name = "annotation"

    def __init__(self, lexicon: Optional[SynonymLexicon] = None):
        self.lexicon = lexicon or default_lexicon()

    def run(self, prompt: str) -> str:
        schema = parse_schema_block(prompt)
        return self.annotate_schema(schema)

    def annotate_schema(self, schema: DatabaseSchema) -> str:
        """Render annotations for an already-parsed schema object."""
        lines: List[str] = []
        for table in schema.tables:
            table_words = " ".join(split_identifier(table.name)).lower() or table.name.lower()
            lines.append(f"Table {table.name}:")
            lines.append(f"- Stores data related to {table_words} records.")
            lines.append("- Columns:")
            for column in table.columns:
                lines.append(f"  - {column.name}: {self._describe_column(column.name)}")
            lines.append("")
        if schema.foreign_keys:
            lines.append("Foreign Keys:")
            for foreign_key in schema.foreign_keys:
                lines.append(
                    f"- {foreign_key.table}.{foreign_key.column} references "
                    f"{foreign_key.ref_table}.{foreign_key.ref_column}."
                )
        return "\n".join(lines).strip()

    def _describe_column(self, column_name: str) -> str:
        words = [word.lower() for word in split_identifier(column_name)] or [column_name.lower()]
        phrase = " ".join(words)
        glosses: List[str] = []
        for word in words:
            for synonym in self.lexicon.synonyms_for(word)[:2]:
                gloss = synonym.replace("_", " ")
                if gloss not in glosses and gloss != word:
                    glosses.append(gloss)
        description = f"The {phrase} of the record."
        if glosses:
            description += f" Also known as: {', '.join(glosses)}."
        return description
