"""Prompt-specific behaviours of the simulated LLM."""

from repro.llm.behaviors.annotation import AnnotationBehaviour
from repro.llm.behaviors.generation import GenerationBehaviour
from repro.llm.behaviors.retune import RetuneBehaviour
from repro.llm.behaviors.debug import DebugBehaviour, RepairBehaviour

__all__ = [
    "AnnotationBehaviour",
    "DebugBehaviour",
    "GenerationBehaviour",
    "RepairBehaviour",
    "RetuneBehaviour",
]
