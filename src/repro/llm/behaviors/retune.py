"""Programming-style retuning behaviour (the DVQ-Retrieval Retuner's LLM call).

Given a set of reference DVQs drawn from the training corpus and an "original"
DVQ, imitate the references' programming style *without* changing column names:
COUNT(*) becomes COUNT(<x column>) when the corpus counts a column, null checks
follow the corpus convention, and aggregate spellings are normalised.
"""

from __future__ import annotations

from typing import List

from repro.dvq.nodes import (
    AggregateExpr,
    AggregateFunction,
    ColumnRef,
    Condition,
    DVQuery,
    SelectItem,
)
from repro.dvq.normalize import try_parse
from repro.dvq.serializer import serialize_dvq
from repro.llm.parsing import parse_retune_prompt


class RetuneBehaviour:
    """Rewrites a DVQ to follow the reference style."""

    name = "retune"

    def run(self, prompt: str) -> str:
        references, original = parse_retune_prompt(prompt)
        if not original:
            return ""
        query = try_parse(original)
        if query is None:
            return original
        style = self._reference_style(references)
        retuned = self.retune_query(query, style)
        return serialize_dvq(retuned)

    # -- style inference -----------------------------------------------------

    def _reference_style(self, references: List[str]) -> dict:
        """Summarise the stylistic conventions of the reference DVQs."""
        count_column = 0
        count_star = 0
        not_null_keyword = 0
        not_null_literal = 0
        for reference in references:
            parsed = try_parse(reference)
            if parsed is None:
                continue
            for item in parsed.select:
                if isinstance(item.expr, AggregateExpr) and item.expr.function is AggregateFunction.COUNT:
                    if item.expr.argument.column == "*":
                        count_star += 1
                    else:
                        count_column += 1
            if parsed.where is not None:
                for condition in parsed.where.conditions:
                    if condition.operator.upper() == "IS NULL" and condition.negated:
                        not_null_keyword += 1
                    if condition.operator == "!=" and isinstance(condition.value, str):
                        if condition.value.lower() == "null":
                            not_null_literal += 1
        return {
            "count_uses_column": count_column >= count_star,
            "not_null_uses_keyword": not_null_keyword >= not_null_literal,
        }

    # -- rewriting -------------------------------------------------------------

    def retune_query(self, query: DVQuery, style: dict) -> DVQuery:
        """Apply the inferred style to ``query`` without touching column names."""
        new_select: List[SelectItem] = []
        x_column = query.x.column.column if query.x.column.column != "*" else None
        for item in query.select:
            expr = item.expr
            if (
                isinstance(expr, AggregateExpr)
                and expr.function is AggregateFunction.COUNT
                and expr.argument.column == "*"
                and style.get("count_uses_column", True)
                and x_column is not None
            ):
                expr = AggregateExpr(
                    function=AggregateFunction.COUNT, argument=ColumnRef(column=x_column)
                )
            new_select.append(SelectItem(expr))
        new_where = query.where
        if query.where is not None:
            new_conditions: List[Condition] = []
            for condition in query.where.conditions:
                new_conditions.append(self._retune_condition(condition, style))
            new_where = query.where.__class__(
                conditions=tuple(new_conditions), connectors=query.where.connectors
            )
        new_order = query.order_by
        if query.order_by is not None and isinstance(query.order_by.expr, AggregateExpr):
            order_expr = query.order_by.expr
            if order_expr.argument.column == "*" and x_column is not None:
                new_order = query.order_by.__class__(
                    expr=AggregateExpr(function=order_expr.function, argument=ColumnRef(column=x_column)),
                    direction=query.order_by.direction,
                )
        return query.replace(select=tuple(new_select), where=new_where, order_by=new_order)

    def _retune_condition(self, condition: Condition, style: dict) -> Condition:
        uses_keyword = style.get("not_null_uses_keyword", True)
        if condition.operator == "!=" and isinstance(condition.value, str) and condition.value.lower() == "null":
            if uses_keyword:
                return Condition(column=condition.column, operator="IS NULL", negated=True)
        if condition.operator.upper() == "IS NULL" and condition.negated and not uses_keyword:
            return Condition(column=condition.column, operator="!=", value="null")
        return condition
