"""Annotation-based debugging behaviour (the Annotation-based Debugger's LLM call).

Given an annotated database schema and a DVQ, replace every table or column
reference that does not exist in the schema with the semantically closest one,
leaving references that already exist untouched (the prompt's explicit
instruction).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.database.schema import DatabaseSchema
from repro.dvq.nodes import (
    AggregateExpr,
    ColumnRef,
    Condition,
    DVQuery,
    SelectItem,
)
from repro.dvq.normalize import try_parse
from repro.dvq.serializer import serialize_dvq
from repro.linking.linker import SchemaLinker
from repro.llm.parsing import parse_debug_prompt
from repro.robustness.synonyms import SynonymLexicon, default_lexicon


class DebugBehaviour:
    """Repairs schema references in a DVQ against an annotated database."""

    name = "debug"

    def __init__(self, lexicon: Optional[SynonymLexicon] = None):
        self.lexicon = lexicon or default_lexicon()
        self.linker = SchemaLinker(lexicon=self.lexicon, use_synonyms=True,
                                   use_char_similarity=True, min_score=0.15)

    def run(self, prompt: str) -> str:
        schema, _annotations, original = parse_debug_prompt(prompt)
        if not original:
            return ""
        query = try_parse(original)
        if query is None or not schema.tables:
            return original
        repaired = self.debug_query(query, schema)
        return serialize_dvq(repaired)

    # -- repair ----------------------------------------------------------------

    def debug_query(self, query: DVQuery, schema: DatabaseSchema) -> DVQuery:
        """Replace out-of-schema tables and columns in ``query``."""
        table = self._repair_table(query.table, schema)
        preferred_tables = [table] + [join.table for join in query.joins]

        def repair_ref(ref: ColumnRef) -> ColumnRef:
            return self._repair_column(ref, schema, preferred_tables)

        def repair_expr(expr):
            if isinstance(expr, ColumnRef):
                return repair_ref(expr)
            return AggregateExpr(
                function=expr.function, argument=repair_ref(expr.argument), distinct=expr.distinct
            )

        new_select = tuple(SelectItem(repair_expr(item.expr)) for item in query.select)
        new_joins = tuple(
            join.__class__(
                table=self._repair_table(join.table, schema),
                left=repair_ref(join.left),
                right=repair_ref(join.right),
                alias=join.alias,
            )
            for join in query.joins
        )
        new_where = None
        if query.where is not None:
            new_where = query.where.__class__(
                conditions=tuple(
                    Condition(
                        column=repair_ref(condition.column),
                        operator=condition.operator,
                        value=condition.value,
                        value2=condition.value2,
                        negated=condition.negated,
                    )
                    for condition in query.where.conditions
                ),
                connectors=query.where.connectors,
            )
        new_group = tuple(repair_ref(column) for column in query.group_by)
        new_order = None
        if query.order_by is not None:
            new_order = query.order_by.__class__(
                expr=repair_expr(query.order_by.expr), direction=query.order_by.direction
            )
        new_bin = None
        if query.bin is not None:
            new_bin = query.bin.__class__(column=repair_ref(query.bin.column), unit=query.bin.unit)
        return query.replace(
            select=new_select,
            table=table,
            joins=new_joins,
            where=new_where,
            group_by=new_group,
            order_by=new_order,
            bin=new_bin,
        )

    def _repair_table(self, table_name: str, schema: DatabaseSchema) -> str:
        if schema.has_table(table_name):
            return schema.table(table_name).name
        best = None
        best_score = 0.0
        words = self.linker.column_words(table_name)
        for table in schema.tables:
            score = self.linker.score_phrase(words, table.name)
            if score > best_score:
                best_score = score
                best = table.name
        return best or (schema.tables[0].name if schema.tables else table_name)

    def _repair_column(
        self, ref: ColumnRef, schema: DatabaseSchema, preferred_tables: Sequence[str]
    ) -> ColumnRef:
        if ref.column == "*":
            return ref
        exists = any(
            column.name.lower() == ref.column.lower() for _, column in schema.all_columns()
        )
        if exists:
            # keep existing references untouched (prompt instruction), but
            # normalise to the schema's canonical casing
            for _, column in schema.all_columns():
                if column.name.lower() == ref.column.lower():
                    return ColumnRef(column=column.name, table=ref.table)
            return ref
        candidate = self.linker.map_foreign_column(ref.column, schema, preferred_tables)
        if candidate is None:
            return ref
        return ColumnRef(column=candidate.column, table=ref.table)
