"""Annotation-based debugging behaviours (the Debugger's and Repairer's LLM calls).

Given an annotated database schema and a DVQ, :class:`DebugBehaviour` replaces
every table or column reference that does not exist in the schema with the
semantically closest one, leaving references that already exist untouched (the
prompt's explicit instruction).  :class:`RepairBehaviour` is its
execution-guided sibling: the prompt additionally carries a structured
execution error, and because the candidate is *known* to fail there is nothing
to lose — linking drops its confidence threshold and the identifiers the
engine flagged are remapped even when they exist elsewhere in the database.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.database.schema import DatabaseSchema
from repro.dvq.nodes import (
    AggregateExpr,
    ColumnRef,
    Condition,
    DVQuery,
    SelectItem,
)
from repro.dvq.normalize import try_parse
from repro.dvq.serializer import serialize_dvq
from repro.linking.linker import SchemaLinker
from repro.llm.parsing import parse_debug_prompt, parse_repair_prompt
from repro.robustness.synonyms import SynonymLexicon, default_lexicon


def transform_refs(
    query: DVQuery,
    repair_ref: Callable[[ColumnRef], ColumnRef],
    repair_table: Callable[[str], str],
) -> DVQuery:
    """Rebuild ``query`` with every table name and column reference mapped.

    The single AST walk shared by the conservative debug pass and the
    aggressive repair pass — only the mapping functions differ.
    """

    def repair_expr(expr):
        if isinstance(expr, ColumnRef):
            return repair_ref(expr)
        return AggregateExpr(
            function=expr.function, argument=repair_ref(expr.argument), distinct=expr.distinct
        )

    new_select = tuple(SelectItem(repair_expr(item.expr)) for item in query.select)
    new_joins = tuple(
        join.__class__(
            table=repair_table(join.table),
            left=repair_ref(join.left),
            right=repair_ref(join.right),
            alias=join.alias,
        )
        for join in query.joins
    )
    new_where = None
    if query.where is not None:
        new_where = query.where.__class__(
            conditions=tuple(
                Condition(
                    column=repair_ref(condition.column),
                    operator=condition.operator,
                    value=condition.value,
                    value2=condition.value2,
                    negated=condition.negated,
                )
                for condition in query.where.conditions
            ),
            connectors=query.where.connectors,
        )
    new_group = tuple(repair_ref(column) for column in query.group_by)
    new_order = None
    if query.order_by is not None:
        new_order = query.order_by.__class__(
            expr=repair_expr(query.order_by.expr), direction=query.order_by.direction
        )
    new_bin = None
    if query.bin is not None:
        new_bin = query.bin.__class__(column=repair_ref(query.bin.column), unit=query.bin.unit)
    return query.replace(
        select=new_select,
        table=repair_table(query.table),
        joins=new_joins,
        where=new_where,
        group_by=new_group,
        order_by=new_order,
        bin=new_bin,
    )


class DebugBehaviour:
    """Repairs schema references in a DVQ against an annotated database."""

    name = "debug"

    def __init__(self, lexicon: Optional[SynonymLexicon] = None):
        self.lexicon = lexicon or default_lexicon()
        self.linker = SchemaLinker(lexicon=self.lexicon, use_synonyms=True,
                                   use_char_similarity=True, min_score=0.15)

    def run(self, prompt: str) -> str:
        schema, _annotations, original = parse_debug_prompt(prompt)
        if not original:
            return ""
        query = try_parse(original)
        if query is None or not schema.tables:
            return original
        repaired = self.debug_query(query, schema)
        return serialize_dvq(repaired)

    # -- repair ----------------------------------------------------------------

    def debug_query(self, query: DVQuery, schema: DatabaseSchema) -> DVQuery:
        """Replace out-of-schema tables and columns in ``query``."""
        table = self._repair_table(query.table, schema)
        preferred_tables = [table] + [join.table for join in query.joins]

        def repair_ref(ref: ColumnRef) -> ColumnRef:
            return self._repair_column(ref, schema, preferred_tables)

        def repair_table(name: str) -> str:
            return table if name == query.table else self._repair_table(name, schema)

        return transform_refs(query, repair_ref, repair_table)

    def _repair_table(self, table_name: str, schema: DatabaseSchema) -> str:
        if schema.has_table(table_name):
            return schema.table(table_name).name
        best = None
        best_score = 0.0
        words = self.linker.column_words(table_name)
        for table in schema.tables:
            score = self.linker.score_phrase(words, table.name)
            if score > best_score:
                best_score = score
                best = table.name
        return best or (schema.tables[0].name if schema.tables else table_name)

    def _repair_column(
        self, ref: ColumnRef, schema: DatabaseSchema, preferred_tables: Sequence[str]
    ) -> ColumnRef:
        if ref.column == "*":
            return ref
        exists = any(
            column.name.lower() == ref.column.lower() for _, column in schema.all_columns()
        )
        if exists:
            # keep existing references untouched (prompt instruction), but
            # normalise to the schema's canonical casing
            for _, column in schema.all_columns():
                if column.name.lower() == ref.column.lower():
                    return ColumnRef(column=column.name, table=ref.table)
            return ref
        candidate = self.linker.map_foreign_column(ref.column, schema, preferred_tables)
        if candidate is None:
            return ref
        return ColumnRef(column=candidate.column, table=ref.table)


class RepairBehaviour(DebugBehaviour):
    """Execution-guided repair: the debugger with the safety catch off.

    Dispatched on :data:`repro.llm.markers.TASK_REPAIR` prompts, which carry a
    structured execution error.  Two things change relative to
    :class:`DebugBehaviour`:

    * the linker's confidence threshold drops to zero — the candidate is known
      to fail, so mapping an out-of-schema reference to the best available
      column can only help;
    * identifiers the engine *named* as missing are remapped even when they
      exist somewhere in the database — the classic case is a column that
      lives in a table the query never reads (``FROM products`` referencing
      ``ORDER_DATE``), which the conservative pass must leave untouched.
    """

    name = "repair"

    def __init__(self, lexicon: Optional[SynonymLexicon] = None):
        super().__init__(lexicon=lexicon)
        self.linker = SchemaLinker(
            lexicon=self.lexicon,
            use_synonyms=True,
            use_char_similarity=True,
            min_score=0.0,
        )

    def run(self, prompt: str) -> str:
        schema, _annotations, original, missing = parse_repair_prompt(prompt)
        if not original:
            return ""
        query = try_parse(original)
        if query is None or not schema.tables:
            return original
        repaired = self.debug_query(query, schema)
        repaired = self._retarget_flagged(repaired, schema, missing)
        return serialize_dvq(repaired)

    def _retarget_flagged(
        self, query: DVQuery, schema: DatabaseSchema, missing: List[str]
    ) -> DVQuery:
        """Remap references the execution error named, scoped to the read tables."""
        flagged = {name.lower() for name in missing}
        if not flagged:
            return query
        preferred = [query.table] + [join.table for join in query.joins]
        in_scope = {name.lower() for name in preferred}
        scoped_tables = tuple(
            table for table in schema.tables if table.name.lower() in in_scope
        ) or schema.tables
        scoped = DatabaseSchema(
            name=schema.name, tables=scoped_tables, foreign_keys=schema.foreign_keys
        )
        scoped_columns = {column.name.lower() for _, column in scoped.all_columns()}

        def repair_ref(ref: ColumnRef) -> ColumnRef:
            if ref.column == "*" or ref.column.lower() not in flagged:
                return ref
            if ref.column.lower() in scoped_columns:
                # resolvable within the tables the query reads; the failure
                # must have another cause, leave the reference alone
                return ref
            candidate = self.linker.map_foreign_column(ref.column, scoped, preferred)
            if candidate is None:
                return ref
            return ColumnRef(column=candidate.column, table=ref.table)

        return transform_refs(query, repair_ref, lambda name: name)
