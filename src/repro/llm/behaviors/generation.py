"""Few-shot DVQ generation behaviour (the NLQ-Retrieval Generator's LLM call).

The behaviour mimics in-context learning: it adopts the structure of the most
relevant retrieved example, reads the chart intent from the target question and
grounds slots against the schema block included in the prompt.  Like the real
LLM, it tends to *hallucinate the retrieved example's column names* when the
question no longer names the schema explicitly — the failure mode GRED's
debugger exists to repair.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dvq.nodes import AggregateExpr, AggregateFunction, ColumnRef, SelectItem
from repro.dvq.normalize import try_parse
from repro.dvq.serializer import serialize_dvq
from repro.embeddings.tokenization import content_words
from repro.linking.linker import SchemaLinker
from repro.llm.parsing import PromptExample, parse_generation_prompt
from repro.nlu.composer import QueryComposer, StructurePrior
from repro.robustness.synonyms import SynonymLexicon, default_lexicon


class GenerationBehaviour:
    """Produces a DVQ from a generation prompt."""

    name = "generation"

    def __init__(self, lexicon: Optional[SynonymLexicon] = None,
                 count_star_style: bool = True):
        self.lexicon = lexicon or default_lexicon()
        # The generator grounds slots the way in-context learning does: by
        # surface similarity against the prompt schema (no synonym knowledge).
        # When grounding fails it keeps the retrieved example's column names —
        # the hallucination the Annotation-based Debugger exists to repair.
        self.linker = SchemaLinker(lexicon=self.lexicon, use_synonyms=True,
                                   use_char_similarity=True, min_score=0.5)
        # stylistic quirk deliberately kept for a fraction of outputs: the raw
        # generation writes COUNT(*) where nvBench writes COUNT(<column>); the
        # DVQ-Retrieval Retuner is the component that matches the corpus style.
        self.count_star_style = count_star_style

    def run(self, prompt: str) -> str:
        examples, schema_text, question = parse_generation_prompt(prompt)
        from repro.llm.parsing import parse_schema_block

        schema = parse_schema_block(schema_text)
        if not schema.tables:
            return ""
        template = self._best_template(examples, question)
        prior = StructurePrior()
        if template is not None:
            template_query = try_parse(template.dvq)
            if template_query is not None:
                prior = StructurePrior.from_query(template_query)
        composer = QueryComposer(linker=self.linker)
        query = composer.compose(question, schema, prior=prior)
        if self.count_star_style and self._style_hash(question) % 4 == 0:
            query = self._apply_count_star(query)
        return serialize_dvq(query)

    @staticmethod
    def _style_hash(question: str) -> int:
        return sum(ord(char) for char in question)

    def _best_template(self, examples: List[PromptExample], question: str) -> Optional[PromptExample]:
        """The example whose question shares the most content words with the target."""
        if not examples:
            return None
        target_words = set(content_words(question))
        best = examples[-1]
        best_score = -1.0
        for example in examples:
            example_words = set(content_words(example.question))
            if not example_words:
                continue
            overlap = len(target_words & example_words) / len(target_words | example_words)
            if overlap > best_score:
                best_score = overlap
                best = example
        return best

    def _apply_count_star(self, query):
        new_select = []
        for item in query.select:
            if (
                isinstance(item.expr, AggregateExpr)
                and item.expr.function is AggregateFunction.COUNT
                and not item.expr.distinct
            ):
                new_select.append(
                    SelectItem(
                        AggregateExpr(
                            function=AggregateFunction.COUNT,
                            argument=ColumnRef(column="*"),
                        )
                    )
                )
            else:
                new_select.append(item)
        return query.replace(select=tuple(new_select))
