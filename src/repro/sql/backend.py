"""Execution of compiled DVQs on SQLite.

:class:`SQLiteBackend` implements the
:class:`~repro.executor.backend.ExecutionBackend` protocol by loading a
:class:`~repro.database.database.Database` into a SQLite database (in-memory
by default, or one file per database under ``directory``) and executing the
SQL produced by :class:`~repro.sql.compiler.DVQToSQLCompiler`.

Databases are loaded once and cached per :class:`Database` *object* (weakly,
so dropping the database frees the connection): the first execution pays the
bulk-insert cost, every subsequent query runs at engine speed.  This is what
makes the backend fast on large tables — see
``benchmarks/test_sql_backend_throughput.py`` — while the shared result
normalisation keeps its output identical to the interpreter's.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import weakref
from typing import Optional

from repro.database.database import Database
from repro.database.schema import ColumnType, TableSchema
from repro.database.table import Table
from repro.dvq.nodes import DVQuery
from repro.executor.backend import ExecutionOutcome, explain_execution, normalize_result
from repro.executor.errors import ExecutionError
from repro.executor.executor import ExecutionResult
from repro.sql.compiler import DVQToSQLCompiler, quote_identifier

#: SQLite column affinity per logical column type.  NUMERIC keeps integers
#: integral (TEXT would keep everything a string, REAL would float them all);
#: dates stay ISO text so ``substr``-based binning works.
_AFFINITY = {
    ColumnType.NUMBER: "NUMERIC",
    ColumnType.BOOLEAN: "NUMERIC",
    ColumnType.DATE: "TEXT",
    ColumnType.TEXT: "TEXT",
}


def _create_table_sql(schema: TableSchema) -> str:
    columns = " , ".join(
        f"{quote_identifier(column.name)} {_AFFINITY[column.ctype]}"
        for column in schema.columns
    )
    return f"CREATE TABLE {quote_identifier(schema.name)} ( {columns} )"


def _insert_sql(schema: TableSchema) -> str:
    placeholders = " , ".join("?" for _ in schema.columns)
    return f"INSERT INTO {quote_identifier(schema.name)} VALUES ( {placeholders} )"


class SQLiteBackend:
    """Compile-and-execute backend over SQLite.

    Args:
        directory: when set, each database is materialised as
            ``<directory>/<db name>.sqlite3`` (recreated on load) instead of
            in memory — useful for inspecting the loaded data with external
            tools or exceeding RAM.
        bin_interval: width of ``BIN ... BY INTERVAL`` buckets, matching the
            interpreter's parameter.
        normalize: apply the cross-engine result normalisation (on by
            default; turn off only to inspect raw engine output).
    """

    name = "sqlite"

    def __init__(
        self,
        directory: Optional[str] = None,
        bin_interval: int = 100,
        normalize: bool = True,
    ):
        self.directory = directory
        self.normalize = normalize
        self._compiler = DVQToSQLCompiler(bin_interval=bin_interval)
        self._connections: "weakref.WeakKeyDictionary[Database, sqlite3.Connection]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.Lock()

    # -- public API ---------------------------------------------------------

    def compile(self, query: DVQuery, database: Database):
        """Expose the compiled SQL for a query (debugging / logging)."""
        return self._compiler.compile(query, database.schema)

    def execute(self, query: DVQuery, database: Database) -> ExecutionResult:
        """Execute ``query`` against ``database`` on SQLite.

        Raises:
            ExecutionError: for references to missing tables/columns (raised
                at compile time) or engine-level failures.
        """
        compiled = self._compiler.compile(query, database.schema)
        with self._lock:
            connection = self._connection_locked(database)
            try:
                cursor = connection.execute(compiled.sql, compiled.params)
                rows = [tuple(row) for row in cursor.fetchall()]
            except sqlite3.Error as exc:
                raise ExecutionError(
                    f"SQLite execution failed for {compiled.sql!r}: {exc}",
                    query=query,
                    database=database.name,
                ) from exc
        result = ExecutionResult(
            columns=list(compiled.columns),
            rows=rows,
            chart_type=query.chart_type.value,
        )
        if self.normalize:
            result = normalize_result(result, query)
        return result

    def can_execute(self, query: DVQuery, database: Database) -> bool:
        """True when the query executes without error (used by benches)."""
        try:
            self.execute(query, database)
        except ExecutionError:
            return False
        return True

    def explain_failure(self, query: DVQuery, database: Database) -> ExecutionOutcome:
        """Execute and classify: same categories as the interpreter backend."""
        return explain_execution(self, query, database)

    def refresh(self, database: Database) -> None:
        """Drop the cached load of ``database`` (call after mutating its rows)."""
        with self._lock:
            connection = self._connections.pop(database, None)
            if connection is not None:
                connection.close()

    def close(self) -> None:
        """Close every cached connection."""
        with self._lock:
            for connection in list(self._connections.values()):
                connection.close()
            self._connections = weakref.WeakKeyDictionary()

    # -- loading ------------------------------------------------------------

    def _connection_locked(self, database: Database) -> sqlite3.Connection:
        connection = self._connections.get(database)
        if connection is not None:
            return connection
        connection = self._open(database)
        self._load(connection, database)
        self._connections[database] = connection
        return connection

    def _open(self, database: Database) -> sqlite3.Connection:
        if self.directory is None:
            target = ":memory:"
        else:
            os.makedirs(self.directory, exist_ok=True)
            target = os.path.join(self.directory, f"{database.name}.sqlite3")
            if os.path.exists(target):
                os.remove(target)
        # the backend serialises all access through its own lock, so sharing
        # the connection across evaluator worker threads is safe
        return sqlite3.connect(target, check_same_thread=False)

    def _load(self, connection: sqlite3.Connection, database: Database) -> None:
        for table in database.tables():
            self._load_table(connection, table)
        connection.commit()

    def _load_table(self, connection: sqlite3.Connection, table: Table) -> None:
        connection.execute(_create_table_sql(table.schema))
        names = [column.name for column in table.schema.columns]
        insert = _insert_sql(table.schema)
        connection.executemany(
            insert, (tuple(row[name] for name in names) for row in table.rows)
        )
