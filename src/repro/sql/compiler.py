"""Lowering of DVQ ASTs to parameterised SQL for the SQLite backend.

:class:`DVQToSQLCompiler` turns a parsed :class:`~repro.dvq.nodes.DVQuery`
into a :class:`CompiledQuery` — one SQL string plus an ordered tuple of bound
parameters — resolved against a database schema.  The compiled SQL reproduces
the *interpreter's* semantics (see :mod:`repro.executor`), which differ from
vanilla SQL in a few deliberate ways:

* ``=`` / ``!=`` / ``IN`` compare strings case-insensitively
  (``COLLATE NOCASE``), matching the interpreter's loose equality.
* ``x = 'null'`` also matches rows where ``x`` IS NULL (and ``!=`` excludes
  them), mirroring the interpreter's null-sentinel convention for model
  outputs that write ``= "null"``.
* ``NOT IN`` and ``NOT LIKE`` keep NULL rows — the interpreter evaluates the
  inner match to False and negates it, where SQL three-valued logic would
  drop the row.
* WHERE connectors associate strictly left-to-right with no AND-over-OR
  precedence (``a OR b AND c`` compiles to ``((a OR b) AND c)``), matching
  nvBench's flat DVQ semantics.
* ORDER BY sorts NULLs last ascending / first descending, and text
  case-insensitively, matching the interpreter's sort key; when the query
  carries a ``LIMIT``, every output column is appended as a canonical
  tiebreak so the top-k cut is deterministic across engines.
* ``BIN ... BY ...`` lowers to a scalar expression chosen from the binned
  column's declared type: ``substr``/``strftime`` arithmetic for dates, a
  floor-division interval label for numbers.

Column references are resolved against the schema during compilation —
unqualified names search the primary table then the joined tables in order,
aliases are honoured (including the interpreter's tolerance for qualifying by
the underlying table name even when it is aliased) — and unknown tables or
columns raise :class:`~repro.executor.errors.ExecutionError`, keeping the
"no chart" failure mode identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.database.database import Database
from repro.database.schema import Column, ColumnType, DatabaseSchema, TableSchema
from repro.dvq.nodes import (
    AggregateExpr,
    BinUnit,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    SelectItem,
    SortDirection,
)
from repro.executor.errors import ExecutionError
from repro.executor.ordering import order_index

_WEEKDAY_CASES = (
    "CASE strftime('%w', {x}) "
    "WHEN '0' THEN 'Sunday' WHEN '1' THEN 'Monday' WHEN '2' THEN 'Tuesday' "
    "WHEN '3' THEN 'Wednesday' WHEN '4' THEN 'Thursday' WHEN '5' THEN 'Friday' "
    "WHEN '6' THEN 'Saturday' ELSE {x} END"
)


def quote_identifier(name: str) -> str:
    """Double-quote ``name`` as a SQL identifier (embedded quotes doubled)."""
    return '"' + name.replace('"', '""') + '"'


@dataclass(frozen=True)
class CompiledQuery:
    """One executable SQL statement lowered from a DVQ.

    Attributes:
        sql: the SQL text with ``?`` placeholders.
        params: bound parameter values, in placeholder order.
        columns: output column labels (the DVQ select renderings, not SQL
            aliases — both backends label results identically).
    """

    sql: str
    params: Tuple[object, ...]
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class _TableEntry:
    """One table visible to the query: schema plus its effective SQL name."""

    schema: TableSchema
    effective: str  # alias if present, else the table name

    def sql_name(self) -> str:
        return quote_identifier(self.effective)


class _Scope:
    """Column resolution over the tables a query references."""

    def __init__(self) -> None:
        self.entries: List[_TableEntry] = []

    def add(self, schema: TableSchema, alias: Optional[str]) -> None:
        self.entries.append(_TableEntry(schema=schema, effective=alias or schema.name))

    def resolve(self, ref: ColumnRef, query: DVQuery) -> Tuple[_TableEntry, Column]:
        """Find the table entry and column a reference points at.

        Qualified references match the alias or the underlying table name
        (the interpreter accepts either); unqualified references search the
        tables in join order, mirroring the interpreter's lookup.
        """
        if ref.table:
            wanted = ref.table.lower()
            for entry in self.entries:
                if wanted in (entry.effective.lower(), entry.schema.name.lower()):
                    if entry.schema.has_column(ref.column):
                        return entry, entry.schema.column(ref.column)
                    raise ExecutionError(
                        f"Table {ref.table!r} has no column {ref.column!r}", query=query
                    )
            raise ExecutionError(f"Unknown table or alias {ref.table!r}", query=query)
        for entry in self.entries:
            if entry.schema.has_column(ref.column):
                return entry, entry.schema.column(ref.column)
        raise ExecutionError(f"Unknown column {ref.column!r}", query=query)

    def column_sql(self, ref: ColumnRef, query: DVQuery) -> str:
        entry, column = self.resolve(ref, query)
        return f"{entry.sql_name()}.{quote_identifier(column.name)}"

    def column_type(self, ref: ColumnRef, query: DVQuery) -> ColumnType:
        _, column = self.resolve(ref, query)
        return column.ctype


class DVQToSQLCompiler:
    """Compile DVQ ASTs into parameterised SQL with interpreter semantics.

    ``bin_interval`` is the fixed width of ``BIN ... BY INTERVAL`` buckets,
    matching :class:`~repro.executor.executor.DVQExecutor`'s parameter.
    """

    def __init__(self, bin_interval: int = 100):
        self.bin_interval = max(int(bin_interval), 1)

    def compile(
        self, query: DVQuery, schema: Union[Database, DatabaseSchema]
    ) -> CompiledQuery:
        """Lower ``query`` to SQL against ``schema``.

        Raises:
            ExecutionError: when the query references tables or columns that
                do not exist — the same failure mode as the interpreter.
        """
        if isinstance(schema, Database):
            schema = schema.schema
        scope = self._build_scope(query, schema)
        params: List[object] = []

        select_sql = [
            self._select_item_sql(item, query, scope) for item in query.select
        ]
        sql_parts = ["SELECT", " , ".join(select_sql), "FROM", self._from_sql(query, schema)]
        for join in query.joins:
            sql_parts.append(self._join_sql(join, query, scope))
        if query.where is not None and query.where.conditions:
            sql_parts.append("WHERE")
            sql_parts.append(self._where_sql(query, scope, params))
        group_exprs = self._group_exprs(query, scope)
        if group_exprs:
            sql_parts.append("GROUP BY")
            sql_parts.append(" , ".join(group_exprs))
        order_sql = self._order_sql(query, select_sql)
        if order_sql:
            sql_parts.append(order_sql)
        if query.limit is not None:
            sql_parts.append("LIMIT ?")
            params.append(int(query.limit))
        columns = tuple(item.render() for item in query.select)
        return CompiledQuery(
            sql=" ".join(sql_parts), params=tuple(params), columns=columns
        )

    # -- scope and FROM/JOIN ------------------------------------------------

    def _build_scope(self, query: DVQuery, schema: DatabaseSchema) -> _Scope:
        scope = _Scope()
        if not schema.has_table(query.table):
            raise ExecutionError(
                f"Database {schema.name!r} has no table {query.table!r}",
                query=query,
                database=schema.name,
            )
        scope.add(schema.table(query.table), query.table_alias)
        for join in query.joins:
            if not schema.has_table(join.table):
                raise ExecutionError(
                    f"Database {schema.name!r} has no table {join.table!r}",
                    query=query,
                    database=schema.name,
                )
            scope.add(schema.table(join.table), join.alias)
        return scope

    def _from_sql(self, query: DVQuery, schema: DatabaseSchema) -> str:
        table = quote_identifier(schema.table(query.table).name)
        if query.table_alias:
            return f"{table} AS {quote_identifier(query.table_alias)}"
        return table

    def _join_sql(self, join: JoinClause, query: DVQuery, scope: _Scope) -> str:
        joined = quote_identifier(join.table)
        if join.alias:
            joined = f"{joined} AS {quote_identifier(join.alias)}"
        left = scope.column_sql(join.left, query)
        right = scope.column_sql(join.right, query)
        return f"JOIN {joined} ON {left} = {right}"

    # -- SELECT -------------------------------------------------------------

    def _select_item_sql(self, item: SelectItem, query: DVQuery, scope: _Scope) -> str:
        if isinstance(item.expr, AggregateExpr):
            aggregate = item.expr
            if aggregate.argument.column == "*":
                inner = "*"
            else:
                inner = scope.column_sql(aggregate.argument, query)
            if aggregate.distinct:
                inner = f"DISTINCT {inner}"
            sql = f"{aggregate.function.value}({inner})"
            # interpreter aggregates are float-valued (SUM of ints gives 6.0);
            # value coercion in normalize_result re-canonicalises both sides,
            # so the raw SQLite integer is fine here
            return sql
        if (
            query.bin is not None
            and item.column.lower_key() == query.bin.column.lower_key()
        ):
            return self._bin_sql(query, scope)
        return scope.column_sql(item.expr, query)

    # -- BIN ----------------------------------------------------------------

    def _bin_sql(self, query: DVQuery, scope: _Scope) -> str:
        assert query.bin is not None
        column_sql = scope.column_sql(query.bin.column, query)
        ctype = scope.column_type(query.bin.column, query)
        unit = query.bin.unit
        if unit is BinUnit.YEAR:
            if ctype is ColumnType.DATE:
                return f"CAST(substr({column_sql}, 1, 4) AS INTEGER)"
            if ctype in (ColumnType.NUMBER, ColumnType.BOOLEAN):
                return f"CAST({column_sql} AS INTEGER)"
            return column_sql
        if unit is BinUnit.MONTH:
            if ctype is ColumnType.DATE:
                return f"CAST(substr({column_sql}, 6, 2) AS INTEGER)"
            return column_sql
        if unit is BinUnit.WEEKDAY:
            if ctype is ColumnType.DATE:
                return _WEEKDAY_CASES.format(x=column_sql)
            return column_sql
        if unit is BinUnit.INTERVAL:
            if ctype in (ColumnType.NUMBER, ColumnType.BOOLEAN):
                width = self.bin_interval
                ratio = f"{column_sql} * 1.0 / {width}"
                # floor() without the floor() function (needs SQLite >= 3.35):
                # truncate toward zero, then subtract 1 when truncation rounded
                # a negative ratio up
                floor = (
                    f"( CAST({ratio} AS INTEGER) - "
                    f"( {ratio} < CAST({ratio} AS INTEGER) ) )"
                )
                low = f"{floor} * {width}"
                return f"('[' || ({low}) || ', ' || (({low}) + {width}) || ')')"
            return column_sql
        raise ExecutionError(f"Unsupported bin unit {unit!r}", query=query)

    # -- WHERE --------------------------------------------------------------

    def _where_sql(self, query: DVQuery, scope: _Scope, params: List[object]) -> str:
        where = query.where
        assert where is not None
        rendered = self._condition_sql(where.conditions[0], query, scope, params)
        for index, connector in enumerate(where.connectors):
            # strict left-to-right evaluation, no AND-over-OR precedence
            nxt = self._condition_sql(
                where.conditions[index + 1], query, scope, params
            )
            rendered = f"( {rendered} {connector.upper()} {nxt} )"
        return rendered

    def _condition_sql(
        self, condition: Condition, query: DVQuery, scope: _Scope, params: List[object]
    ) -> str:
        column = scope.column_sql(condition.column, query)
        operator = condition.operator.upper()
        if operator == "IS NULL":
            return f"{column} IS NOT NULL" if condition.negated else f"{column} IS NULL"
        if operator == "BETWEEN":
            params.extend([condition.value, condition.value2])
            return f"{column} BETWEEN ? AND ?"
        if operator == "IN":
            disjuncts = []
            has_null_item = False
            for item in condition.value:
                if item is None:
                    has_null_item = True
                    disjuncts.append(f"{column} IS NULL")
                else:
                    params.append(item)
                    disjuncts.append(f"{column} = ? COLLATE NOCASE")
            inner = " OR ".join(disjuncts) if disjuncts else "0"
            if condition.negated:
                if has_null_item:
                    # a NULL list item matches NULL rows in the interpreter,
                    # so their negation drops them — plain NOT suffices (the
                    # IS NULL disjunct keeps the inner expression two-valued)
                    return f"NOT ( {inner} )"
                # interpreter NOT IN keeps NULL rows (inner match is False)
                return f"( {column} IS NULL OR NOT ( {inner} ) )"
            return f"( {inner} )"
        if operator == "LIKE":
            params.append(condition.value)
            if condition.negated:
                # interpreter NOT LIKE keeps NULL rows
                return f"( {column} IS NULL OR {column} NOT LIKE ? )"
            return f"{column} LIKE ?"
        if operator in ("=", "!="):
            sentinel = isinstance(condition.value, str) and condition.value.lower() == "null"
            params.append(condition.value)
            if operator == "=":
                if sentinel:
                    # x = 'null' doubles as an IS NULL test in the interpreter
                    return f"( {column} IS NULL OR {column} = ? COLLATE NOCASE )"
                return f"{column} = ? COLLATE NOCASE"
            if sentinel:
                return f"( {column} IS NOT NULL AND {column} <> ? COLLATE NOCASE )"
            return f"{column} <> ? COLLATE NOCASE"
        if operator in (">", ">=", "<", "<="):
            params.append(condition.value)
            return f"{column} {operator} ?"
        raise ExecutionError(
            f"Unsupported comparison operator {condition.operator!r}", query=query
        )

    # -- GROUP BY -----------------------------------------------------------

    def _needs_grouping(self, query: DVQuery) -> bool:
        if query.group_by or query.bin is not None:
            return True
        return any(item.is_aggregate for item in query.select)

    def _group_exprs(self, query: DVQuery, scope: _Scope) -> List[str]:
        if not self._needs_grouping(query):
            return []
        exprs: List[str] = []
        if query.bin is not None:
            exprs.append(self._bin_sql(query, scope))
        for column in query.group_by:
            exprs.append(scope.column_sql(column, query))
        if not exprs:
            # implicit grouping by the non-aggregated select columns
            for item in query.select:
                if not item.is_aggregate and item.column.column != "*":
                    exprs.append(scope.column_sql(item.column, query))
        if not exprs:
            # aggregates-only query: a constant group collapses to one row on
            # data and — unlike a bare aggregate SELECT — to zero rows on
            # empty input, matching the interpreter
            exprs.append("'__all__'")
        return exprs

    # -- ORDER BY / LIMIT ---------------------------------------------------

    def _order_sql(self, query: DVQuery, select_sql: List[str]) -> str:
        terms: List[str] = []
        if query.order_by is not None:
            index = order_index(query)
            expr = select_sql[index] if index < len(select_sql) else select_sql[0]
            descending = query.order_by.direction is SortDirection.DESC
            terms.extend(self._order_terms(expr, descending))
        if query.limit is not None:
            # deterministic top-k: canonical ascending tiebreak over every
            # output column, mirroring executor.ordering.canonical_order
            for expr in select_sql:
                terms.extend(self._order_terms(expr, descending=False))
        if not terms:
            return ""
        return "ORDER BY " + " , ".join(terms)

    def _order_terms(self, expr: str, descending: bool) -> List[str]:
        """One sort key as SQL terms matching the interpreter's value key.

        The interpreter key is ``(type rank, lowered text / number, exact
        text)`` with NULL ranked last: the ``IS NULL`` term reproduces the
        NULL rank portably (no ``NULLS LAST`` syntax, which needs SQLite >=
        3.30), NOCASE the case-insensitive comparison, and a final BINARY
        term the exact-text tiebreak between case-variant strings.
        """
        direction = "DESC" if descending else "ASC"
        return [
            f"( {expr} IS NULL ) {direction}",
            f"{expr} COLLATE NOCASE {direction}",
            f"{expr} COLLATE BINARY {direction}",
        ]
