"""Lowering of logical plans to parameterised SQL for the SQLite backend.

:class:`DVQToSQLCompiler` turns a parsed :class:`~repro.dvq.nodes.DVQuery`
into a :class:`CompiledQuery` — one SQL string plus an ordered tuple of bound
parameters.  Since the unified-IR refactor, the compiler no longer walks the
raw AST: it lowers the *canonical logical plan* produced by
:func:`repro.plan.planner.plan_query`, the same plan the columnar engine
executes.  All schema resolution — table existence, alias handling (including
the interpreter's tolerance for qualifying by the underlying table name even
when aliased), exact column casing, column types, the ORDER BY output index —
happens once in the planner; unknown tables or columns raise
:class:`~repro.executor.errors.ExecutionError` there, keeping the "no chart"
failure mode identical across backends.

The rendered SQL reproduces the *interpreter's* value semantics, which differ
from vanilla SQL in a few deliberate ways:

* ``=`` / ``!=`` / ``IN`` compare strings case-insensitively
  (``COLLATE NOCASE``), matching the interpreter's loose equality.
* ``x = 'null'`` also matches rows where ``x`` IS NULL (and ``!=`` excludes
  them), mirroring the interpreter's null-sentinel convention for model
  outputs that write ``= "null"``.
* ``NOT IN`` and ``NOT LIKE`` keep NULL rows — the interpreter evaluates the
  inner match to False and negates it, where SQL three-valued logic would
  drop the row.
* WHERE connectors associate strictly left-to-right with no AND-over-OR
  precedence (``a OR b AND c`` compiles to ``((a OR b) AND c)``) — encoded
  structurally in the plan's left-associative predicate tree.
* ORDER BY sorts NULLs last ascending / first descending, and text
  case-insensitively, matching the interpreter's sort key; when the plan
  carries a :class:`~repro.plan.nodes.Limit`, every output column is appended
  as a canonical tiebreak so the top-k cut is deterministic across engines.
* ``BIN ... BY ...`` lowers to a scalar expression chosen from the binned
  column's declared type: ``substr``/``strftime`` arithmetic for dates, a
  floor-division interval label for numbers.

The compiler expects the canonical plan spine (optimizer rules such as
predicate pushdown target the columnar engine; SQLite plans its own joins) —
:meth:`DVQToSQLCompiler.compile` always lowers the unoptimized plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.database.database import Database
from repro.database.schema import ColumnType, DatabaseSchema
from repro.dvq.nodes import Condition, DVQuery
from repro.executor.errors import ExecutionError
from repro.plan.nodes import (
    Aggregate,
    AggregateOutput,
    Bin,
    BinKey,
    BinOutput,
    Comparison,
    ConstPredicate,
    Filter,
    Join,
    Limit,
    OutputExpr,
    PlanNode,
    Predicate,
    Project,
    ResolvedColumn,
    Scan,
    Sort,
)
from repro.plan.planner import plan_query

_WEEKDAY_CASES = (
    "CASE strftime('%w', {x}) "
    "WHEN '0' THEN 'Sunday' WHEN '1' THEN 'Monday' WHEN '2' THEN 'Tuesday' "
    "WHEN '3' THEN 'Wednesday' WHEN '4' THEN 'Thursday' WHEN '5' THEN 'Friday' "
    "WHEN '6' THEN 'Saturday' ELSE {x} END"
)


def quote_identifier(name: str) -> str:
    """Double-quote ``name`` as a SQL identifier (embedded quotes doubled)."""
    return '"' + name.replace('"', '""') + '"'


def _column_sql(column: ResolvedColumn) -> str:
    return f"{quote_identifier(column.effective)}.{quote_identifier(column.column)}"


@dataclass(frozen=True)
class CompiledQuery:
    """One executable SQL statement lowered from a DVQ.

    Attributes:
        sql: the SQL text with ``?`` placeholders.
        params: bound parameter values, in placeholder order.
        columns: output column labels (the DVQ select renderings, not SQL
            aliases — every backend labels results identically).
    """

    sql: str
    params: Tuple[object, ...]
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class _Spine:
    """The canonical plan unpacked into its clause-shaped pieces."""

    scan: Scan
    joins: Tuple[Join, ...]
    filter: Optional[Filter]
    bin: Optional[Bin]
    output: Union[Aggregate, Project]
    sort: Optional[Sort]
    limit: Optional[Limit]


def _unpack_spine(plan: PlanNode) -> _Spine:
    limit = None
    sort = None
    node = plan
    if isinstance(node, Limit):
        limit = node
        node = node.child
    if isinstance(node, Sort):
        sort = node
        node = node.child
    if not isinstance(node, (Aggregate, Project)):
        raise ValueError(
            f"Not a canonical plan (found {type(node).__name__} at the output "
            "position); the SQL compiler lowers unoptimized plans only"
        )
    output = node
    node = node.child
    bin_node = None
    if isinstance(node, Bin):
        bin_node = node
        node = node.child
    filter_node = None
    if isinstance(node, Filter):
        filter_node = node
        node = node.child
    joins: List[Join] = []
    while isinstance(node, Join):
        if not isinstance(node.right, Scan):
            raise ValueError(
                f"Not a canonical plan (found {type(node.right).__name__} as a "
                "join input); the SQL compiler lowers unoptimized plans only"
            )
        joins.append(node)
        node = node.left
    if not isinstance(node, Scan):
        raise ValueError(
            f"Not a canonical plan (found {type(node).__name__} below the join chain); "
            "the SQL compiler lowers unoptimized plans only"
        )
    joins.reverse()
    return _Spine(
        scan=node,
        joins=tuple(joins),
        filter=filter_node,
        bin=bin_node,
        output=output,
        sort=sort,
        limit=limit,
    )


class DVQToSQLCompiler:
    """Compile DVQs into parameterised SQL with interpreter semantics.

    Lowers via the shared logical plan (:func:`repro.plan.planner.plan_query`).
    ``bin_interval`` is the fixed width of ``BIN ... BY INTERVAL`` buckets,
    matching the interpreter's and the columnar engine's parameter.
    """

    def __init__(self, bin_interval: int = 100):
        self.bin_interval = max(int(bin_interval), 1)

    def compile(
        self, query: DVQuery, schema: Union[Database, DatabaseSchema]
    ) -> CompiledQuery:
        """Lower ``query`` to SQL against ``schema``.

        Raises:
            ExecutionError: when the query references tables or columns that
                do not exist — raised by the planner, the same failure mode
                as every engine.
        """
        return self.compile_plan(plan_query(query, schema))

    def compile_plan(self, plan: PlanNode) -> CompiledQuery:
        """Render a *canonical* logical plan as one SQL statement.

        Raises:
            ValueError: when the plan is not in canonical shape (e.g. it was
                rewritten by the optimizer's predicate pushdown).
        """
        spine = _unpack_spine(plan)
        params: List[object] = []
        select_sql = [self._output_sql(output, spine.bin) for output in spine.output.outputs]
        sql_parts = ["SELECT", " , ".join(select_sql), "FROM", self._scan_sql(spine.scan)]
        for join in spine.joins:
            sql_parts.append(self._join_sql(join))
        if spine.filter is not None:
            sql_parts.append("WHERE")
            sql_parts.append(self._predicate_sql(spine.filter.predicate, params))
        if isinstance(spine.output, Aggregate):
            sql_parts.append("GROUP BY")
            sql_parts.append(" , ".join(self._group_exprs(spine.output, spine.bin)))
        order_sql = self._order_sql(spine.sort, spine.limit, select_sql)
        if order_sql:
            sql_parts.append(order_sql)
        if spine.limit is not None:
            sql_parts.append("LIMIT ?")
            params.append(int(spine.limit.count))
        columns = tuple(output.label for output in spine.output.outputs)
        return CompiledQuery(
            sql=" ".join(sql_parts), params=tuple(params), columns=columns
        )

    # -- FROM / JOIN ---------------------------------------------------------

    def _scan_sql(self, scan: Scan) -> str:
        table = quote_identifier(scan.table)
        if scan.effective != scan.table:
            return f"{table} AS {quote_identifier(scan.effective)}"
        return table

    def _join_sql(self, join: Join) -> str:
        scan = join.right  # a Scan — _unpack_spine validated the join inputs
        joined = quote_identifier(scan.table)
        if scan.effective != scan.table:
            joined = f"{joined} AS {quote_identifier(scan.effective)}"
        left = _column_sql(join.left_key)
        right = _column_sql(join.right_key)
        return f"JOIN {joined} ON {left} = {right}"

    # -- SELECT --------------------------------------------------------------

    def _output_sql(self, output: OutputExpr, bin_node: Optional[Bin]) -> str:
        if isinstance(output, AggregateOutput):
            inner = "*" if output.argument is None else _column_sql(output.argument)
            if output.distinct:
                inner = f"DISTINCT {inner}"
            # interpreter aggregates are float-valued (SUM of ints gives 6.0);
            # value coercion in normalize_result re-canonicalises both sides,
            # so the raw SQLite integer is fine here
            return f"{output.function}({inner})"
        if isinstance(output, BinOutput):
            assert bin_node is not None
            return self._bin_sql(bin_node)
        return _column_sql(output.column)

    # -- BIN -----------------------------------------------------------------

    def _bin_sql(self, bin_node: Bin) -> str:
        column_sql = _column_sql(bin_node.column)
        ctype = bin_node.column.ctype
        unit = bin_node.unit.value
        if unit == "YEAR":
            if ctype is ColumnType.DATE:
                return f"CAST(substr({column_sql}, 1, 4) AS INTEGER)"
            if ctype in (ColumnType.NUMBER, ColumnType.BOOLEAN):
                return f"CAST({column_sql} AS INTEGER)"
            return column_sql
        if unit == "MONTH":
            if ctype is ColumnType.DATE:
                return f"CAST(substr({column_sql}, 6, 2) AS INTEGER)"
            return column_sql
        if unit == "WEEKDAY":
            if ctype is ColumnType.DATE:
                return _WEEKDAY_CASES.format(x=column_sql)
            return column_sql
        # INTERVAL
        if ctype in (ColumnType.NUMBER, ColumnType.BOOLEAN):
            width = self.bin_interval
            ratio = f"{column_sql} * 1.0 / {width}"
            # floor() without the floor() function (needs SQLite >= 3.35):
            # truncate toward zero, then subtract 1 when truncation rounded
            # a negative ratio up
            floor = (
                f"( CAST({ratio} AS INTEGER) - "
                f"( {ratio} < CAST({ratio} AS INTEGER) ) )"
            )
            low = f"{floor} * {width}"
            return f"('[' || ({low}) || ', ' || (({low}) + {width}) || ')')"
        return column_sql

    # -- WHERE ---------------------------------------------------------------

    def _predicate_sql(self, predicate: Predicate, params: List[object]) -> str:
        if isinstance(predicate, Comparison):
            return self._condition_sql(predicate.column, predicate.condition, params)
        if isinstance(predicate, ConstPredicate):
            return "1" if predicate.value else "0"
        left = self._predicate_sql(predicate.left, params)
        right = self._predicate_sql(predicate.right, params)
        # the plan's predicate tree is left-associative by construction
        return f"( {left} {predicate.op} {right} )"

    def _condition_sql(
        self, resolved: ResolvedColumn, condition: Condition, params: List[object]
    ) -> str:
        column = _column_sql(resolved)
        operator = condition.operator.upper()
        if operator == "IS NULL":
            return f"{column} IS NOT NULL" if condition.negated else f"{column} IS NULL"
        if operator == "BETWEEN":
            params.extend([condition.value, condition.value2])
            return f"{column} BETWEEN ? AND ?"
        if operator == "IN":
            disjuncts = []
            has_null_item = False
            for item in condition.value:
                if item is None:
                    has_null_item = True
                    disjuncts.append(f"{column} IS NULL")
                else:
                    params.append(item)
                    disjuncts.append(f"{column} = ? COLLATE NOCASE")
            inner = " OR ".join(disjuncts) if disjuncts else "0"
            if condition.negated:
                if has_null_item:
                    # a NULL list item matches NULL rows in the interpreter,
                    # so their negation drops them — plain NOT suffices (the
                    # IS NULL disjunct keeps the inner expression two-valued)
                    return f"NOT ( {inner} )"
                # interpreter NOT IN keeps NULL rows (inner match is False)
                return f"( {column} IS NULL OR NOT ( {inner} ) )"
            return f"( {inner} )"
        if operator == "LIKE":
            params.append(condition.value)
            if condition.negated:
                # interpreter NOT LIKE keeps NULL rows
                return f"( {column} IS NULL OR {column} NOT LIKE ? )"
            return f"{column} LIKE ?"
        if operator in ("=", "!="):
            sentinel = isinstance(condition.value, str) and condition.value.lower() == "null"
            params.append(condition.value)
            if operator == "=":
                if sentinel:
                    # x = 'null' doubles as an IS NULL test in the interpreter
                    return f"( {column} IS NULL OR {column} = ? COLLATE NOCASE )"
                return f"{column} = ? COLLATE NOCASE"
            if sentinel:
                return f"( {column} IS NOT NULL AND {column} <> ? COLLATE NOCASE )"
            return f"{column} <> ? COLLATE NOCASE"
        if operator in (">", ">=", "<", "<="):
            params.append(condition.value)
            return f"{column} {operator} ?"
        raise ExecutionError(f"Unsupported comparison operator {condition.operator!r}")

    # -- GROUP BY ------------------------------------------------------------

    def _group_exprs(self, aggregate: Aggregate, bin_node: Optional[Bin]) -> List[str]:
        exprs: List[str] = []
        for key in aggregate.keys:
            if isinstance(key, BinKey):
                assert bin_node is not None
                exprs.append(self._bin_sql(bin_node))
            else:
                exprs.append(_column_sql(key))
        if not exprs:
            # aggregates-only query: a constant group collapses to one row on
            # data and — unlike a bare aggregate SELECT — to zero rows on
            # empty input, matching the interpreter and the columnar engine
            exprs.append("'__all__'")
        return exprs

    # -- ORDER BY / LIMIT ----------------------------------------------------

    def _order_sql(
        self, sort: Optional[Sort], limit: Optional[Limit], select_sql: List[str]
    ) -> str:
        terms: List[str] = []
        if sort is not None:
            expr = select_sql[sort.index] if sort.index < len(select_sql) else select_sql[0]
            terms.extend(self._order_terms(expr, sort.descending))
        if limit is not None:
            # deterministic top-k: canonical ascending tiebreak over every
            # output column, mirroring executor.ordering.canonical_order
            for expr in select_sql:
                terms.extend(self._order_terms(expr, descending=False))
        if not terms:
            return ""
        return "ORDER BY " + " , ".join(terms)

    def _order_terms(self, expr: str, descending: bool) -> List[str]:
        """One sort key as SQL terms matching the interpreter's value key.

        The interpreter key is ``(type rank, lowered text / number, exact
        text)`` with NULL ranked last: the ``IS NULL`` term reproduces the
        NULL rank portably (no ``NULLS LAST`` syntax, which needs SQLite >=
        3.30), NOCASE the case-insensitive comparison, and a final BINARY
        term the exact-text tiebreak between case-variant strings.
        """
        direction = "DESC" if descending else "ASC"
        return [
            f"( {expr} IS NULL ) {direction}",
            f"{expr} COLLATE NOCASE {direction}",
            f"{expr} COLLATE BINARY {direction}",
        ]
