"""DVQ -> SQL compilation and execution on a real database engine.

The seed executor interprets DVQs row-at-a-time over in-memory dict rows —
a fine reference oracle, but far too slow for large tables.  This package
scales execution by lowering a parsed :class:`~repro.dvq.nodes.DVQuery` to a
parameterised SQL statement (:class:`DVQToSQLCompiler`) and running it on
SQLite (:class:`SQLiteBackend`, an
:class:`~repro.executor.backend.ExecutionBackend`).

The compiler targets *interpreter semantics*, not plain SQL semantics: string
equality is case-insensitive, ``NOT IN`` / ``NOT LIKE`` keep NULL rows,
``x = 'null'`` doubles as an IS NULL test, WHERE connectors associate left to
right without precedence, and NULL ordering follows the interpreter's
"numbers, strings, then NULL" convention.  Combined with the shared result
normalisation in :mod:`repro.executor.backend`, both engines return identical
:class:`~repro.executor.executor.ExecutionResult` objects for every query in
the portable DVQ subset — a property enforced by the differential suite in
``tests/test_sql_differential.py`` and exploited by the throughput benchmark
in ``benchmarks/test_sql_backend_throughput.py``.
"""

from repro.sql.backend import SQLiteBackend
from repro.sql.compiler import CompiledQuery, DVQToSQLCompiler

__all__ = [
    "CompiledQuery",
    "DVQToSQLCompiler",
    "SQLiteBackend",
]
