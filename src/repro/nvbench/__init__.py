"""Synthesis of an nvBench-like text-to-vis corpus.

nvBench (Luo et al., SIGMOD'21) pairs natural language questions with Data
Visualization Queries over ~150 relational databases derived from Spider.  The
real release is not available offline, so this package synthesises a corpus
with the same essential properties:

* ~100 databases drawn from realistic domain templates (HR, cinema, pets,
  university, retail, ...), each with multiple tables, typed columns and
  foreign keys;
* (NLQ, DVQ) pairs across seven chart types and four hardness levels, with the
  chart-type and hardness distribution of the paper's Figure 2;
* NLQs that explicitly mention table/column names and DVQ keywords — the exact
  property that makes the original benchmark easy for lexical-matching models
  and that nvBench-Rob removes.
"""

from repro.nvbench.example import NVBenchExample, Split
from repro.nvbench.dataset import NVBenchDataset
from repro.nvbench.generator import CorpusConfig, NVBenchGenerator
from repro.nvbench.hardness import Hardness, compute_hardness
from repro.nvbench.stats import DatasetStatistics, compute_statistics

__all__ = [
    "CorpusConfig",
    "DatasetStatistics",
    "Hardness",
    "NVBenchDataset",
    "NVBenchExample",
    "NVBenchGenerator",
    "Split",
    "compute_hardness",
    "compute_statistics",
]
