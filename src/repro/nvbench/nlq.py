"""NLQ templating: render a gold DVQ as an explicit natural language question.

nvBench questions characteristically *name* the schema elements and DVQ
keywords they need ("return a bar chart about the distribution of job_id and
the average of manager_id, and group by attribute job_id, and list in asc by
the X").  The templater reproduces that style so models trained on the corpus
can (and do) rely on lexical matching — the property nvBench-Rob later removes.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.dvq.nodes import (
    AggregateExpr,
    AggregateFunction,
    BinUnit,
    ChartType,
    Condition,
    DVQuery,
    SortDirection,
)

_CHART_PHRASES = {
    ChartType.BAR: ["a bar chart", "a bar graph", "a bar chart"],
    ChartType.PIE: ["a pie chart", "a pie"],
    ChartType.LINE: ["a line chart", "a line graph", "the trend line"],
    ChartType.SCATTER: ["a scatter chart", "a scatter plot"],
    ChartType.STACKED_BAR: ["a stacked bar chart", "a stacked bar"],
    ChartType.GROUPING_LINE: ["a grouping line chart", "a multi-series line chart"],
    ChartType.GROUPING_SCATTER: ["a grouping scatter chart", "a grouped scatter plot"],
}

_AGGREGATE_PHRASES = {
    AggregateFunction.COUNT: "the number of {col}",
    AggregateFunction.SUM: "the sum of {col}",
    AggregateFunction.AVG: "the average of {col}",
    AggregateFunction.MIN: "the minimum {col}",
    AggregateFunction.MAX: "the maximum {col}",
}

_OPERATOR_PHRASES = {
    "=": "{col} equals {val}",
    "!=": "{col} does not equal {val}",
    ">": "{col} is greater than {val}",
    ">=": "{col} is at least {val}",
    "<": "{col} is less than {val}",
    "<=": "{col} is at most {val}",
    "LIKE": "{col} is like {val}",
    "BETWEEN": "{col} is between {val} and {val2}",
    "IS NULL": "{col} is null",
}

_BIN_PHRASES = {
    BinUnit.YEAR: "bin {col} by year",
    BinUnit.MONTH: "bin {col} by month",
    BinUnit.WEEKDAY: "bin {col} by weekday",
    BinUnit.INTERVAL: "bin {col} into intervals",
}


def _channel_phrase(item) -> str:
    if isinstance(item.expr, AggregateExpr):
        template = _AGGREGATE_PHRASES[item.expr.function]
        return template.format(col=item.expr.argument.column)
    return item.expr.column


def _condition_phrase(condition: Condition) -> str:
    operator = condition.operator.upper()
    template = _OPERATOR_PHRASES.get(operator, "{col} " + operator + " {val}")
    value = condition.value
    if isinstance(value, tuple):
        value = ", ".join(str(item) for item in value)
    phrase = template.format(col=condition.column.column, val=value, val2=condition.value2)
    if condition.negated and operator == "IS NULL":
        phrase = f"{condition.column.column} is not null"
    elif condition.negated:
        phrase = f"not ({phrase})"
    return phrase


def _where_phrase(query: DVQuery) -> str:
    if query.where is None or not query.where.conditions:
        return ""
    pieces: List[str] = []
    for index, condition in enumerate(query.where.conditions):
        if index > 0:
            pieces.append(query.where.connectors[index - 1].lower())
        pieces.append(_condition_phrase(condition))
    return " for those records whose " + " ".join(pieces)


def _order_phrase(query: DVQuery, rng: random.Random) -> str:
    if query.order_by is None:
        return ""
    direction = query.order_by.direction
    if isinstance(query.order_by.expr, AggregateExpr):
        target = f"the {query.order_by.expr.function.value.lower()} of {query.order_by.expr.argument.column}"
    else:
        target = query.order_by.expr.column
    if direction is SortDirection.ASC:
        word = rng.choice(["in asc order", "in ascending order", "from low to high"])
    else:
        word = rng.choice(["in desc order", "in descending order", "from high to low"])
    return f", and sort by {target} {word}"


def _group_phrase(query: DVQuery) -> str:
    if not query.group_by:
        return ""
    columns = " and ".join(column.column for column in query.group_by)
    return f", and group by attribute {columns}"


def _bin_phrase(query: DVQuery) -> str:
    if query.bin is None:
        return ""
    return ", and " + _BIN_PHRASES[query.bin.unit].format(col=query.bin.column.column)


class NLQTemplater:
    """Renders DVQs into explicit-mention natural language questions."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)

    def render(self, query: DVQuery) -> str:
        """Render ``query`` as an nvBench-style question."""
        chart_phrase = self.rng.choice(_CHART_PHRASES[query.chart_type])
        x_phrase = _channel_phrase(query.x)
        y_phrase = _channel_phrase(query.y)
        where_phrase = _where_phrase(query)
        group_phrase = _group_phrase(query)
        order_phrase = _order_phrase(query, self.rng)
        bin_phrase = _bin_phrase(query)
        table_phrase = f" from table {query.table}"
        skeleton = self.rng.choice(
            [
                "Show {y} for each {x} in {chart}{table}{where}{group}{order}{bin}.",
                "Return {chart} about the distribution of {x} and {y}{table}{where}{group}{order}{bin}.",
                "Draw {chart} showing {y} over {x}{table}{where}{group}{order}{bin}.",
                "Visualize {y} by {x} using {chart}{table}{where}{group}{order}{bin}.",
                "What is {y} for each {x}? Plot {chart}{table}{where}{group}{order}{bin}.",
            ]
        )
        question = skeleton.format(
            chart=chart_phrase,
            x=x_phrase,
            y=y_phrase,
            table=table_phrase,
            where=where_phrase,
            group=group_phrase,
            order=order_phrase,
            bin=bin_phrase,
        )
        if query.color is not None:
            question = question[:-1] + f", colored by {query.color.column.column}."
        return question
