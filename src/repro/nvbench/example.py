"""The (NLQ, DVQ) example record and dataset splits."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class Split(enum.Enum):
    """Dataset splits, following the 80 / 4.5 / 15.5 ratio used by ncNet."""

    TRAIN = "train"
    DEV = "dev"
    TEST = "test"


@dataclass(frozen=True)
class NVBenchExample:
    """One benchmark example.

    Attributes:
        example_id: stable unique identifier.
        db_id: name of the database the query runs against.
        nlq: the natural language question.
        dvq: the gold Data Visualization Query text.
        chart_type: chart family name (matches :class:`repro.dvq.ChartType` values).
        hardness: one of ``Easy`` / ``Medium`` / ``Hard`` / ``Extra Hard``.
        split: which split the example belongs to.
        meta: free-form provenance information (template ids, perturbation log).
    """

    example_id: str
    db_id: str
    nlq: str
    dvq: str
    chart_type: str
    hardness: str
    split: Split = Split.TRAIN
    meta: Dict[str, str] = field(default_factory=dict)

    def with_split(self, split: Split) -> "NVBenchExample":
        return replace(self, split=split)

    def with_variant(
        self,
        nlq: Optional[str] = None,
        dvq: Optional[str] = None,
        db_id: Optional[str] = None,
        meta_update: Optional[Dict[str, str]] = None,
    ) -> "NVBenchExample":
        """Return a perturbed copy (used by the nvBench-Rob builders)."""
        meta = dict(self.meta)
        if meta_update:
            meta.update(meta_update)
        return replace(
            self,
            nlq=nlq if nlq is not None else self.nlq,
            dvq=dvq if dvq is not None else self.dvq,
            db_id=db_id if db_id is not None else self.db_id,
            meta=meta,
        )

    def to_dict(self) -> Dict[str, object]:
        payload = {
            "example_id": self.example_id,
            "db_id": self.db_id,
            "nlq": self.nlq,
            "dvq": self.dvq,
            "chart_type": self.chart_type,
            "hardness": self.hardness,
            "split": self.split.value,
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "NVBenchExample":
        return cls(
            example_id=str(payload["example_id"]),
            db_id=str(payload["db_id"]),
            nlq=str(payload["nlq"]),
            dvq=str(payload["dvq"]),
            chart_type=str(payload["chart_type"]),
            hardness=str(payload["hardness"]),
            split=Split(payload.get("split", "train")),
            meta=dict(payload.get("meta", {})),
        )
