"""Dataset statistics matching the paper's Figure 2."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.database.catalog import Catalog
from repro.nvbench.example import NVBenchExample

#: Chart-type counts for the nvBench-Rob development set reported in Figure 2.
PAPER_CHART_TYPE_COUNTS: Dict[str, int] = {
    "BAR": 891,
    "PIE": 88,
    "LINE": 51,
    "SCATTER": 48,
    "STACKED BAR": 60,
    "GROUPING LINE": 11,
    "GROUPING SCATTER": 33,
}

#: Hardness counts reported in Figure 2.
PAPER_HARDNESS_COUNTS: Dict[str, int] = {
    "Easy": 286,
    "Medium": 475,
    "Hard": 282,
    "Extra Hard": 139,
}

#: Catalog-level counts reported in Figure 2.
PAPER_CATALOG_COUNTS: Dict[str, float] = {
    "databases": 104,
    "tables": 552,
    "columns": 3050,
    "avg_tables_per_db": 5.31,
    "avg_columns_per_table": 5.53,
}


@dataclass
class DatasetStatistics:
    """Computed statistics for a set of examples plus its catalog."""

    total_examples: int
    chart_type_counts: Dict[str, int]
    hardness_counts: Dict[str, int]
    catalog_counts: Dict[str, float]

    def as_rows(self):
        """Flatten into (section, key, value) rows for table printing."""
        rows = [("total", "examples", self.total_examples)]
        rows.extend(("chart_type", key, value) for key, value in sorted(self.chart_type_counts.items()))
        rows.extend(("hardness", key, value) for key, value in self.hardness_counts.items())
        rows.extend(("catalog", key, round(value, 2)) for key, value in self.catalog_counts.items())
        return rows


def compute_statistics(
    examples: Iterable[NVBenchExample], catalog: Optional[Catalog] = None
) -> DatasetStatistics:
    """Compute Figure-2 style statistics for ``examples``."""
    chart_counts: Dict[str, int] = {}
    hardness_counts: Dict[str, int] = {}
    total = 0
    for example in examples:
        total += 1
        chart_counts[example.chart_type] = chart_counts.get(example.chart_type, 0) + 1
        hardness_counts[example.hardness] = hardness_counts.get(example.hardness, 0) + 1
    catalog_counts = catalog.statistics() if catalog is not None else {}
    return DatasetStatistics(
        total_examples=total,
        chart_type_counts=chart_counts,
        hardness_counts=hardness_counts,
        catalog_counts=catalog_counts,
    )
