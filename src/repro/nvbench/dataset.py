"""The dataset container: examples plus the database catalog, with JSON IO."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

from repro.database.catalog import Catalog
from repro.nvbench.example import NVBenchExample, Split


class NVBenchDataset:
    """A collection of (NLQ, DVQ) examples with split accessors."""

    def __init__(self, examples: Iterable[NVBenchExample], catalog: Optional[Catalog] = None,
                 name: str = "nvBench"):
        self.name = name
        self.examples: List[NVBenchExample] = list(examples)
        self.catalog = catalog

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self) -> Iterator[NVBenchExample]:
        return iter(self.examples)

    def split(self, split: Split) -> List[NVBenchExample]:
        """Examples belonging to ``split``."""
        return [example for example in self.examples if example.split is split]

    @property
    def train(self) -> List[NVBenchExample]:
        return self.split(Split.TRAIN)

    @property
    def dev(self) -> List[NVBenchExample]:
        return self.split(Split.DEV)

    @property
    def test(self) -> List[NVBenchExample]:
        return self.split(Split.TEST)

    def by_database(self) -> Dict[str, List[NVBenchExample]]:
        grouped: Dict[str, List[NVBenchExample]] = {}
        for example in self.examples:
            grouped.setdefault(example.db_id, []).append(example)
        return grouped

    def filter(self, predicate) -> "NVBenchDataset":
        """A new dataset view containing the examples satisfying ``predicate``."""
        return NVBenchDataset(
            (example for example in self.examples if predicate(example)),
            catalog=self.catalog,
            name=self.name,
        )

    def with_examples(self, examples: Iterable[NVBenchExample], name: Optional[str] = None) -> "NVBenchDataset":
        """A new dataset sharing this dataset's catalog but with different examples."""
        return NVBenchDataset(examples, catalog=self.catalog, name=name or self.name)

    # -- persistence -------------------------------------------------------

    def save_examples(self, path: Path) -> None:
        """Write the example list (not the catalog) as a JSON file."""
        payload = {
            "name": self.name,
            "examples": [example.to_dict() for example in self.examples],
        }
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def load_examples(cls, path: Path, catalog: Optional[Catalog] = None) -> "NVBenchDataset":
        """Load an example list written by :meth:`save_examples`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        examples = [NVBenchExample.from_dict(item) for item in payload.get("examples", [])]
        return cls(examples, catalog=catalog, name=payload.get("name", "nvBench"))
