"""Top-level corpus generator: catalog + examples + splits."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.database.catalog import Catalog
from repro.database.datagen import DataGenerator
from repro.dvq.nodes import ChartType
from repro.dvq.serializer import serialize_dvq
from repro.nvbench.dataset import NVBenchDataset
from repro.nvbench.domains import build_catalog_schemas
from repro.nvbench.example import NVBenchExample, Split
from repro.nvbench.hardness import Hardness, compute_hardness
from repro.nvbench.nlq import NLQTemplater
from repro.nvbench.sampler import DVQSampler, SamplingError
from repro.nvbench.stats import PAPER_CHART_TYPE_COUNTS, PAPER_HARDNESS_COUNTS

#: Split ratios used by ncNet and adopted by the paper (train / dev / test).
SPLIT_RATIOS: Tuple[float, float, float] = (0.80, 0.045, 0.155)


@dataclass(frozen=True)
class CorpusConfig:
    """Configuration of the synthetic corpus.

    The defaults reproduce the scale of the paper's development split (104
    databases, a test set of ~1,182 pairs implied by a total of ~7,600 pairs).
    ``scale`` shrinks every count proportionally for fast tests and benches.
    """

    database_count: int = 104
    total_examples: int = 7626
    rows_per_table: int = 30
    seed: int = 7
    scale: float = 1.0
    chart_type_weights: Dict[str, int] = field(
        default_factory=lambda: dict(PAPER_CHART_TYPE_COUNTS)
    )
    hardness_weights: Dict[str, int] = field(
        default_factory=lambda: dict(PAPER_HARDNESS_COUNTS)
    )

    def scaled(self) -> "CorpusConfig":
        """Apply ``scale`` to the corpus size parameters."""
        if self.scale == 1.0:
            return self
        return CorpusConfig(
            database_count=max(4, int(self.database_count * self.scale)),
            total_examples=max(40, int(self.total_examples * self.scale)),
            rows_per_table=self.rows_per_table,
            seed=self.seed,
            scale=1.0,
            chart_type_weights=dict(self.chart_type_weights),
            hardness_weights=dict(self.hardness_weights),
        )


class NVBenchGenerator:
    """Builds the full synthetic corpus deterministically from a seed."""

    def __init__(self, config: CorpusConfig = CorpusConfig()):
        self.config = config.scaled()
        self.rng = random.Random(self.config.seed)

    # -- catalog ------------------------------------------------------------

    def build_catalog(self) -> Catalog:
        """Instantiate and populate the database catalog."""
        schemas = build_catalog_schemas(self.config.database_count)
        generator = DataGenerator(seed=self.config.seed, rows_per_table=self.config.rows_per_table)
        return Catalog(generator.populate(schema) for schema in schemas)

    # -- examples -----------------------------------------------------------

    def _weighted_choice(self, weights: Dict[str, int]) -> str:
        names = list(weights)
        totals = [weights[name] for name in names]
        return self.rng.choices(names, weights=totals, k=1)[0]

    def build_examples(self, catalog: Catalog) -> List[NVBenchExample]:
        """Sample (NLQ, DVQ) pairs across the catalog."""
        templater = NLQTemplater(self.rng)
        databases = list(catalog)
        examples: List[NVBenchExample] = []
        seen_dvqs = set()
        attempts = 0
        max_attempts = self.config.total_examples * 20
        while len(examples) < self.config.total_examples and attempts < max_attempts:
            attempts += 1
            database = self.rng.choice(databases)
            chart_name = self._weighted_choice(self.config.chart_type_weights)
            hardness_name = self._weighted_choice(self.config.hardness_weights)
            sampler = DVQSampler(database.schema, self.rng)
            try:
                query = sampler.sample(ChartType.from_text(chart_name), Hardness(hardness_name))
            except SamplingError:
                continue
            dvq_text = serialize_dvq(query)
            dedup_key = (database.name, dvq_text)
            if dedup_key in seen_dvqs and self.rng.random() < 0.7:
                continue
            seen_dvqs.add(dedup_key)
            nlq = templater.render(query)
            hardness = compute_hardness(query)
            examples.append(
                NVBenchExample(
                    example_id=f"ex_{len(examples):05d}",
                    db_id=database.name,
                    nlq=nlq,
                    dvq=dvq_text,
                    chart_type=query.chart_type.value,
                    hardness=hardness.value,
                    meta={"requested_hardness": hardness_name},
                )
            )
        return examples

    def assign_splits(self, examples: Sequence[NVBenchExample]) -> List[NVBenchExample]:
        """Randomly assign the 80 / 4.5 / 15.5 train/dev/test split.

        The paper uses a *no-cross-domain* split: train and test share
        databases, so assignment is per-example rather than per-database.
        """
        shuffled = list(examples)
        self.rng.shuffle(shuffled)
        total = len(shuffled)
        train_end = int(total * SPLIT_RATIOS[0])
        dev_end = train_end + int(total * SPLIT_RATIOS[1])
        assigned: List[NVBenchExample] = []
        for index, example in enumerate(shuffled):
            if index < train_end:
                split = Split.TRAIN
            elif index < dev_end:
                split = Split.DEV
            else:
                split = Split.TEST
            assigned.append(example.with_split(split))
        return assigned

    def generate(self, catalog: Optional[Catalog] = None) -> NVBenchDataset:
        """Build the complete dataset (catalog + split examples)."""
        catalog = catalog or self.build_catalog()
        examples = self.assign_splits(self.build_examples(catalog))
        return NVBenchDataset(examples, catalog=catalog, name="nvBench-synthetic")


def build_corpus(scale: float = 1.0, seed: int = 7) -> NVBenchDataset:
    """Convenience helper used by examples and benchmarks."""
    return NVBenchGenerator(CorpusConfig(scale=scale, seed=seed)).generate()
