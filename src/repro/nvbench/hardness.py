"""Hardness levels for DVQs, following nvBench's Easy/Medium/Hard/Extra Hard."""

from __future__ import annotations

import enum

from repro.dvq.nodes import DVQuery


class Hardness(enum.Enum):
    """The four difficulty levels reported in Figure 2."""

    EASY = "Easy"
    MEDIUM = "Medium"
    HARD = "Hard"
    EXTRA_HARD = "Extra Hard"


def compute_hardness(query: DVQuery) -> Hardness:
    """Score a DVQ's structural complexity and map it onto a hardness level.

    The scoring mirrors nvBench's SQL-derived hardness heuristic: each clause
    family (aggregation, filtering, grouping, ordering, binning, joins) adds
    complexity, and multi-condition filters or joins push queries into the
    higher bands.
    """
    score = 0
    if any(item.is_aggregate for item in query.select):
        score += 1
    if query.where is not None:
        score += len(query.where.conditions)
        score += sum(1 for connector in query.where.connectors if connector.upper() == "OR")
    if query.group_by:
        score += 1
    if query.order_by is not None:
        score += 1
    if query.bin is not None:
        score += 1
    if query.joins:
        score += 2 * len(query.joins)
    if query.chart_type.is_grouped:
        score += 1
    if score <= 1:
        return Hardness.EASY
    if score <= 3:
        return Hardness.MEDIUM
    if score <= 5:
        return Hardness.HARD
    return Hardness.EXTRA_HARD
