"""Domain schema templates used to synthesise the database catalog.

Each template describes a realistic application domain (HR, cinema, university,
retail, ...) with typed tables and foreign keys.  The generator expands the
templates into ~104 concrete databases by creating numbered variants, matching
the scale reported in the paper's Figure 2 (104 databases, 552 tables, ~3050
columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.database.schema import ColumnType, DatabaseSchema, build_schema

TEXT = ColumnType.TEXT
NUMBER = ColumnType.NUMBER
DATE = ColumnType.DATE
BOOLEAN = ColumnType.BOOLEAN

#: A column spec is (name, type, semantic tag).
ColumnSpec = Tuple[str, ColumnType, str]
TableSpec = Tuple[str, Sequence[ColumnSpec]]
ForeignKeySpec = Tuple[str, str, str, str]


@dataclass(frozen=True)
class DomainTemplate:
    """A reusable domain schema blueprint."""

    name: str
    tables: Tuple[TableSpec, ...]
    foreign_keys: Tuple[ForeignKeySpec, ...] = ()

    def instantiate(self, suffix: int) -> DatabaseSchema:
        """Create a concrete database schema named ``{name}_{suffix}``."""
        return build_schema(
            name=f"{self.name}_{suffix}",
            tables=self.tables,
            foreign_keys=self.foreign_keys,
            domain=self.name,
        )


def _t(name: str, *columns: ColumnSpec) -> TableSpec:
    return (name, columns)


DOMAIN_TEMPLATES: Tuple[DomainTemplate, ...] = (
    DomainTemplate(
        name="hr",
        tables=(
            _t(
                "employees",
                ("EMPLOYEE_ID", NUMBER, "id"),
                ("FIRST_NAME", TEXT, "first_name"),
                ("LAST_NAME", TEXT, "last_name"),
                ("HIRE_DATE", DATE, "date"),
                ("SALARY", NUMBER, "salary"),
                ("COMMISSION_PCT", NUMBER, "percentage"),
                ("JOB_ID", NUMBER, "id"),
                ("DEPARTMENT_ID", NUMBER, "id"),
                ("MANAGER_ID", NUMBER, "id"),
            ),
            _t(
                "departments",
                ("DEPARTMENT_ID", NUMBER, "id"),
                ("DEPARTMENT_NAME", TEXT, "department"),
                ("MANAGER_ID", NUMBER, "id"),
                ("LOCATION_ID", NUMBER, "id"),
            ),
            _t(
                "jobs",
                ("JOB_ID", NUMBER, "id"),
                ("JOB_TITLE", TEXT, "job_title"),
                ("MIN_SALARY", NUMBER, "salary"),
                ("MAX_SALARY", NUMBER, "salary"),
            ),
            _t(
                "job_history",
                ("HISTORY_ID", NUMBER, "id"),
                ("EMPLOYEE_ID", NUMBER, "id"),
                ("START_DATE", DATE, "date"),
                ("END_DATE", DATE, "date"),
                ("JOB_ID", NUMBER, "id"),
                ("DEPARTMENT_ID", NUMBER, "id"),
            ),
            _t(
                "locations",
                ("LOCATION_ID", NUMBER, "id"),
                ("CITY", TEXT, "city"),
                ("COUNTRY_NAME", TEXT, "country"),
                ("POSTAL_CODE", NUMBER, "count"),
            ),
        ),
        foreign_keys=(
            ("employees", "DEPARTMENT_ID", "departments", "DEPARTMENT_ID"),
            ("employees", "JOB_ID", "jobs", "JOB_ID"),
            ("job_history", "EMPLOYEE_ID", "employees", "EMPLOYEE_ID"),
            ("job_history", "JOB_ID", "jobs", "JOB_ID"),
            ("departments", "LOCATION_ID", "locations", "LOCATION_ID"),
        ),
    ),
    DomainTemplate(
        name="cinema",
        tables=(
            _t(
                "cinema",
                ("Cinema_ID", NUMBER, "id"),
                ("Name", TEXT, "name"),
                ("Openning_year", NUMBER, "year"),
                ("Capacity", NUMBER, "capacity"),
                ("Location", TEXT, "city"),
            ),
            _t(
                "film",
                ("Film_ID", NUMBER, "id"),
                ("Title", TEXT, "name"),
                ("Directed_by", TEXT, "last_name"),
                ("Gross_in_dollar", NUMBER, "budget"),
                ("Release_year", NUMBER, "year"),
            ),
            _t(
                "schedule",
                ("Schedule_ID", NUMBER, "id"),
                ("Cinema_ID", NUMBER, "id"),
                ("Film_ID", NUMBER, "id"),
                ("Show_times_per_day", NUMBER, "count"),
                ("Price", NUMBER, "price"),
                ("Date", DATE, "date"),
            ),
            _t(
                "staff",
                ("Staff_ID", NUMBER, "id"),
                ("Staff_name", TEXT, "first_name"),
                ("Cinema_ID", NUMBER, "id"),
                ("Age", NUMBER, "age"),
                ("Monthly_pay", NUMBER, "salary"),
            ),
        ),
        foreign_keys=(
            ("schedule", "Cinema_ID", "cinema", "Cinema_ID"),
            ("schedule", "Film_ID", "film", "Film_ID"),
            ("staff", "Cinema_ID", "cinema", "Cinema_ID"),
        ),
    ),
    DomainTemplate(
        name="pets",
        tables=(
            _t(
                "Student",
                ("StuID", NUMBER, "id"),
                ("LName", TEXT, "last_name"),
                ("Fname", TEXT, "first_name"),
                ("Age", NUMBER, "age"),
                ("Sex", TEXT, "category"),
                ("Major", NUMBER, "count"),
                ("Advisor", NUMBER, "id"),
                ("city_code", TEXT, "city"),
            ),
            _t(
                "Pets",
                ("PetID", NUMBER, "id"),
                ("PetType", TEXT, "category"),
                ("pet_age", NUMBER, "age"),
                ("weight", NUMBER, "weight"),
            ),
            _t(
                "Has_Pet",
                ("Record_ID", NUMBER, "id"),
                ("StuID", NUMBER, "id"),
                ("PetID", NUMBER, "id"),
            ),
            _t(
                "Clinic_Visit",
                ("Visit_ID", NUMBER, "id"),
                ("PetID", NUMBER, "id"),
                ("Visit_date", DATE, "date"),
                ("Cost", NUMBER, "price"),
            ),
        ),
        foreign_keys=(
            ("Has_Pet", "StuID", "Student", "StuID"),
            ("Has_Pet", "PetID", "Pets", "PetID"),
            ("Clinic_Visit", "PetID", "Pets", "PetID"),
        ),
    ),
    DomainTemplate(
        name="university",
        tables=(
            _t(
                "instructor",
                ("instructor_id", NUMBER, "id"),
                ("name", TEXT, "last_name"),
                ("dept_name", TEXT, "department"),
                ("salary", NUMBER, "salary"),
                ("hire_year", NUMBER, "year"),
            ),
            _t(
                "student",
                ("student_id", NUMBER, "id"),
                ("student_name", TEXT, "first_name"),
                ("dept_name", TEXT, "department"),
                ("tot_cred", NUMBER, "count"),
                ("enroll_date", DATE, "date"),
            ),
            _t(
                "course",
                ("course_id", NUMBER, "id"),
                ("title", TEXT, "name"),
                ("dept_name", TEXT, "department"),
                ("credits", NUMBER, "rating"),
            ),
            _t(
                "takes",
                ("takes_id", NUMBER, "id"),
                ("student_id", NUMBER, "id"),
                ("course_id", NUMBER, "id"),
                ("grade", NUMBER, "rating"),
                ("semester_year", NUMBER, "year"),
            ),
            _t(
                "department",
                ("dept_id", NUMBER, "id"),
                ("dept_name", TEXT, "department"),
                ("building", TEXT, "name"),
                ("budget", NUMBER, "budget"),
            ),
        ),
        foreign_keys=(
            ("takes", "student_id", "student", "student_id"),
            ("takes", "course_id", "course", "course_id"),
        ),
    ),
    DomainTemplate(
        name="retail",
        tables=(
            _t(
                "products",
                ("product_id", NUMBER, "id"),
                ("product_name", TEXT, "product"),
                ("category", TEXT, "category"),
                ("unit_price", NUMBER, "price"),
                ("stock_quantity", NUMBER, "count"),
            ),
            _t(
                "customers",
                ("customer_id", NUMBER, "id"),
                ("customer_name", TEXT, "first_name"),
                ("city", TEXT, "city"),
                ("country", TEXT, "country"),
                ("join_date", DATE, "date"),
            ),
            _t(
                "orders",
                ("order_id", NUMBER, "id"),
                ("customer_id", NUMBER, "id"),
                ("order_date", DATE, "date"),
                ("order_status", TEXT, "status"),
                ("total_amount", NUMBER, "price"),
            ),
            _t(
                "order_items",
                ("item_id", NUMBER, "id"),
                ("order_id", NUMBER, "id"),
                ("product_id", NUMBER, "id"),
                ("quantity", NUMBER, "count"),
                ("discount", NUMBER, "percentage"),
            ),
            _t(
                "suppliers",
                ("supplier_id", NUMBER, "id"),
                ("supplier_name", TEXT, "name"),
                ("country", TEXT, "country"),
                ("rating", NUMBER, "rating"),
            ),
        ),
        foreign_keys=(
            ("orders", "customer_id", "customers", "customer_id"),
            ("order_items", "order_id", "orders", "order_id"),
            ("order_items", "product_id", "products", "product_id"),
        ),
    ),
    DomainTemplate(
        name="flight",
        tables=(
            _t(
                "airlines",
                ("airline_id", NUMBER, "id"),
                ("airline_name", TEXT, "name"),
                ("country", TEXT, "country"),
                ("fleet_size", NUMBER, "count"),
            ),
            _t(
                "airports",
                ("airport_id", NUMBER, "id"),
                ("airport_name", TEXT, "name"),
                ("city", TEXT, "city"),
                ("elevation", NUMBER, "distance"),
            ),
            _t(
                "flights",
                ("flight_id", NUMBER, "id"),
                ("airline_id", NUMBER, "id"),
                ("source_airport", NUMBER, "id"),
                ("destination_airport", NUMBER, "id"),
                ("departure_date", DATE, "date"),
                ("price", NUMBER, "price"),
                ("duration_minutes", NUMBER, "distance"),
            ),
            _t(
                "passengers",
                ("passenger_id", NUMBER, "id"),
                ("passenger_name", TEXT, "first_name"),
                ("age", NUMBER, "age"),
                ("nationality", TEXT, "country"),
            ),
            _t(
                "bookings",
                ("booking_id", NUMBER, "id"),
                ("flight_id", NUMBER, "id"),
                ("passenger_id", NUMBER, "id"),
                ("booking_date", DATE, "date"),
                ("seat_class", TEXT, "category"),
                ("fare", NUMBER, "price"),
            ),
        ),
        foreign_keys=(
            ("flights", "airline_id", "airlines", "airline_id"),
            ("bookings", "flight_id", "flights", "flight_id"),
            ("bookings", "passenger_id", "passengers", "passenger_id"),
        ),
    ),
    DomainTemplate(
        name="hospital",
        tables=(
            _t(
                "physician",
                ("physician_id", NUMBER, "id"),
                ("physician_name", TEXT, "last_name"),
                ("position", TEXT, "job_title"),
                ("salary", NUMBER, "salary"),
            ),
            _t(
                "patient",
                ("patient_id", NUMBER, "id"),
                ("patient_name", TEXT, "first_name"),
                ("age", NUMBER, "age"),
                ("city", TEXT, "city"),
                ("insurance_status", TEXT, "status"),
            ),
            _t(
                "appointment",
                ("appointment_id", NUMBER, "id"),
                ("patient_id", NUMBER, "id"),
                ("physician_id", NUMBER, "id"),
                ("appointment_date", DATE, "date"),
                ("cost", NUMBER, "price"),
            ),
            _t(
                "department",
                ("department_id", NUMBER, "id"),
                ("department_name", TEXT, "department"),
                ("head_physician", NUMBER, "id"),
                ("annual_budget", NUMBER, "budget"),
            ),
            _t(
                "medication",
                ("medication_id", NUMBER, "id"),
                ("medication_name", TEXT, "product"),
                ("brand", TEXT, "name"),
                ("price", NUMBER, "price"),
            ),
        ),
        foreign_keys=(
            ("appointment", "patient_id", "patient", "patient_id"),
            ("appointment", "physician_id", "physician", "physician_id"),
        ),
    ),
    DomainTemplate(
        name="exhibition",
        tables=(
            _t(
                "artist",
                ("Artist_ID", NUMBER, "id"),
                ("Artist_Name", TEXT, "last_name"),
                ("Country", TEXT, "country"),
                ("Year_Join", NUMBER, "year"),
            ),
            _t(
                "exhibition",
                ("Exhibition_ID", NUMBER, "id"),
                ("Year", NUMBER, "year"),
                ("Theme", TEXT, "theme"),
                ("Artist_ID", NUMBER, "id"),
                ("Ticket_Price", NUMBER, "price"),
            ),
            _t(
                "exhibition_record",
                ("Record_ID", NUMBER, "id"),
                ("Exhibition_ID", NUMBER, "id"),
                ("Date", DATE, "date"),
                ("Attendance", NUMBER, "count"),
            ),
        ),
        foreign_keys=(
            ("exhibition", "Artist_ID", "artist", "Artist_ID"),
            ("exhibition_record", "Exhibition_ID", "exhibition", "Exhibition_ID"),
        ),
    ),
    DomainTemplate(
        name="soccer",
        tables=(
            _t(
                "team",
                ("Team_ID", NUMBER, "id"),
                ("Team_Name", TEXT, "name"),
                ("City", TEXT, "city"),
                ("Founded_Year", NUMBER, "year"),
                ("Stadium_Capacity", NUMBER, "capacity"),
            ),
            _t(
                "player",
                ("Player_ID", NUMBER, "id"),
                ("Player_Name", TEXT, "last_name"),
                ("Team_ID", NUMBER, "id"),
                ("Age", NUMBER, "age"),
                ("Goals", NUMBER, "count"),
                ("Weekly_Wage", NUMBER, "salary"),
            ),
            _t(
                "match",
                ("Match_ID", NUMBER, "id"),
                ("Home_Team", NUMBER, "id"),
                ("Away_Team", NUMBER, "id"),
                ("Match_Date", DATE, "date"),
                ("Attendance", NUMBER, "count"),
            ),
            _t(
                "coach",
                ("Coach_ID", NUMBER, "id"),
                ("Coach_Name", TEXT, "last_name"),
                ("Team_ID", NUMBER, "id"),
                ("Experience_Years", NUMBER, "age"),
            ),
        ),
        foreign_keys=(
            ("player", "Team_ID", "team", "Team_ID"),
            ("coach", "Team_ID", "team", "Team_ID"),
        ),
    ),
    DomainTemplate(
        name="library",
        tables=(
            _t(
                "book",
                ("Book_ID", NUMBER, "id"),
                ("Title", TEXT, "name"),
                ("Author", TEXT, "last_name"),
                ("Publication_Year", NUMBER, "year"),
                ("Pages", NUMBER, "count"),
                ("Category", TEXT, "category"),
            ),
            _t(
                "member",
                ("Member_ID", NUMBER, "id"),
                ("Member_Name", TEXT, "first_name"),
                ("Age", NUMBER, "age"),
                ("City", TEXT, "city"),
                ("Membership_Level", TEXT, "category"),
            ),
            _t(
                "loan",
                ("Loan_ID", NUMBER, "id"),
                ("Book_ID", NUMBER, "id"),
                ("Member_ID", NUMBER, "id"),
                ("Loan_Date", DATE, "date"),
                ("Fine_Amount", NUMBER, "price"),
            ),
            _t(
                "branch",
                ("Branch_ID", NUMBER, "id"),
                ("Branch_Name", TEXT, "name"),
                ("City", TEXT, "city"),
                ("Open_Year", NUMBER, "year"),
            ),
        ),
        foreign_keys=(
            ("loan", "Book_ID", "book", "Book_ID"),
            ("loan", "Member_ID", "member", "Member_ID"),
        ),
    ),
    DomainTemplate(
        name="concert",
        tables=(
            _t(
                "stadium",
                ("Stadium_ID", NUMBER, "id"),
                ("Stadium_Name", TEXT, "name"),
                ("Location", TEXT, "city"),
                ("Capacity", NUMBER, "capacity"),
                ("Average_Attendance", NUMBER, "count"),
            ),
            _t(
                "singer",
                ("Singer_ID", NUMBER, "id"),
                ("Singer_Name", TEXT, "first_name"),
                ("Country", TEXT, "country"),
                ("Age", NUMBER, "age"),
                ("Net_Worth", NUMBER, "budget"),
            ),
            _t(
                "concert",
                ("Concert_ID", NUMBER, "id"),
                ("Concert_Name", TEXT, "name"),
                ("Stadium_ID", NUMBER, "id"),
                ("Year", NUMBER, "year"),
                ("Ticket_Price", NUMBER, "price"),
            ),
            _t(
                "singer_in_concert",
                ("Entry_ID", NUMBER, "id"),
                ("Concert_ID", NUMBER, "id"),
                ("Singer_ID", NUMBER, "id"),
            ),
        ),
        foreign_keys=(
            ("concert", "Stadium_ID", "stadium", "Stadium_ID"),
            ("singer_in_concert", "Concert_ID", "concert", "Concert_ID"),
            ("singer_in_concert", "Singer_ID", "singer", "Singer_ID"),
        ),
    ),
    DomainTemplate(
        name="weather",
        tables=(
            _t(
                "station",
                ("Station_ID", NUMBER, "id"),
                ("Station_Name", TEXT, "name"),
                ("City", TEXT, "city"),
                ("Elevation", NUMBER, "distance"),
                ("Install_Year", NUMBER, "year"),
            ),
            _t(
                "reading",
                ("Reading_ID", NUMBER, "id"),
                ("Station_ID", NUMBER, "id"),
                ("Reading_Date", DATE, "date"),
                ("Temperature", NUMBER, "rating"),
                ("Humidity", NUMBER, "percentage"),
                ("Rainfall", NUMBER, "weight"),
            ),
            _t(
                "alert",
                ("Alert_ID", NUMBER, "id"),
                ("Station_ID", NUMBER, "id"),
                ("Alert_Type", TEXT, "category"),
                ("Alert_Date", DATE, "date"),
                ("Severity", NUMBER, "rating"),
            ),
        ),
        foreign_keys=(
            ("reading", "Station_ID", "station", "Station_ID"),
            ("alert", "Station_ID", "station", "Station_ID"),
        ),
    ),
    DomainTemplate(
        name="restaurant",
        tables=(
            _t(
                "restaurant",
                ("Restaurant_ID", NUMBER, "id"),
                ("Restaurant_Name", TEXT, "name"),
                ("City", TEXT, "city"),
                ("Cuisine", TEXT, "category"),
                ("Rating", NUMBER, "rating"),
                ("Open_Year", NUMBER, "year"),
            ),
            _t(
                "dish",
                ("Dish_ID", NUMBER, "id"),
                ("Dish_Name", TEXT, "product"),
                ("Restaurant_ID", NUMBER, "id"),
                ("Price", NUMBER, "price"),
                ("Calories", NUMBER, "count"),
            ),
            _t(
                "review",
                ("Review_ID", NUMBER, "id"),
                ("Restaurant_ID", NUMBER, "id"),
                ("Review_Date", DATE, "date"),
                ("Score", NUMBER, "rating"),
                ("Reviewer_City", TEXT, "city"),
            ),
            _t(
                "reservation",
                ("Reservation_ID", NUMBER, "id"),
                ("Restaurant_ID", NUMBER, "id"),
                ("Party_Size", NUMBER, "count"),
                ("Reservation_Date", DATE, "date"),
                ("Status", TEXT, "status"),
            ),
        ),
        foreign_keys=(
            ("dish", "Restaurant_ID", "restaurant", "Restaurant_ID"),
            ("review", "Restaurant_ID", "restaurant", "Restaurant_ID"),
            ("reservation", "Restaurant_ID", "restaurant", "Restaurant_ID"),
        ),
    ),
    DomainTemplate(
        name="energy",
        tables=(
            _t(
                "plant",
                ("Plant_ID", NUMBER, "id"),
                ("Plant_Name", TEXT, "name"),
                ("Fuel_Type", TEXT, "category"),
                ("Capacity_MW", NUMBER, "capacity"),
                ("Commission_Year", NUMBER, "year"),
                ("Country", TEXT, "country"),
            ),
            _t(
                "production",
                ("Production_ID", NUMBER, "id"),
                ("Plant_ID", NUMBER, "id"),
                ("Production_Date", DATE, "date"),
                ("Output_MWh", NUMBER, "capacity"),
                ("Efficiency", NUMBER, "percentage"),
            ),
            _t(
                "maintenance",
                ("Maintenance_ID", NUMBER, "id"),
                ("Plant_ID", NUMBER, "id"),
                ("Maintenance_Date", DATE, "date"),
                ("Cost", NUMBER, "budget"),
                ("Status", TEXT, "status"),
            ),
        ),
        foreign_keys=(
            ("production", "Plant_ID", "plant", "Plant_ID"),
            ("maintenance", "Plant_ID", "plant", "Plant_ID"),
        ),
    ),
)


def build_catalog_schemas(database_count: int = 104) -> List[DatabaseSchema]:
    """Expand the domain templates into ``database_count`` concrete schemas.

    Templates are cycled with increasing numeric suffixes (``hr_1``, ``hr_2``,
    ...), mirroring how Spider/nvBench contain several databases per domain.
    """
    schemas: List[DatabaseSchema] = []
    suffix_counter: Dict[str, int] = {}
    template_count = len(DOMAIN_TEMPLATES)
    for index in range(database_count):
        template = DOMAIN_TEMPLATES[index % template_count]
        suffix_counter[template.name] = suffix_counter.get(template.name, 0) + 1
        schemas.append(template.instantiate(suffix_counter[template.name]))
    return schemas


def template_by_name(name: str) -> DomainTemplate:
    """Look up a domain template by its base name."""
    for template in DOMAIN_TEMPLATES:
        if template.name == name:
            return template
    raise KeyError(f"Unknown domain template {name!r}")
