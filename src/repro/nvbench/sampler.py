"""Sampling of gold DVQs over a database schema.

The sampler draws structurally valid DVQs for a requested chart type and
hardness band.  It only uses columns whose types fit the chart semantics
(nominal x for bars/pies, temporal x for lines, quantitative x/y for scatter)
so the resulting charts are meaningful and executable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.database.schema import Column, ColumnType, DatabaseSchema, ForeignKey, TableSchema
from repro.dvq.nodes import (
    AggregateExpr,
    AggregateFunction,
    BinClause,
    BinUnit,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderClause,
    SelectItem,
    SortDirection,
    WhereClause,
)
from repro.nvbench.hardness import Hardness


class SamplingError(Exception):
    """Raised when a schema cannot support the requested chart type."""


_TEXT_FILTER_VALUES = {
    "status": ["Open", "Closed", "Pending"],
    "category": ["Gold", "Silver", "Standard"],
    "city": ["Seattle", "London", "Tokyo"],
    "country": ["Canada", "Germany", "Japan"],
    "department": ["Finance", "Sales", "IT"],
    "theme": ["History", "Science", "Art"],
}


class DVQSampler:
    """Draws DVQs from a schema with a seeded random generator."""

    def __init__(self, schema: DatabaseSchema, rng: random.Random):
        self.schema = schema
        self.rng = rng

    # -- column selection helpers -----------------------------------------

    def _columns_of(self, table: TableSchema, predicate) -> List[Column]:
        return [column for column in table.columns if predicate(column)]

    def _nominal_columns(self, table: TableSchema) -> List[Column]:
        return self._columns_of(
            table, lambda c: c.ctype is ColumnType.TEXT and not c.is_primary
        )

    def _numeric_columns(self, table: TableSchema) -> List[Column]:
        return self._columns_of(
            table,
            lambda c: c.ctype is ColumnType.NUMBER and not c.is_primary,
        )

    def _temporal_columns(self, table: TableSchema) -> List[Column]:
        temporal = self._columns_of(table, lambda c: c.ctype is ColumnType.DATE)
        years = self._columns_of(
            table, lambda c: c.ctype is ColumnType.NUMBER and "year" in c.semantic
        )
        return temporal + years

    def _pick(self, candidates: Sequence[Column]) -> Column:
        if not candidates:
            raise SamplingError("No suitable column available")
        return self.rng.choice(list(candidates))

    def _pick_table(self, needs_nominal: bool = False, needs_numeric: bool = False,
                    needs_temporal: bool = False, needs_two_nominal: bool = False) -> TableSchema:
        candidates = []
        for table in self.schema.tables:
            if needs_nominal and not self._nominal_columns(table):
                continue
            if needs_two_nominal and len(self._nominal_columns(table)) < 2:
                continue
            if needs_numeric and not self._numeric_columns(table):
                continue
            if needs_temporal and not self._temporal_columns(table):
                continue
            candidates.append(table)
        if not candidates:
            raise SamplingError(
                f"Schema {self.schema.name!r} has no table matching the chart requirements"
            )
        return self.rng.choice(candidates)

    # -- clause builders ----------------------------------------------------

    def _where_clause(self, table: TableSchema, condition_count: int) -> Optional[WhereClause]:
        if condition_count <= 0:
            return None
        candidates = [
            column
            for column in table.columns
            if not column.is_primary and (column.ctype in (ColumnType.NUMBER, ColumnType.TEXT))
        ]
        if not candidates:
            return None
        conditions: List[Condition] = []
        used: List[str] = []
        for _ in range(condition_count):
            remaining = [column for column in candidates if column.name not in used]
            if not remaining:
                break
            column = self.rng.choice(remaining)
            used.append(column.name)
            conditions.append(self._condition_for(column))
        if not conditions:
            return None
        connectors = tuple(
            self.rng.choice(["AND", "AND", "OR"]) for _ in range(len(conditions) - 1)
        )
        return WhereClause(conditions=tuple(conditions), connectors=connectors)

    def _condition_for(self, column: Column) -> Condition:
        reference = ColumnRef(column=column.name)
        if column.ctype is ColumnType.NUMBER:
            choice = self.rng.random()
            low = self.rng.randint(1, 40) * 10
            if choice < 0.35:
                return Condition(column=reference, operator=">", value=low)
            if choice < 0.6:
                return Condition(column=reference, operator="<", value=low + 400)
            if choice < 0.85:
                return Condition(
                    column=reference, operator="BETWEEN", value=low, value2=low + 500
                )
            return Condition(column=reference, operator="!=", value=low)
        values = _TEXT_FILTER_VALUES.get(column.semantic, ["Alpha", "Beta", "Gamma"])
        value = self.rng.choice(values)
        if self.rng.random() < 0.2:
            return Condition(column=reference, operator="LIKE", value=f"%{value[:3]}%")
        return Condition(column=reference, operator="=", value=value)

    def _order_clause(self, x_item: SelectItem, y_item: SelectItem) -> OrderClause:
        target = self.rng.choice([x_item, y_item])
        direction = self.rng.choice([SortDirection.ASC, SortDirection.DESC])
        return OrderClause(expr=target.expr, direction=direction)

    def _join_for(self, table: TableSchema) -> Optional[JoinClause]:
        options: List[ForeignKey] = [
            foreign_key
            for foreign_key in self.schema.joinable_pairs()
            if foreign_key.table == table.name or foreign_key.ref_table == table.name
        ]
        if not options:
            return None
        foreign_key = self.rng.choice(options)
        if foreign_key.table == table.name:
            other = foreign_key.ref_table
            left = ColumnRef(column=foreign_key.column, table=table.name)
            right = ColumnRef(column=foreign_key.ref_column, table=other)
        else:
            other = foreign_key.table
            left = ColumnRef(column=foreign_key.ref_column, table=table.name)
            right = ColumnRef(column=foreign_key.column, table=other)
        return JoinClause(table=other, left=left, right=right)

    # -- chart-type specific sampling ----------------------------------------

    def sample(self, chart_type: ChartType, hardness: Hardness) -> DVQuery:
        """Sample one DVQ of ``chart_type`` aiming at ``hardness``."""
        if chart_type is ChartType.PIE:
            return self._sample_pie(hardness)
        if chart_type in (ChartType.LINE, ChartType.GROUPING_LINE):
            return self._sample_line(chart_type, hardness)
        if chart_type in (ChartType.SCATTER, ChartType.GROUPING_SCATTER):
            return self._sample_scatter(chart_type, hardness)
        return self._sample_bar(chart_type, hardness)

    def _hardness_extras(self, hardness: Hardness) -> Tuple[int, bool, bool]:
        """Map hardness to (#where conditions, use order-by, use join)."""
        # Joins are sampled only when explicitly enabled: nvBench questions do
        # not verbalise join paths, so joined gold queries would be unlearnable
        # from the question alone.
        if hardness is Hardness.EASY:
            return 0, False, False
        if hardness is Hardness.MEDIUM:
            return self.rng.choice([0, 1]), self.rng.random() < 0.6, False
        if hardness is Hardness.HARD:
            return self.rng.choice([1, 2]), True, False
        return self.rng.choice([2, 3]), True, False

    def _sample_bar(self, chart_type: ChartType, hardness: Hardness) -> DVQuery:
        grouped = chart_type is ChartType.STACKED_BAR
        table = self._pick_table(needs_nominal=True, needs_numeric=True,
                                 needs_two_nominal=grouped)
        x_column = self._pick(self._nominal_columns(table))
        numeric = self._numeric_columns(table)
        where_count, use_order, use_join = self._hardness_extras(hardness)
        if self.rng.random() < 0.4 or not numeric:
            y_expr: SelectItem = SelectItem(
                AggregateExpr(
                    function=AggregateFunction.COUNT,
                    argument=ColumnRef(column=x_column.name),
                )
            )
        else:
            function = self.rng.choice(
                [AggregateFunction.AVG, AggregateFunction.SUM,
                 AggregateFunction.MAX, AggregateFunction.MIN]
            )
            y_expr = SelectItem(
                AggregateExpr(function=function, argument=ColumnRef(column=self._pick(numeric).name))
            )
        x_item = SelectItem(ColumnRef(column=x_column.name))
        group_columns: List[ColumnRef] = [ColumnRef(column=x_column.name)]
        select: List[SelectItem] = [x_item, y_expr]
        if grouped:
            color_candidates = [
                column for column in self._nominal_columns(table) if column.name != x_column.name
            ]
            color_column = self._pick(color_candidates)
            select.append(SelectItem(ColumnRef(column=color_column.name)))
            group_columns.append(ColumnRef(column=color_column.name))
        join = self._join_for(table) if use_join else None
        where = self._where_clause(table, where_count)
        order = self._order_clause(x_item, y_expr) if use_order else None
        return DVQuery(
            chart_type=chart_type,
            select=tuple(select),
            table=table.name,
            joins=(join,) if join else (),
            where=where,
            group_by=tuple(group_columns),
            order_by=order,
        )

    def _sample_pie(self, hardness: Hardness) -> DVQuery:
        table = self._pick_table(needs_nominal=True)
        x_column = self._pick(self._nominal_columns(table))
        where_count, _, use_join = self._hardness_extras(hardness)
        select = (
            SelectItem(ColumnRef(column=x_column.name)),
            SelectItem(
                AggregateExpr(
                    function=AggregateFunction.COUNT,
                    argument=ColumnRef(column=x_column.name),
                )
            ),
        )
        join = self._join_for(table) if use_join else None
        return DVQuery(
            chart_type=ChartType.PIE,
            select=select,
            table=table.name,
            joins=(join,) if join else (),
            where=self._where_clause(table, where_count),
            group_by=(ColumnRef(column=x_column.name),),
        )

    def _sample_line(self, chart_type: ChartType, hardness: Hardness) -> DVQuery:
        table = self._pick_table(needs_temporal=True, needs_numeric=True)
        x_column = self._pick(self._temporal_columns(table))
        numeric = [
            column for column in self._numeric_columns(table) if column.name != x_column.name
        ]
        where_count, use_order, _ = self._hardness_extras(hardness)
        if numeric:
            function = self.rng.choice([AggregateFunction.AVG, AggregateFunction.SUM])
            y_item = SelectItem(
                AggregateExpr(function=function, argument=ColumnRef(column=self._pick(numeric).name))
            )
        else:
            y_item = SelectItem(
                AggregateExpr(
                    function=AggregateFunction.COUNT, argument=ColumnRef(column=x_column.name)
                )
            )
        x_item = SelectItem(ColumnRef(column=x_column.name))
        select: List[SelectItem] = [x_item, y_item]
        group_columns: List[ColumnRef] = []
        if chart_type is ChartType.GROUPING_LINE:
            nominal = self._nominal_columns(table)
            if not nominal:
                chart_type = ChartType.LINE
            else:
                color_column = self._pick(nominal)
                select.append(SelectItem(ColumnRef(column=color_column.name)))
                group_columns.append(ColumnRef(column=color_column.name))
        bin_clause = None
        if x_column.ctype is ColumnType.DATE:
            unit = self.rng.choice([BinUnit.YEAR, BinUnit.YEAR, BinUnit.MONTH, BinUnit.WEEKDAY])
            bin_clause = BinClause(column=ColumnRef(column=x_column.name), unit=unit)
        else:
            group_columns.insert(0, ColumnRef(column=x_column.name))
        order = OrderClause(expr=x_item.expr, direction=SortDirection.ASC) if use_order else None
        return DVQuery(
            chart_type=chart_type,
            select=tuple(select),
            table=table.name,
            where=self._where_clause(table, where_count),
            group_by=tuple(group_columns),
            order_by=order,
            bin=bin_clause,
        )

    def _sample_scatter(self, chart_type: ChartType, hardness: Hardness) -> DVQuery:
        table = self._pick_table(needs_numeric=True)
        numeric = self._numeric_columns(table)
        if len(numeric) < 2:
            raise SamplingError(f"Table {table.name!r} lacks two numeric columns for a scatter")
        x_column, y_column = self.rng.sample(numeric, 2)
        where_count, use_order, _ = self._hardness_extras(hardness)
        select: List[SelectItem] = [
            SelectItem(ColumnRef(column=x_column.name)),
            SelectItem(ColumnRef(column=y_column.name)),
        ]
        group_columns: List[ColumnRef] = []
        if chart_type is ChartType.GROUPING_SCATTER:
            nominal = self._nominal_columns(table)
            if nominal:
                color_column = self._pick(nominal)
                select.append(SelectItem(ColumnRef(column=color_column.name)))
                group_columns.append(ColumnRef(column=color_column.name))
            else:
                chart_type = ChartType.SCATTER
        order = None
        if use_order:
            order = OrderClause(
                expr=ColumnRef(column=x_column.name),
                direction=self.rng.choice([SortDirection.ASC, SortDirection.DESC]),
            )
        return DVQuery(
            chart_type=chart_type,
            select=tuple(select),
            table=table.name,
            where=self._where_clause(table, where_count),
            group_by=tuple(group_columns),
            order_by=order,
        )
