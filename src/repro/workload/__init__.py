"""Synthetic workload generation and differential fuzzing at scale.

The subsystem has four layers, composable but usable alone:

* :mod:`repro.workload.schema_graph` — seeded star/snowflake/chain schema
  graphs with tiered (fact >> dimension) correlated data;
* :mod:`repro.workload.stats` — per-column histograms, NDV and MCV
  summaries computed once per database;
* :mod:`repro.workload.generator` — :class:`WorkloadGenerator`, a
  statistics-driven extension of the portable-subset DVQ generator;
* :mod:`repro.workload.fuzz` / :mod:`repro.workload.minimize` — the
  differential fuzzing harness over the engine x optimizer matrix with
  automatic delta-debugging of failing queries.
"""

from repro.workload.fuzz import (
    DifferentialFuzzer,
    FuzzMismatch,
    FuzzReport,
    default_engine_matrix,
    fuzz_database,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.minimize import (
    MismatchOracle,
    clause_count,
    execution_mismatch,
    minimize_query,
    rows_agree,
)
from repro.workload.schema_graph import (
    SchemaGraphConfig,
    build_schema_graph,
    build_workload_database,
    fact_tables,
    tiered_row_counts,
)
from repro.workload.stats import (
    ColumnStatistics,
    TableStatistics,
    collect_column_statistics,
    collect_database_statistics,
    collect_table_statistics,
)

__all__ = [
    "ColumnStatistics",
    "DifferentialFuzzer",
    "FuzzMismatch",
    "FuzzReport",
    "MismatchOracle",
    "SchemaGraphConfig",
    "TableStatistics",
    "WorkloadGenerator",
    "build_schema_graph",
    "build_workload_database",
    "clause_count",
    "collect_column_statistics",
    "collect_database_statistics",
    "collect_table_statistics",
    "default_engine_matrix",
    "execution_mismatch",
    "fact_tables",
    "fuzz_database",
    "minimize_query",
    "rows_agree",
    "tiered_row_counts",
]
