"""Scaled differential fuzzing of the engine x optimizer matrix.

:class:`DifferentialFuzzer` streams seeded generated DVQs through every
execution engine and asserts the portable-subset contract: identical
normalised results where execution succeeds, identical
:class:`~repro.executor.backend.ExecutionOutcome` categories (and missing
identifiers) where it fails.  Queries are generated with a *per-query* seed
(``base_seed + index``), so any failure is reproducible from two integers —
and the harness prints exactly that as a paste-ready snippet, after
automatically shrinking the query with
:func:`~repro.workload.minimize.minimize_query`.

Execution fans out over a :class:`~repro.runtime.runner.BatchRunner` thread
pool.  The SQLite backend releases the GIL while the pure-Python engines do
not, so modest worker counts (2-4) already overlap a useful fraction of the
wall clock; ``max_workers=1`` gives a deterministic serial sweep.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.database.database import Database
from repro.dvq import parse_dvq, serialize_dvq
from repro.dvq.nodes import DVQuery
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.runtime.runner import BatchRunner
from repro.sql import SQLiteBackend
from repro.workload.generator import WorkloadGenerator
from repro.workload.minimize import (
    MismatchOracle,
    _attempt,
    compare_to_reference,
    minimize_query,
)


def default_engine_matrix() -> Dict[str, object]:
    """The full engine x optimizer matrix, interpreter excluded (it is the oracle)."""
    return {
        "sqlite": SQLiteBackend(),
        "columnar-cbo": ColumnarBackend(optimize=True),
        "columnar": ColumnarBackend(optimize=True, cost_based=False),
        "columnar-noopt": ColumnarBackend(optimize=False),
        "columnar-python": ColumnarBackend(optimize=True, vectorize=False),
        # tiny morsels + no cost-based serial pins so the partitioned
        # join/aggregate kernels actually engage at fuzz-database scale
        "columnar-parallel": ColumnarBackend(
            optimize=True, cost_based=False, max_workers=4, morsel_size=512
        ),
    }


@dataclass(frozen=True)
class FuzzMismatch:
    """One confirmed disagreement between an engine and the reference.

    ``seed`` regenerates the original query; ``minimized_text`` is the
    delta-debugged reproducer (equal to ``query_text`` when minimization is
    disabled or cannot shrink further).
    """

    index: int
    seed: int
    engine: str
    kind: str
    query_text: str
    minimized_text: str

    def repro_snippet(self) -> str:
        """A paste-ready snippet that rebuilds and re-executes the reproducer."""
        return (
            f"# mismatch vs {self.engine} ({self.kind}); "
            f"generator seed {self.seed}\n"
            f"query = parse_dvq({self.minimized_text!r})\n"
            f"# original: {self.query_text}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing sweep."""

    total: int = 0
    engines: Sequence[str] = ()
    category_counts: Dict[str, int] = field(default_factory=dict)
    mismatches: List[FuzzMismatch] = field(default_factory=list)
    generator_errors: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.generator_errors

    @property
    def comparisons(self) -> int:
        return self.total * len(self.engines)

    def summary(self) -> str:
        categories = ", ".join(
            f"{category}={count}"
            for category, count in sorted(self.category_counts.items())
        )
        lines = [
            f"fuzzed {self.total} queries x {len(self.engines)} engines "
            f"({self.comparisons} comparisons) in {self.wall_seconds:.1f}s",
            f"reference outcomes: {categories or 'none'}",
            f"mismatches: {len(self.mismatches)}",
        ]
        for mismatch in self.mismatches[:10]:
            lines.append(
                f"  seed {mismatch.seed} vs {mismatch.engine}: {mismatch.kind}\n"
                f"    {mismatch.minimized_text}"
            )
        for error in self.generator_errors[:5]:
            lines.append(f"  generator error: {error}")
        return "\n".join(lines)


class DifferentialFuzzer:
    """Sweep generated DVQs through the engine matrix, minimizing failures.

    Args:
        database: the corpus database (typically a
            :func:`~repro.workload.schema_graph.build_workload_database`
            product, but any :class:`Database` works).
        engines: name -> backend mapping to compare against the interpreter;
            defaults to :func:`default_engine_matrix`.
        generator_factory: ``seed -> generator``; defaults to a
            :class:`~repro.workload.generator.WorkloadGenerator` with that
            seed.  Each query ``i`` is generated by a *fresh*
            ``generator_factory(base_seed + i)``, so a failing index is
            reproducible in isolation.
        base_seed: offset for per-query seeds.
        max_workers: BatchRunner thread-pool width.
        minimize: shrink every mismatch to a minimal reproducer (on by
            default; turn off for raw-speed sweeps).
        progress: optional ``(done, total)`` callback forwarded to the
            runner.
    """

    def __init__(
        self,
        database: Database,
        engines: Optional[Dict[str, object]] = None,
        generator_factory: Optional[Callable[[int], object]] = None,
        base_seed: int = 0,
        max_workers: int = 1,
        minimize: bool = True,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        self.database = database
        self.engines = default_engine_matrix() if engines is None else engines
        if generator_factory is None:
            # one statistics pass shared by every per-seed generator
            cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
            generator_factory = lambda seed: WorkloadGenerator(  # noqa: E731
                seed=seed, stats_cache=cache
            )
        self.generator_factory = generator_factory
        self.base_seed = base_seed
        self.max_workers = max_workers
        self.minimize = minimize
        self.progress = progress
        self.reference = InterpreterBackend()

    # -- generation ----------------------------------------------------------

    def query_for_seed(self, seed: int) -> DVQuery:
        """Regenerate the exact query the sweep produced for ``seed``."""
        return self.generator_factory(seed).generate(self.database)

    # -- sweeping ------------------------------------------------------------

    def run(self, count: int) -> FuzzReport:
        """Fuzz ``count`` queries; returns the aggregate report."""
        started = time.perf_counter()
        report = FuzzReport(total=count, engines=tuple(self.engines))
        runner = BatchRunner(max_workers=self.max_workers, progress=self.progress)
        batch = runner.run(range(count), self._check_one)
        for item in batch.items:
            if not item.ok:
                report.generator_errors.append(f"index {item.index}: {item.error}")
                continue
            category, mismatches = item.value
            report.category_counts[category] = (
                report.category_counts.get(category, 0) + 1
            )
            report.mismatches.extend(mismatches)
        report.wall_seconds = time.perf_counter() - started
        return report

    def _check_one(self, index: int):
        seed = self.base_seed + index
        query = self.query_for_seed(seed)
        # the differential contract is stated over the *text* form: the query
        # must survive a serialize -> parse round trip unchanged
        text = serialize_dvq(query)
        parsed = parse_dvq(text)
        reparsed = serialize_dvq(parsed)
        if reparsed != text:
            raise AssertionError(
                f"round-trip drift for seed {seed}: {text!r} -> {reparsed!r}"
            )
        mismatches: List[FuzzMismatch] = []
        # one reference execution per query, shared by every engine comparison
        reference_outcome, reference_result = _attempt(
            self.reference, parsed, self.database
        )
        for name, engine in self.engines.items():
            kind = compare_to_reference(
                reference_outcome, reference_result, parsed, self.database, engine
            )
            if kind is None:
                continue
            mismatches.append(self._build_mismatch(index, seed, name, engine, parsed, kind))
        return reference_outcome.category, mismatches

    def _build_mismatch(
        self, index: int, seed: int, name: str, engine, query: DVQuery, kind: str
    ) -> FuzzMismatch:
        text = serialize_dvq(query)
        minimized_text = text
        if self.minimize:
            oracle = MismatchOracle(self.database, self.reference, engine)
            try:
                minimized = minimize_query(query, oracle, self.database)
                minimized_text = serialize_dvq(minimized)
            except Exception:  # noqa: BLE001 - a shrink failure must not mask the bug
                pass
        return FuzzMismatch(
            index=index,
            seed=seed,
            engine=name,
            kind=kind,
            query_text=text,
            minimized_text=minimized_text,
        )


def fuzz_database(
    database: Database,
    count: int,
    base_seed: int = 0,
    max_workers: int = 1,
    portable_subset: bool = True,
    max_join_cost: int = 2_000_000,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzReport:
    """One-call sweep used by tests, benchmarks and ``examples/fuzz_engines.py``."""
    cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
    fuzzer = DifferentialFuzzer(
        database,
        generator_factory=lambda seed: WorkloadGenerator(
            seed=seed,
            portable_subset=portable_subset,
            max_join_cost=max_join_cost,
            stats_cache=cache,
        ),
        base_seed=base_seed,
        max_workers=max_workers,
        progress=progress,
    )
    return fuzzer.run(count)
