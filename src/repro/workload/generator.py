"""Statistics-driven DVQ generation over synthetic schema graphs.

:class:`WorkloadGenerator` extends the portable-subset
:class:`~repro.dvq.generate.RandomDVQGenerator` with the choices a fuzzer at
scale needs:

* **join-subgraph walks** — instead of a single foreign-key hop, the
  generator walks the schema's join graph up to ``max_joins`` edges, in
  either FK direction, rejecting steps whose estimated nested-loop cost
  (``|intermediate| x |new table|``) exceeds ``max_join_cost`` — the knob
  that keeps the un-optimized ablation engine inside a fuzz time budget;
* **histogram-driven literals** — predicate literals come from each column's
  equi-depth histogram edges and most-common values
  (:mod:`repro.workload.stats`) instead of a full column scan per condition,
  which is what makes generation O(1) in table size;
* **cardinality-aware grouping** — grouping keys and bin targets are
  filtered by NDV and value range so charts stay plausible (and result sets
  stay bounded) even over million-row tables.

All of the base generator's portable-subset guarantees carry over: the
overrides only change *which* columns and literals are picked, never the
query shapes.  Ambiguous column references in multi-table scopes are always
qualified (``qualify_probability=1.0`` on joins).
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.database.schema import ColumnType
from repro.dvq.generate import RandomDVQGenerator, _ScopedColumn
from repro.dvq.nodes import ColumnRef, JoinClause
from repro.workload.stats import (
    ColumnStatistics,
    TableStatistics,
    collect_database_statistics,
)


class WorkloadGenerator(RandomDVQGenerator):
    """Sample portable DVQs using collected table statistics.

    Args:
        seed: RNG seed (the query stream is a pure function of
            (seed, database), like the base class).
        max_joins: maximum join-walk length in edges.
        max_join_cost: reject a join step when
            ``estimated_intermediate_rows * new_table_rows`` exceeds this —
            an upper bound on the nested-loop work the slowest engine pays.
        group_key_ndv_limit: text/boolean columns with more distinct values
            than this are not used as grouping keys.
        in_list_limit: maximum number of distinct literals offered to IN.
        stats_cache: optional mapping ``database -> statistics`` shared
            between generators.  The fuzzer creates a fresh generator per
            query seed; sharing the cache makes that O(1) instead of
            re-scanning the database each time.
        **kwargs: forwarded to :class:`RandomDVQGenerator` (probabilities,
            ``portable_subset``, ...).
    """

    def __init__(
        self,
        seed: int = 0,
        max_joins: int = 2,
        max_join_cost: int = 2_000_000,
        group_key_ndv_limit: int = 24,
        in_list_limit: int = 12,
        stats_cache: Optional[
            "weakref.WeakKeyDictionary[Database, Dict[str, TableStatistics]]"
        ] = None,
        **kwargs,
    ):
        super().__init__(seed=seed, **kwargs)
        self.max_joins = max_joins
        self.max_join_cost = max_join_cost
        self.group_key_ndv_limit = group_key_ndv_limit
        self.in_list_limit = in_list_limit
        self._stats_cache = (
            stats_cache if stats_cache is not None else weakref.WeakKeyDictionary()
        )

    # -- statistics ----------------------------------------------------------

    def statistics(self, database: Database) -> Dict[str, TableStatistics]:
        """Per-table statistics, computed once per database and cached."""
        stats = self._stats_cache.get(database)
        if stats is None:
            stats = collect_database_statistics(database)
            self._stats_cache[database] = stats
        return stats

    def _column_stats(
        self, database: Database, scoped: _ScopedColumn
    ) -> ColumnStatistics:
        return self.statistics(database)[scoped.table_name.lower()].column(
            scoped.column.name
        )

    # -- join-subgraph walks -------------------------------------------------

    def _choose_tables(self, database: Database):
        rng = self._rng
        schema = database.schema
        stats = self.statistics(database)
        rows = {name: table.row_count for name, table in stats.items()}
        start = rng.choice(schema.tables).name
        scope = [start]
        joins: List[JoinClause] = []
        estimate = max(rows.get(start.lower(), 1), 1)
        for _ in range(self.max_joins):
            if not (schema.foreign_keys and rng.random() < self.join_probability):
                break
            step = self._pick_join_step(rng, schema, scope, rows, estimate)
            if step is None:
                break
            join, new_table, estimate = step
            joins.append(join)
            scope.append(new_table)
        columns: List[_ScopedColumn] = []
        for name in scope:
            columns += self._scope_columns(schema, name, None)
        # multi-table scopes always qualify (by table name) so shared column
        # names — FK columns mirror the referenced PK's name by construction —
        # never resolve ambiguously
        qualify_probability = 1.0 if joins else 0.3
        return start, None, joins, columns, qualify_probability

    def _pick_join_step(self, rng, schema, scope, rows, estimate):
        """One admissible join edge out of the current scope, or None.

        Returns ``(JoinClause, new_table, new_estimate)`` where the estimate
        models FK semantics: following a foreign key to its (unique) target
        keeps the intermediate cardinality, walking a key backwards fans out
        by the referencing table's rows per key.
        """
        in_scope = {name.lower() for name in scope}
        candidates = []
        for fk in schema.joinable_pairs():
            source, target = fk.table.lower(), fk.ref_table.lower()
            if source in in_scope and target not in in_scope:
                new_rows = max(rows.get(target, 1), 1)
                new_estimate = estimate  # each source row matches one target pk
                candidates.append((fk.ref_table, fk, True, new_rows, new_estimate))
            elif target in in_scope and source not in in_scope:
                new_rows = max(rows.get(source, 1), 1)
                fanout = new_rows / max(rows.get(target, 1), 1)
                new_estimate = int(estimate * max(fanout, 1.0))
                candidates.append((fk.table, fk, False, new_rows, new_estimate))
        rng.shuffle(candidates)
        for new_table, fk, forward, new_rows, new_estimate in candidates:
            if estimate * new_rows > self.max_join_cost:
                continue
            if forward:
                existing, existing_col = fk.table, fk.column
                joined_col = fk.ref_column
            else:
                existing, existing_col = fk.ref_table, fk.ref_column
                joined_col = fk.column
            join = JoinClause(
                table=new_table,
                left=ColumnRef(column=existing_col, table=existing),
                right=ColumnRef(column=joined_col, table=new_table),
            )
            return join, new_table, max(new_estimate, 1)
        return None

    # -- statistics-driven hooks --------------------------------------------

    def _literal_pool(self, database: Database, scoped: _ScopedColumn) -> List[object]:
        """Histogram edges + MCVs instead of a full column scan.

        Equality/IN literals drawn from the MCV list have guaranteed hits;
        range endpoints drawn from equi-depth edges select predictable
        fractions of the table.  The pool is a few dozen values regardless of
        table size.
        """
        stats = self._column_stats(database, scoped)
        pool: List[object] = [value for value, _ in stats.most_common]
        pool += [edge for edge in stats.histogram if edge not in pool]
        # NaN has no DVQ text form (same round-trip rationale as the base
        # generator's pool), so statistics over NaN-bearing columns must not
        # leak it into predicate literals
        pool = [
            value
            for value in pool
            if not (isinstance(value, float) and math.isnan(value))
        ]
        return pool[: self.in_list_limit]

    def _group_key_pool(
        self, database: Database, columns: Sequence[_ScopedColumn]
    ) -> List[_ScopedColumn]:
        """Low-NDV text/boolean columns; falls back to the type-only rule."""
        typed = super()._group_key_pool(database, columns)
        low_cardinality = [
            scoped
            for scoped in typed
            if self._column_stats(database, scoped).ndv <= self.group_key_ndv_limit
        ]
        return low_cardinality or typed

    def _bin_candidates(
        self, database: Database, columns: Sequence[_ScopedColumn]
    ) -> Tuple[List[_ScopedColumn], List[_ScopedColumn]]:
        """Date columns as-is; number columns only when INTERVAL bins make sense.

        A numeric BIN uses fixed-width intervals (default width 100): columns
        whose range spans less than one interval degenerate to a single
        bucket and columns spanning thousands of intervals explode the
        result, so both are filtered out.
        """
        date_cols, number_cols = super()._bin_candidates(database, columns)
        realistic = []
        for scoped in number_cols:
            value_range = self._column_stats(database, scoped).value_range
            if value_range is not None and 100 <= value_range <= 100 * 1000:
                realistic.append(scoped)
        return date_cols, realistic
