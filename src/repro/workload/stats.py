"""Re-export shim: the statistics collectors moved into the engine.

The workload generator was the first consumer of per-column statistics; the
cost-based optimizer is the second, so the dataclasses and collectors now
live in :mod:`repro.database.statistics` (next to the column stores they
summarise) and this module keeps the historical import path working.

The generator keeps using the *exact* collectors re-exported here: they
preserve Python value types (an int MCV stays an int), and generated
predicate literals are serialised into query text, so value types affect
corpus determinism.  The engine-side cached variant is
:meth:`repro.database.table.Table.statistics`.
"""

from __future__ import annotations

from repro.database.statistics import (
    DEFAULT_BINS,
    DEFAULT_MCV,
    ColumnStatistics,
    TableStatistics,
    collect_column_statistics,
    collect_database_statistics,
    collect_table_statistics,
)

__all__ = [
    "DEFAULT_BINS",
    "DEFAULT_MCV",
    "ColumnStatistics",
    "TableStatistics",
    "collect_column_statistics",
    "collect_database_statistics",
    "collect_table_statistics",
]
