"""Lightweight per-column statistics over generated databases.

The workload generator needs to make *informed* choices — selective
predicate literals, realistic BETWEEN endpoints, low-cardinality grouping
keys, join orders that respect table sizes — without rescanning columns for
every generated query.  :func:`collect_database_statistics` computes, once
per database, the classic optimizer summaries: row and null counts, number
of distinct values (NDV), min/max, an equi-depth histogram and a small
most-common-values (MCV) list per column.

Statistics are plain frozen dataclasses so they serialise cleanly into fuzz
reports and test fixtures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.database.database import Database
from repro.database.schema import ColumnType
from repro.database.table import Table

#: Histogram / MCV sizing defaults: small enough to be negligible to compute
#: at the 1M-row tier, rich enough to drive selective predicates.
DEFAULT_BINS = 8
DEFAULT_MCV = 5


@dataclass(frozen=True)
class ColumnStatistics:
    """Summaries of one column's value distribution.

    Attributes:
        name: canonical column name.
        ctype: the column's logical type.
        row_count: number of rows (including nulls).
        null_count: number of NULL values.
        ndv: number of distinct non-null values.
        minimum / maximum: extrema over non-null values (None when empty).
        histogram: equi-depth bin edges over the sorted non-null values —
            ``len(histogram)`` is ``bins + 1`` when enough values exist.
            Quantile edges make good range-predicate endpoints: a BETWEEN
            over two adjacent edges selects ~1/bins of the rows.
        most_common: up to ``mcv`` ``(value, count)`` pairs, descending by
            count — equality predicates on these have predictable, non-empty
            selectivity.
    """

    name: str
    ctype: ColumnType
    row_count: int
    null_count: int
    ndv: int
    minimum: Optional[object] = None
    maximum: Optional[object] = None
    histogram: Tuple[object, ...] = ()
    most_common: Tuple[Tuple[object, int], ...] = ()

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    @property
    def value_range(self) -> Optional[float]:
        """max - min for numeric columns (None otherwise / when empty)."""
        if self.ctype is not ColumnType.NUMBER:
            return None
        if self.minimum is None or self.maximum is None:
            return None
        return float(self.maximum) - float(self.minimum)


@dataclass(frozen=True)
class TableStatistics:
    """Row count plus per-column statistics for one table."""

    name: str
    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        return self.columns[name.lower()]


def collect_column_statistics(
    table: Table,
    column_name: str,
    bins: int = DEFAULT_BINS,
    mcv: int = DEFAULT_MCV,
) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` for one column with a single scan."""
    canonical = table.canonical_column(column_name)
    ctype = next(c.ctype for c in table.schema.columns if c.name == canonical)
    values = table.column_values(canonical)
    non_null = [value for value in values if value is not None]
    counts = Counter(non_null)
    ordered = sorted(counts)
    histogram: Tuple[object, ...] = ()
    if len(ordered) >= 2:
        # equi-depth edges over the sorted multiset: walk the distinct values
        # in order, cutting every len/bins occurrences
        sorted_values = sorted(non_null)
        step = max(len(sorted_values) // bins, 1)
        edges = [sorted_values[0]]
        for position in range(step, len(sorted_values), step):
            edge = sorted_values[position]
            if edge != edges[-1]:
                edges.append(edge)
        if sorted_values[-1] != edges[-1]:
            edges.append(sorted_values[-1])
        histogram = tuple(edges)
    return ColumnStatistics(
        name=canonical,
        ctype=ctype,
        row_count=len(values),
        null_count=len(values) - len(non_null),
        ndv=len(counts),
        minimum=ordered[0] if ordered else None,
        maximum=ordered[-1] if ordered else None,
        histogram=histogram,
        most_common=tuple(counts.most_common(mcv)),
    )


def collect_table_statistics(
    table: Table, bins: int = DEFAULT_BINS, mcv: int = DEFAULT_MCV
) -> TableStatistics:
    columns = {
        column.name.lower(): collect_column_statistics(table, column.name, bins, mcv)
        for column in table.schema.columns
    }
    return TableStatistics(name=table.name, row_count=len(table.rows), columns=columns)


def collect_database_statistics(
    database: Database, bins: int = DEFAULT_BINS, mcv: int = DEFAULT_MCV
) -> Dict[str, TableStatistics]:
    """Per-table statistics keyed by lower-cased table name."""
    return {
        table.name.lower(): collect_table_statistics(table, bins, mcv)
        for table in database.tables()
    }
