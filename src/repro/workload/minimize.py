"""Delta-debugging minimization of failing differential queries.

When the fuzzer finds a query two engines disagree on, the raw reproducer is
usually a three-table join with compound predicates, binning and a top-k cut
— far more structure than the bug needs.  :func:`minimize_query` shrinks the
DVQ AST greedily to a fixpoint: every reduction pass proposes structurally
smaller candidates (drop the LIMIT, drop a join and everything that depended
on it, drop WHERE conditions one at a time, shrink IN lists and BETWEEN
ranges to equalities, collapse the aggregate to ``COUNT(*)``, ...) and a
candidate is accepted only when the *oracle* — "do the engines still
disagree?" — holds.  The result is the smallest query (by clause count, then
serialized length) the passes can reach that still reproduces the mismatch.

The oracle is a plain callable, so tests can minimize against injected bugs
and the fuzzer minimizes against real engine disagreement with the same
machinery.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.dvq import parse_dvq, serialize_dvq
from repro.dvq.nodes import (
    AggregateExpr,
    AggregateFunction,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    OrderClause,
    WhereClause,
)
from repro.executor.backend import ExecutionOutcome, classify_failure
from repro.executor.errors import ExecutionError

#: An oracle maps a candidate query to "still reproduces the failure".
Oracle = Callable[[DVQuery], bool]


def clause_count(query: DVQuery) -> int:
    """Number of optional clauses — the minimizer's primary size metric.

    Counts joins, WHERE conditions, ORDER BY, BIN, LIMIT and the colour
    channel; the mandatory two-channel SELECT core is free, so a minimal
    single-predicate reproducer has ``clause_count == 1``.
    """
    count = len(query.joins)
    if query.where is not None:
        count += len(query.where.conditions)
    if query.order_by is not None:
        count += 1
    if query.bin is not None:
        count += 1
    if query.limit is not None:
        count += 1
    if len(query.select) > 2:
        count += len(query.select) - 2
    return count


def _size(query: DVQuery) -> Tuple[int, int]:
    return (clause_count(query), len(serialize_dvq(query)))


def _fixed_chart(query: DVQuery, select_count: int) -> ChartType:
    """A chart type whose channel count matches ``select_count``."""
    if select_count >= 3:
        return query.chart_type if query.chart_type.is_grouped else ChartType.STACKED_BAR
    return query.chart_type if not query.chart_type.is_grouped else ChartType.BAR


def _prune_order(query: DVQuery) -> Optional[OrderClause]:
    """Drop ORDER BY when its target is no longer a selected expression."""
    if query.order_by is None:
        return None
    if any(item.expr == query.order_by.expr for item in query.select):
        return query.order_by
    return None


def _rebuild_where(
    where: WhereClause, keep: Sequence[int]
) -> Optional[WhereClause]:
    """A WhereClause with only the conditions at ``keep`` (original order).

    Each surviving non-first condition keeps the connector that preceded it
    in the original clause, preserving AND/OR structure as far as a flat
    connector list allows.
    """
    if not keep:
        return None
    conditions = tuple(where.conditions[index] for index in keep)
    connectors = tuple(where.connectors[index - 1] for index in keep[1:])
    return WhereClause(conditions=conditions, connectors=connectors)


# -- reduction passes -------------------------------------------------------
#
# Each pass yields candidate queries strictly smaller than its input; the
# driver accepts the first candidate the oracle confirms and restarts.


def _drop_whole_clauses(query: DVQuery, database) -> Iterator[DVQuery]:
    if query.limit is not None:
        yield query.replace(limit=None)
    if query.order_by is not None:
        yield query.replace(order_by=None)
    if query.where is not None:
        yield query.replace(where=None)
    if query.bin is not None:
        # keep the query grouped: the binned column becomes a plain group key
        candidate = query.replace(bin=None, group_by=(query.bin.column,))
        yield candidate


def _drop_color_channel(query: DVQuery, database) -> Iterator[DVQuery]:
    if len(query.select) < 3:
        return
    select = tuple(query.select[:2])
    group_by = tuple(query.group_by[:1]) if query.group_by else ()
    candidate = query.replace(
        select=select, group_by=group_by, chart_type=_fixed_chart(query, 2)
    )
    yield candidate.replace(order_by=_prune_order(candidate))


def _drop_joins(query: DVQuery, database) -> Iterator[DVQuery]:
    """Drop join suffixes (and single joins with their dependents).

    Everything that referenced a dropped table — select items, group keys,
    conditions, the bin target, the order target — is stripped; candidates
    whose SELECT core would fall below two channels are skipped (the oracle
    would reject them anyway, this is just cheaper).
    """
    if not query.joins:
        return
    for cut in range(len(query.joins) - 1, -1, -1):
        kept_joins = tuple(query.joins[:cut])
        candidate = _without_tables(query, kept_joins, database)
        if candidate is not None:
            yield candidate


def _without_tables(
    query: DVQuery, kept_joins: Tuple, database
) -> Optional[DVQuery]:
    kept_tables = {query.table.lower()}
    if query.table_alias:
        kept_tables.add(query.table_alias.lower())
    for join in kept_joins:
        kept_tables.add(join.table.lower())
        if join.alias:
            kept_tables.add(join.alias.lower())

    def survives(ref: ColumnRef) -> bool:
        if ref.column == "*":
            return True
        if ref.table:
            return ref.table.lower() in kept_tables
        if database is None:
            return True  # optimistic: the oracle re-validates
        # unqualified: the column must still resolve in a kept table
        for name in kept_tables:
            if database.has_table(name) and database.table(name).has_column(ref.column):
                return True
        return False

    def item_survives(item) -> bool:
        if isinstance(item.expr, AggregateExpr):
            return survives(item.expr.argument)
        return survives(item.expr)

    select = tuple(item for item in query.select if item_survives(item))
    if len(select) < 2:
        return None
    group_by = tuple(ref for ref in query.group_by if survives(ref))
    where = query.where
    if where is not None:
        keep = [
            index
            for index, condition in enumerate(where.conditions)
            if survives(condition.column)
        ]
        where = _rebuild_where(where, keep)
    bin_clause = query.bin if query.bin is None or survives(query.bin.column) else None
    candidate = query.replace(
        joins=kept_joins,
        select=select,
        group_by=group_by,
        where=where,
        bin=bin_clause,
        chart_type=_fixed_chart(query, len(select)),
    )
    return candidate.replace(order_by=_prune_order(candidate))


def _reroot_joins(query: DVQuery, database) -> Iterator[DVQuery]:
    """Make a joined table the FROM table and drop the join entirely.

    Useful when the failure lives in the joined table's columns: dropping the
    join normally would drop those references too, but re-rooting keeps them
    while still removing a whole join (and the original FROM table).
    """
    if len(query.joins) != 1 or database is None:
        return
    join = query.joins[0]
    rerooted = query.replace(table=join.table, table_alias=None, joins=())
    candidate = _without_tables(rerooted, (), database)
    if candidate is not None:
        yield candidate


def _shrink_where(query: DVQuery, database) -> Iterator[DVQuery]:
    where = query.where
    if where is None or len(where.conditions) < 2:
        return
    total = len(where.conditions)
    # halves first (classic ddmin step), then single-condition drops
    half = total // 2
    for keep in ([*range(half)], [*range(half, total)]):
        yield query.replace(where=_rebuild_where(where, keep))
    for drop in range(total):
        keep = [index for index in range(total) if index != drop]
        yield query.replace(where=_rebuild_where(where, keep))


def _shrink_literals(query: DVQuery, database) -> Iterator[DVQuery]:
    where = query.where
    if where is None:
        return
    for index, condition in enumerate(where.conditions):
        for smaller in _shrink_condition(condition):
            conditions = tuple(
                smaller if position == index else original
                for position, original in enumerate(where.conditions)
            )
            yield query.replace(
                where=WhereClause(conditions=conditions, connectors=where.connectors)
            )


def _shrink_condition(condition: Condition) -> Iterator[Condition]:
    operator = condition.operator.upper()
    if condition.negated:
        yield Condition(
            column=condition.column,
            operator=condition.operator,
            value=condition.value,
            value2=condition.value2,
            negated=False,
        )
    if operator == "IN" and isinstance(condition.value, tuple):
        if len(condition.value) > 1:
            yield Condition(
                column=condition.column,
                operator="IN",
                value=condition.value[:1],
                negated=condition.negated,
            )
        elif not condition.negated and condition.value and condition.value[0] is not None:
            yield Condition(column=condition.column, operator="=", value=condition.value[0])
    if operator == "BETWEEN":
        yield Condition(column=condition.column, operator="=", value=condition.value)
        yield Condition(column=condition.column, operator=">=", value=condition.value)


def _simplify_select(query: DVQuery, database) -> Iterator[DVQuery]:
    star_count = AggregateExpr(function=AggregateFunction.COUNT, argument=ColumnRef(column="*"))
    for index, item in enumerate(query.select):
        if not isinstance(item.expr, AggregateExpr):
            continue
        expr = item.expr
        if expr.distinct:
            yield _replace_select(query, index, AggregateExpr(expr.function, expr.argument))
        if expr != star_count:
            yield _replace_select(query, index, star_count)


def _replace_select(query: DVQuery, index: int, expr) -> DVQuery:
    from dataclasses import replace as dataclass_replace

    from repro.dvq.nodes import SelectItem

    select = tuple(
        SelectItem(expr) if position == index else item
        for position, item in enumerate(query.select)
    )
    old = query.select[index].expr
    candidate = query.replace(select=select)
    if query.order_by is not None and query.order_by.expr == old:
        candidate = candidate.replace(
            order_by=dataclass_replace(query.order_by, expr=expr)
        )
    return candidate.replace(order_by=_prune_order(candidate))


_PASSES = (
    _drop_joins,
    _reroot_joins,
    _drop_whole_clauses,
    _drop_color_channel,
    _shrink_where,
    _simplify_select,
    _shrink_literals,
)


def minimize_query(
    query: DVQuery, oracle: Oracle, database: Optional[Database] = None
) -> DVQuery:
    """Greedily shrink ``query`` while ``oracle`` keeps confirming the failure.

    Runs the reduction passes to a fixpoint: whenever a strictly smaller
    candidate still satisfies the oracle it becomes the new current query and
    the passes restart.  Deterministic — no randomness is involved — so the
    same (query, oracle) pair always minimizes to the same reproducer.
    ``database`` (optional) lets the join-dropping pass resolve unqualified
    column references precisely.
    """
    if not oracle(query):
        raise ValueError("oracle rejects the original query; nothing to minimize")
    current = query
    current_size = _size(current)
    improved = True
    while improved:
        improved = False
        for reduction in _PASSES:
            for candidate in reduction(current, database):
                if candidate is None or _size(candidate) >= current_size:
                    continue
                try:
                    confirmed = oracle(candidate)
                except Exception:
                    confirmed = False
                if confirmed:
                    current = candidate
                    current_size = _size(current)
                    improved = True
                    break
            if improved:
                break
    return current


# -- differential oracle ----------------------------------------------------

#: Stand-in for NaN in row comparisons: NaN is not ``==`` to itself, so two
#: engines returning identical NaN cells would spuriously "mismatch"; mapping
#: every NaN to one sentinel object restores positional equality (object
#: identity short-circuits tuple comparison) without touching engine output.
_NAN_SENTINEL = object()


def _comparable_rows(rows) -> List[Tuple[object, ...]]:
    return [
        tuple(
            _NAN_SENTINEL
            if isinstance(value, float) and math.isnan(value)
            else value
            for value in row
        )
        for row in rows
    ]


def rows_agree(left, right) -> bool:
    """Positional row equality that treats NaN as equal to itself."""
    if left == right:
        return True
    return _comparable_rows(left) == _comparable_rows(right)


def _attempt(engine, query: DVQuery, database: Database):
    """(outcome, result) for one engine; never raises for engine failures."""
    try:
        result = engine.execute(query, database)
    except ExecutionError as error:
        return classify_failure(error), None
    return ExecutionOutcome(), result


def execution_mismatch(
    query: DVQuery, database: Database, reference, engine
) -> Optional[str]:
    """How ``engine`` disagrees with ``reference`` on ``query`` (None = agree).

    The same agreement predicate the fuzz harness asserts: outcome category
    and missing identifiers must match; for successful executions columns,
    chart type and normalised rows must be identical.
    """
    left_outcome, left_result = _attempt(reference, query, database)
    return compare_to_reference(left_outcome, left_result, query, database, engine)


def compare_to_reference(
    left_outcome: ExecutionOutcome,
    left_result,
    query: DVQuery,
    database: Database,
    engine,
) -> Optional[str]:
    """Like :func:`execution_mismatch` with the reference side precomputed.

    The fuzzer compares several engines against one reference execution per
    query; reusing the reference outcome keeps the (slowest) interpreter at
    one run per query instead of one per engine.
    """
    right_outcome, right_result = _attempt(engine, query, database)
    if left_outcome.category != right_outcome.category:
        return f"category: {left_outcome.category} != {right_outcome.category}"
    if left_outcome.missing != right_outcome.missing:
        return (
            f"missing identifiers: {left_outcome.missing} != {right_outcome.missing}"
        )
    if not left_outcome.ok:
        return None
    if left_result.columns != right_result.columns:
        return "columns"
    if left_result.chart_type != right_result.chart_type:
        return "chart_type"
    if not rows_agree(left_result.rows, right_result.rows):
        return "rows"
    return None


class MismatchOracle:
    """Oracle: the candidate still round-trips and still mismatches.

    A candidate must survive serialize → parse unchanged (so the printed
    reproducer is paste-ready) and the two engines must still disagree — any
    disagreement kind counts, which lets the minimizer move between e.g. a
    row mismatch and a category mismatch if shrinking exposes a simpler
    manifestation of the same bug.
    """

    def __init__(self, database: Database, reference, engine):
        self.database = database
        self.reference = reference
        self.engine = engine

    def __call__(self, query: DVQuery) -> bool:
        try:
            text = serialize_dvq(query)
            parsed = parse_dvq(text)
            if serialize_dvq(parsed) != text:
                return False
        except Exception:
            return False
        return (
            execution_mismatch(parsed, self.database, self.reference, self.engine)
            is not None
        )
