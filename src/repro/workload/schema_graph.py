"""Seeded synthetic schema graphs and tiered databases for fuzzing.

The bundled nvBench-style domains cap differential testing at a handful of
fixed schemas.  This module generates *families* of schemas from a seed: a
fact/dimension graph in a star, snowflake or chain topology, with mixed
column types drawn from semantic pools the
:class:`~repro.database.datagen.DataGenerator` understands.  Every table is
guaranteed at least one TEXT and one NUMBER attribute (so group-bys and
aggregates are always expressible), primary keys are ``<TABLE>_ID`` and
foreign-key columns are named after the primary key they reference — which
is exactly what :meth:`~repro.database.schema.DatabaseSchema.joinable_pairs`
keys on.

:func:`tiered_row_counts` assigns fact tables orders of magnitude more rows
than their dimensions (the shape real star workloads have, and the shape
that keeps the nested-loop ablation engine inside a fuzz budget), and
:func:`build_workload_database` glues schema, tiers and data generation into
one seeded call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.database.database import Database
from repro.database.datagen import DataGenerator
from repro.database.schema import ColumnType, DatabaseSchema, build_schema

#: Entity nouns tables are named after (singular; pluralised with ``S``).
_ENTITY_NOUNS = [
    "customer", "order", "product", "supplier", "region", "store", "employee",
    "shipment", "invoice", "account", "campaign", "channel", "category",
    "warehouse", "carrier", "project", "ticket", "vendor", "branch", "event",
]

#: Attribute templates: (suffix, column type, datagen semantic tag).
_TEXT_ATTRS: List[Tuple[str, ColumnType, str]] = [
    ("NAME", ColumnType.TEXT, "name"),
    ("CITY", ColumnType.TEXT, "city"),
    ("COUNTRY", ColumnType.TEXT, "country"),
    ("STATUS", ColumnType.TEXT, "status"),
    ("CATEGORY", ColumnType.TEXT, "category"),
    ("THEME", ColumnType.TEXT, "theme"),
]
_NUMBER_ATTRS: List[Tuple[str, ColumnType, str]] = [
    ("PRICE", ColumnType.NUMBER, "price"),
    ("BUDGET", ColumnType.NUMBER, "budget"),
    ("RATING", ColumnType.NUMBER, "rating"),
    ("CAPACITY", ColumnType.NUMBER, "capacity"),
    ("WEIGHT", ColumnType.NUMBER, "weight"),
    ("DISTANCE", ColumnType.NUMBER, "distance"),
    ("AMOUNT", ColumnType.NUMBER, "count"),
]
_EXTRA_ATTRS: List[Tuple[str, ColumnType, str]] = [
    ("CREATED_DATE", ColumnType.DATE, "date"),
    ("UPDATED_DATE", ColumnType.DATE, "date"),
    ("ACTIVE", ColumnType.BOOLEAN, "flag"),
    ("VERIFIED", ColumnType.BOOLEAN, "flag"),
] + _TEXT_ATTRS + _NUMBER_ATTRS


@dataclass(frozen=True)
class SchemaGraphConfig:
    """Knobs for one synthetic schema graph.

    Attributes:
        seed: drives every structural choice (names, topology edges, column
            mixes); the same config always yields the same schema.
        table_count: number of tables (>= 2; star needs one fact + dims).
        topology: ``"star"`` (one fact referencing every dimension),
            ``"snowflake"`` (a fact tree — dimensions may have their own
            sub-dimensions) or ``"chain"`` (a linear FK path).
        min_columns / max_columns: attribute count per table, *excluding*
            the primary key and FK columns.
        name: database name; defaults to ``workload_<seed>``.
    """

    seed: int = 0
    table_count: int = 8
    topology: str = "star"
    min_columns: int = 3
    max_columns: int = 6
    name: Optional[str] = None

    def __post_init__(self):
        if self.table_count < 2:
            raise ValueError("table_count must be >= 2")
        if self.topology not in ("star", "snowflake", "chain"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if not (1 <= self.min_columns <= self.max_columns):
            raise ValueError("need 1 <= min_columns <= max_columns")


def _table_names(rng: random.Random, count: int) -> List[str]:
    nouns = rng.sample(_ENTITY_NOUNS, min(count, len(_ENTITY_NOUNS)))
    names = [f"{noun}s" for noun in nouns]
    suffix = 2
    while len(names) < count:
        names.append(f"{rng.choice(_ENTITY_NOUNS)}s_{suffix}")
        suffix += 1
    return names


def _parent_edges(rng: random.Random, config: SchemaGraphConfig) -> List[Tuple[int, int]]:
    """``(referencing, referenced)`` table-index edges for the topology."""
    count = config.table_count
    if config.topology == "star":
        return [(0, child) for child in range(1, count)]
    if config.topology == "chain":
        return [(index, index + 1) for index in range(count - 1)]
    # snowflake: table 0 is the fact; each further table hangs off a random
    # already-placed table, biased toward the fact so the first ring is wide
    edges = []
    for child in range(1, count):
        parent = 0 if child == 1 or rng.random() < 0.5 else rng.randrange(1, child)
        edges.append((parent, child))
    return edges


def build_schema_graph(config: SchemaGraphConfig) -> DatabaseSchema:
    """Generate a :class:`DatabaseSchema` from ``config``, deterministically."""
    rng = random.Random(f"schema-graph:{config.seed}")
    names = _table_names(rng, config.table_count)
    edges = _parent_edges(rng, config)
    fk_columns: Dict[int, List[int]] = {}
    for parent, child in edges:
        fk_columns.setdefault(parent, []).append(child)

    tables = []
    for index, name in enumerate(names):
        base = name.upper().rstrip("S") or name.upper()
        columns: List[Tuple[str, ColumnType, str]] = [(f"{base}_ID", ColumnType.NUMBER, "id")]
        # guaranteed one TEXT and one NUMBER attribute, prefixed by the table
        # base so names rarely collide across the join scope
        text_suffix, text_type, text_tag = rng.choice(_TEXT_ATTRS)
        number_suffix, number_type, number_tag = rng.choice(_NUMBER_ATTRS)
        columns.append((f"{base}_{text_suffix}", text_type, text_tag))
        columns.append((f"{base}_{number_suffix}", number_type, number_tag))
        extra_count = rng.randint(config.min_columns, config.max_columns)
        pool = [
            (f"{base}_{suffix}", ctype, tag)
            for suffix, ctype, tag in _EXTRA_ATTRS
            if f"{base}_{suffix}" not in {c[0] for c in columns}
        ]
        for attr in rng.sample(pool, min(max(extra_count - 2, 0), len(pool))):
            columns.append(attr)
        # FK columns named after the referenced primary key, appended last
        for child in fk_columns.get(index, ()):
            child_base = names[child].upper().rstrip("S") or names[child].upper()
            columns.append((f"{child_base}_ID", ColumnType.NUMBER, "id"))
        tables.append((name, columns))

    foreign_keys = []
    for parent, child in edges:
        child_base = names[child].upper().rstrip("S") or names[child].upper()
        foreign_keys.append((names[parent], f"{child_base}_ID", names[child], f"{child_base}_ID"))

    db_name = config.name or f"workload_{config.seed}"
    return build_schema(db_name, tables, foreign_keys=foreign_keys)


def fact_tables(schema: DatabaseSchema) -> List[str]:
    """Tables that reference others (FK sources) — the workload's facts."""
    sources = {fk.table for fk in schema.foreign_keys}
    return [table.name for table in schema.tables if table.name in sources]


def tiered_row_counts(schema: DatabaseSchema, total_rows: int) -> Dict[str, int]:
    """Split ``total_rows`` across tables with fact tables taking the bulk.

    Dimension tables (FK targets that reference nothing themselves, plus any
    isolated tables) get small, join-friendly cardinalities; fact tables
    split roughly 90% of the budget evenly.  Every table gets at least one
    row.
    """
    facts = set(fact_tables(schema))
    dims = [table.name for table in schema.tables if table.name not in facts]
    counts: Dict[str, int] = {}
    dim_budget = max(min(total_rows // 10, 400 * max(len(dims), 1)), len(dims))
    for name in dims:
        counts[name] = max(dim_budget // max(len(dims), 1), 1)
    remaining = max(total_rows - sum(counts.values()), len(facts))
    if facts:
        share = max(remaining // len(facts), 1)
        for name in facts:
            counts[name] = share
    return counts


def build_workload_database(
    config: SchemaGraphConfig,
    total_rows: int = 10_000,
    null_fraction: float = 0.08,
    skew: float = 0.5,
    correlated: bool = True,
    fk_null_fraction: float = 0.0,
    nan_fraction: float = 0.0,
) -> Database:
    """Schema graph + tiered correlated data in one seeded call.

    ``fk_null_fraction > 0`` additionally nulls foreign-key values so sweeps
    exercise SQL NULL-join semantics; ``nan_fraction > 0`` turns non-key
    NUMBER values into NaN so sort-heavy sweeps exercise the canonical NaN
    rank; the defaults keep historical databases bit-identical.
    """
    schema = build_schema_graph(config)
    counts = tiered_row_counts(schema, total_rows)
    generator = DataGenerator(
        seed=config.seed,
        null_fraction=null_fraction,
        skew=skew,
        correlated=correlated,
        fk_null_fraction=fk_null_fraction,
        nan_fraction=nan_fraction,
    )
    return generator.populate(schema, rows_by_table=counts)
