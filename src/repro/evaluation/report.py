"""Human-readable formatting of evaluation results (paper-style tables)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.metrics import EvaluationResult

#: Column order used by Tables 1-3 in the paper.
TABLE_COLUMNS = ("Vis Acc.", "Data Acc.", "Axis Acc.", "Acc.")


def _row_values(result: EvaluationResult) -> Sequence[str]:
    return (
        f"{result.vis_accuracy:.2%}",
        f"{result.data_accuracy:.2%}",
        f"{result.axis_accuracy:.2%}",
        f"{result.overall_accuracy:.2%}",
    )


def format_accuracy_table(results: Mapping[str, EvaluationResult], title: str = "") -> str:
    """Render a fixed-width table with one row per model (Tables 1-3 layout)."""
    name_width = max([len("Model")] + [len(name) for name in results]) + 2
    header = "Model".ljust(name_width) + "".join(column.rjust(12) for column in TABLE_COLUMNS)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for name, result in results.items():
        lines.append(name.ljust(name_width) + "".join(value.rjust(12) for value in _row_values(result)))
    return "\n".join(lines)


def format_markdown_table(results: Mapping[str, EvaluationResult], title: str = "") -> str:
    """Render the same table as GitHub-flavoured markdown (for EXPERIMENTS.md)."""
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| Model | " + " | ".join(TABLE_COLUMNS) + " |")
    lines.append("|---" * (len(TABLE_COLUMNS) + 1) + "|")
    for name, result in results.items():
        lines.append("| " + name + " | " + " | ".join(_row_values(result)) + " |")
    return "\n".join(lines)


def format_overall_series(series: Mapping[str, Mapping[str, float]], value_label: str = "Acc.") -> str:
    """Render a Figure-3 style series: models x datasets with one number per cell."""
    datasets = sorted({dataset for per_model in series.values() for dataset in per_model})
    name_width = max([len("Model")] + [len(name) for name in series]) + 2
    header = "Model".ljust(name_width) + "".join(dataset.rjust(24) for dataset in datasets)
    lines = [f"{value_label} per dataset", header, "-" * len(header)]
    for model_name, per_model in series.items():
        cells = []
        for dataset in datasets:
            value = per_model.get(dataset)
            cells.append((f"{value:.2%}" if value is not None else "-").rjust(24))
        lines.append(model_name.ljust(name_width) + "".join(cells))
    return "\n".join(lines)
