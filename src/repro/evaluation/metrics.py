"""Component-level accuracy metrics for DVQ predictions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.dvq.components import extract_components
from repro.dvq.normalize import try_parse


@dataclass(frozen=True)
class ComponentMatch:
    """Per-component match flags for one (predicted, target) pair."""

    vis: bool
    axis: bool
    data: bool

    @property
    def overall(self) -> bool:
        return self.vis and self.axis and self.data


@dataclass
class EvaluationResult:
    """Aggregated accuracies over a test set."""

    total: int
    vis_correct: int
    axis_correct: int
    data_correct: int
    overall_correct: int

    def _ratio(self, count: int) -> float:
        return count / self.total if self.total else 0.0

    @property
    def vis_accuracy(self) -> float:
        return self._ratio(self.vis_correct)

    @property
    def axis_accuracy(self) -> float:
        return self._ratio(self.axis_correct)

    @property
    def data_accuracy(self) -> float:
        return self._ratio(self.data_correct)

    @property
    def overall_accuracy(self) -> float:
        return self._ratio(self.overall_correct)

    def as_dict(self) -> Dict[str, float]:
        return {
            "vis_accuracy": self.vis_accuracy,
            "data_accuracy": self.data_accuracy,
            "axis_accuracy": self.axis_accuracy,
            "overall_accuracy": self.overall_accuracy,
            "total": float(self.total),
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"Vis {self.vis_accuracy:.2%} | Data {self.data_accuracy:.2%} | "
            f"Axis {self.axis_accuracy:.2%} | Overall {self.overall_accuracy:.2%} "
            f"(n={self.total})"
        )


def compare_queries(predicted: str, target: str) -> ComponentMatch:
    """Compare a predicted DVQ string against the gold DVQ string.

    Unparseable predictions count as wrong on every component (the front end
    cannot render them), except when the prediction is literally identical to
    the target text.
    """
    target_ast = try_parse(target)
    predicted_ast = try_parse(predicted)
    if target_ast is None or predicted_ast is None:
        identical = " ".join(predicted.lower().split()) == " ".join(target.lower().split())
        return ComponentMatch(vis=identical, axis=identical, data=identical)
    predicted_components = extract_components(predicted_ast)
    target_components = extract_components(target_ast)
    return ComponentMatch(
        vis=predicted_components.vis == target_components.vis,
        axis=predicted_components.axis == target_components.axis,
        data=predicted_components.data == target_components.data,
    )


def evaluate_predictions(pairs: Iterable[Tuple[str, str]]) -> EvaluationResult:
    """Aggregate accuracies over ``(predicted, target)`` DVQ string pairs."""
    total = 0
    vis = axis = data = overall = 0
    for predicted, target in pairs:
        total += 1
        match = compare_queries(predicted, target)
        vis += int(match.vis)
        axis += int(match.axis)
        data += int(match.data)
        overall += int(match.overall)
    return EvaluationResult(
        total=total,
        vis_correct=vis,
        axis_correct=axis,
        data_correct=data,
        overall_correct=overall,
    )


@dataclass(frozen=True)
class RepairSummary:
    """Effect of the execution-guided repair loop over one evaluation run.

    Attributes:
        attempted: predictions whose candidate initially failed to execute.
        repaired: of those, how many the loop turned into executing queries.
        rounds_total: LLM repair rounds spent across the run.
    """

    attempted: int = 0
    repaired: int = 0
    rounds_total: int = 0

    @property
    def repair_rate(self) -> float:
        """Fraction of initially-failing predictions the loop rescued."""
        return self.repaired / self.attempted if self.attempted else 0.0

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"repair: {self.repaired}/{self.attempted} rescued "
            f"({self.repair_rate:.1%}) in {self.rounds_total} rounds"
        )


def execution_rate_uplift(
    baseline_rate: Optional[float], repaired_rate: Optional[float]
) -> Optional[float]:
    """Absolute execution-rate gain of the repair loop (``None`` if unmeasured).

    Both inputs are
    :attr:`~repro.evaluation.evaluator.EvaluationRun.execution_rate` values —
    the baseline run without the repair loop and the run with it enabled.
    """
    if baseline_rate is None or repaired_rate is None:
        return None
    return repaired_rate - baseline_rate


def evaluate_by_group(
    records: Sequence[Tuple[str, str, str]]
) -> Dict[str, EvaluationResult]:
    """Aggregate accuracies per group key from ``(group, predicted, target)`` triples."""
    grouped: Dict[str, list] = {}
    for group, predicted, target in records:
        grouped.setdefault(group, []).append((predicted, target))
    return {group: evaluate_predictions(pairs) for group, pairs in grouped.items()}
