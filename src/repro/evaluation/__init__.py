"""Evaluation metrics and reporting (Appendix A of the paper).

Four accuracies are computed over a test set of (predicted, target) DVQ pairs:

* **Vis accuracy** — chart-type component matches.
* **Axis accuracy** — x/y(/colour) encodings match.
* **Data accuracy** — data-transformation component matches.
* **Overall accuracy** — all components match (exact match).
"""

from repro.evaluation.metrics import EvaluationResult, compare_queries, evaluate_predictions
from repro.evaluation.evaluator import ModelEvaluator, PredictionRecord
from repro.evaluation.report import format_accuracy_table, format_markdown_table

__all__ = [
    "EvaluationResult",
    "ModelEvaluator",
    "PredictionRecord",
    "compare_queries",
    "evaluate_predictions",
    "format_accuracy_table",
    "format_markdown_table",
]
