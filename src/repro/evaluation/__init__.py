"""Evaluation metrics and reporting (Appendix A of the paper).

Four accuracies are computed over a test set of (predicted, target) DVQ pairs:

* **Vis accuracy** — chart-type component matches.
* **Axis accuracy** — x/y(/colour) encodings match.
* **Data accuracy** — data-transformation component matches.
* **Overall accuracy** — all components match (exact match).
"""

from repro.evaluation.metrics import (
    EvaluationResult,
    RepairSummary,
    compare_queries,
    evaluate_predictions,
    execution_rate_uplift,
)
from repro.evaluation.evaluator import EvaluationRun, ModelEvaluator, PredictionRecord
from repro.evaluation.report import format_accuracy_table, format_markdown_table

__all__ = [
    "EvaluationResult",
    "EvaluationRun",
    "ModelEvaluator",
    "PredictionRecord",
    "RepairSummary",
    "compare_queries",
    "evaluate_predictions",
    "execution_rate_uplift",
    "format_accuracy_table",
    "format_markdown_table",
]
