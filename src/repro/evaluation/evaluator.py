"""Running a text-to-vis model over a dataset and collecting its accuracy."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dvq.normalize import try_parse
from repro.evaluation.metrics import (
    EvaluationResult,
    RepairSummary,
    compare_queries,
    evaluate_predictions,
)
from repro.executor.backend import BackendSpec, ExecutionBackend, resolve_backend
from repro.nvbench.dataset import NVBenchDataset
from repro.nvbench.example import NVBenchExample
from repro.runtime.runner import BatchReport, BatchRunner


@dataclass
class PredictionRecord:
    """One model prediction with its gold reference and component matches.

    ``executes`` is populated only when the evaluator was given an
    ``execution_backend``: ``True`` when the predicted DVQ parses and
    materialises against its database (i.e. produces a chart), ``False``
    otherwise, ``None`` when the execution check was not run.
    """

    example_id: str
    db_id: str
    nlq: str
    predicted: str
    target: str
    vis_correct: bool
    axis_correct: bool
    data_correct: bool
    executes: Optional[bool] = None

    @property
    def overall_correct(self) -> bool:
        return self.vis_correct and self.axis_correct and self.data_correct


@dataclass
class EvaluationRun:
    """A full evaluation: per-example records plus the aggregate result.

    ``failure_count`` is the number of predictions that raised instead of
    returning; those examples are scored as empty (always wrong) predictions,
    so a nonzero value means the accuracies underestimate the model.
    """

    model_name: str
    dataset_name: str
    records: List[PredictionRecord] = field(default_factory=list)
    failure_count: int = 0
    repair_summary: Optional[RepairSummary] = None

    @property
    def result(self) -> EvaluationResult:
        return evaluate_predictions((record.predicted, record.target) for record in self.records)

    @property
    def execution_rate(self) -> Optional[float]:
        """Fraction of checked predictions that execute (``None`` if unchecked).

        Only meaningful when the evaluator ran with an ``execution_backend``;
        this is the executability counterpart of exact-match accuracy — the
        share of predictions that produce *a* chart rather than the "no
        chart" failure mode.
        """
        checked = [record for record in self.records if record.executes is not None]
        if not checked:
            return None
        return sum(1 for record in checked if record.executes) / len(checked)

    def errors(self) -> List[PredictionRecord]:
        return [record for record in self.records if not record.overall_correct]

    def accuracy_by_hardness(self, examples: Sequence[NVBenchExample]) -> Dict[str, EvaluationResult]:
        hardness_by_id = {example.example_id: example.hardness for example in examples}
        grouped: Dict[str, List] = {}
        for record in self.records:
            hardness = hardness_by_id.get(record.example_id, "unknown")
            grouped.setdefault(hardness, []).append((record.predicted, record.target))
        return {hardness: evaluate_predictions(pairs) for hardness, pairs in grouped.items()}


class ModelEvaluator:
    """Evaluate any object exposing ``predict(nlq, database) -> str``.

    Predictions are executed through a
    :class:`~repro.runtime.runner.BatchRunner`: with the default
    ``max_workers=1`` the evaluation is a plain serial loop (bit-identical to
    the historical behaviour); higher worker counts overlap model latency
    across examples.  A prediction that raises is isolated — it is scored as
    an empty (always wrong) prediction instead of aborting the run, with a
    ``warnings.warn`` and the count surfaced on
    :attr:`EvaluationRun.failure_count` — and the underlying
    :class:`~repro.runtime.runner.BatchReport` of the last run is kept on
    :attr:`last_report` for timing and failure inspection.

    With ``execution_backend`` set (a backend name — ``"columnar"`` /
    ``"interpreter"`` / ``"sqlite"`` — or an
    :class:`~repro.executor.backend.ExecutionBackend` instance), every
    prediction is additionally executed against its target database and
    :attr:`PredictionRecord.executes` / :attr:`EvaluationRun.execution_rate`
    report whether it materialises a chart.  ``optimize_plans`` toggles the
    plan optimizer when the columnar backend is named (results are identical
    either way), and ``execution_workers`` / ``execution_morsel_size`` size
    the columnar engine's parallel pipeline (``None`` keeps the backend
    default; any width returns identical results).  The backend instance is
    kept across runs, so stateful engines (e.g. SQLite) load each database
    once per evaluator.
    """

    def __init__(
        self,
        limit: Optional[int] = None,
        max_workers: int = 1,
        runner: Optional[BatchRunner] = None,
        execution_backend: Optional[BackendSpec] = None,
        optimize_plans: bool = True,
        execution_workers: Optional[int] = None,
        execution_morsel_size: Optional[int] = None,
    ):
        self.limit = limit
        self.max_workers = max_workers
        self._runner = runner
        self.execution_backend: Optional[ExecutionBackend] = (
            resolve_backend(
                execution_backend,
                optimize=optimize_plans,
                max_workers=execution_workers,
                morsel_size=execution_morsel_size,
            )
            if execution_backend is not None
            else None
        )
        self.last_report: Optional[BatchReport] = None

    def evaluate(self, model, dataset: NVBenchDataset, model_name: Optional[str] = None) -> EvaluationRun:
        """Run ``model`` over every example of ``dataset`` and score it."""
        if dataset.catalog is None:
            raise ValueError("The dataset must carry its database catalog")
        run = EvaluationRun(
            model_name=model_name or type(model).__name__,
            dataset_name=dataset.name,
        )
        examples = dataset.examples[: self.limit] if self.limit else dataset.examples
        runner = self._runner or BatchRunner(max_workers=self.max_workers)
        catalog = dataset.catalog

        def predict_one(example: NVBenchExample) -> str:
            return model.predict(example.nlq, catalog.get(example.db_id))

        repair_before = self._repair_snapshot(model)
        report = runner.run(examples, predict_one)
        run.repair_summary = self._repair_delta(model, repair_before)
        self.last_report = report
        run.failure_count = report.failure_count
        if report.failure_count:
            first = report.failures()[0]
            warnings.warn(
                f"{report.failure_count}/{len(report.items)} predictions of "
                f"{run.model_name} raised and were scored as wrong; first failure "
                f"at example {first.index}: {first.error}",
                stacklevel=2,
            )
        for example, item in zip(examples, report.items):
            predicted = item.value if item.ok and item.value is not None else ""
            match = compare_queries(predicted, example.dvq)
            executes: Optional[bool] = None
            if self.execution_backend is not None:
                parsed = try_parse(predicted)
                executes = parsed is not None and self.execution_backend.can_execute(
                    parsed, catalog.get(example.db_id)
                )
            run.records.append(
                PredictionRecord(
                    example_id=example.example_id,
                    db_id=example.db_id,
                    nlq=example.nlq,
                    predicted=predicted,
                    target=example.dvq,
                    vis_correct=match.vis,
                    axis_correct=match.axis,
                    data_correct=match.data,
                    executes=executes,
                )
            )
        return run

    @staticmethod
    def _repair_snapshot(model):
        """Pre-run copy of the model's repair counters (duck-typed)."""
        stats = getattr(model, "repair_stats", None)
        return stats.snapshot() if stats is not None else None

    @staticmethod
    def _repair_delta(model, before) -> Optional[RepairSummary]:
        """The run's repair activity: counters now minus the pre-run snapshot."""
        if before is None:
            return None
        delta = model.repair_stats.since(before)
        # a model with the loop disabled reports no summary rather than zeros
        if delta.attempted == 0 and delta.rounds_total == 0:
            loop_enabled = getattr(getattr(model, "config", None), "max_repair_rounds", 0)
            if not loop_enabled:
                return None
        return RepairSummary(
            attempted=delta.attempted,
            repaired=delta.repaired,
            rounds_total=delta.rounds_total,
        )
