"""Running a text-to-vis model over a dataset and collecting its accuracy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation.metrics import EvaluationResult, compare_queries, evaluate_predictions
from repro.nvbench.dataset import NVBenchDataset
from repro.nvbench.example import NVBenchExample


@dataclass
class PredictionRecord:
    """One model prediction with its gold reference and component matches."""

    example_id: str
    db_id: str
    nlq: str
    predicted: str
    target: str
    vis_correct: bool
    axis_correct: bool
    data_correct: bool

    @property
    def overall_correct(self) -> bool:
        return self.vis_correct and self.axis_correct and self.data_correct


@dataclass
class EvaluationRun:
    """A full evaluation: per-example records plus the aggregate result."""

    model_name: str
    dataset_name: str
    records: List[PredictionRecord] = field(default_factory=list)

    @property
    def result(self) -> EvaluationResult:
        return evaluate_predictions((record.predicted, record.target) for record in self.records)

    def errors(self) -> List[PredictionRecord]:
        return [record for record in self.records if not record.overall_correct]

    def accuracy_by_hardness(self, examples: Sequence[NVBenchExample]) -> Dict[str, EvaluationResult]:
        hardness_by_id = {example.example_id: example.hardness for example in examples}
        grouped: Dict[str, List] = {}
        for record in self.records:
            hardness = hardness_by_id.get(record.example_id, "unknown")
            grouped.setdefault(hardness, []).append((record.predicted, record.target))
        return {hardness: evaluate_predictions(pairs) for hardness, pairs in grouped.items()}


class ModelEvaluator:
    """Evaluate any object exposing ``predict(nlq, database) -> str``."""

    def __init__(self, limit: Optional[int] = None):
        self.limit = limit

    def evaluate(self, model, dataset: NVBenchDataset, model_name: Optional[str] = None) -> EvaluationRun:
        """Run ``model`` over every example of ``dataset`` and score it."""
        if dataset.catalog is None:
            raise ValueError("The dataset must carry its database catalog")
        run = EvaluationRun(
            model_name=model_name or type(model).__name__,
            dataset_name=dataset.name,
        )
        examples = dataset.examples[: self.limit] if self.limit else dataset.examples
        for example in examples:
            database = dataset.catalog.get(example.db_id)
            predicted = model.predict(example.nlq, database)
            match = compare_queries(predicted, example.dvq)
            run.records.append(
                PredictionRecord(
                    example_id=example.example_id,
                    db_id=example.db_id,
                    nlq=example.nlq,
                    predicted=predicted,
                    target=example.dvq,
                    vis_correct=match.vis,
                    axis_correct=match.axis,
                    data_correct=match.data,
                )
            )
        return run
