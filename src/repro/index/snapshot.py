"""Disk persistence for vector indexes: ``np.savez`` + a JSON payload codec.

A snapshot is a single ``.npz`` file holding the numeric state (embedding
matrix, and for the partitioned backend its centroids and partition
assignment) alongside JSON-encoded keys, texts, payloads and metadata.  No
pickling is involved: payloads go through a :class:`PayloadCodec`, so a
snapshot written on one machine loads anywhere and survives refactors of the
payload class.
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.index.base import EXACT, PARTITIONED, VectorIndex
from repro.index.exact import ExactIndex
from repro.index.partitioned import PartitionedIndex

SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot file is missing, unreadable or structurally invalid."""


class PayloadCodec(Protocol):
    """Translates payload objects to and from JSON-serialisable data."""

    def encode(self, payload: Any) -> Any:
        ...  # pragma: no cover - protocol stub

    def decode(self, data: Any) -> Any:
        ...  # pragma: no cover - protocol stub


class JsonPayloadCodec:
    """Identity codec for payloads that are already JSON-serialisable."""

    def encode(self, payload: Any) -> Any:
        return payload

    def decode(self, data: Any) -> Any:
        return data


def snapshot_path(path: str) -> str:
    """``np.savez`` appends ``.npz``; normalise so save and load agree."""
    return path if path.endswith(".npz") else f"{path}.npz"


def save_index(
    index: VectorIndex,
    path: str,
    texts: Sequence[str] = (),
    codec: Optional[PayloadCodec] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Persist ``index`` (plus the stored texts and caller metadata) to ``path``."""
    codec = codec or JsonPayloadCodec()
    state = index.state()
    header: Dict[str, Any] = {
        "version": SNAPSHOT_VERSION,
        "backend": state["backend"],
        "meta": meta or {},
    }
    arrays: Dict[str, np.ndarray] = {
        "matrix": np.asarray(state["matrix"]),
        "keys_json": np.array(json.dumps(state["keys"])),
        "texts_json": np.array(json.dumps(list(texts))),
        "payloads_json": np.array(
            json.dumps([codec.encode(payload) for payload in state["payloads"]])
        ),
    }
    if state["backend"] == PARTITIONED:
        for knob in ("num_partitions", "nprobe", "seed", "kmeans_iterations",
                     "retrain_growth", "trained_rows"):
            header[knob] = state[knob]
        if "centroids" in state:
            arrays["centroids"] = np.asarray(state["centroids"])
            arrays["assignment"] = np.asarray(state["assignment"])
    arrays["header_json"] = np.array(json.dumps(header))
    target = snapshot_path(path)
    directory = os.path.dirname(target)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(target, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return target


def load_index(
    path: str,
    codec: Optional[PayloadCodec] = None,
    search_workers: int = 1,
) -> Tuple[VectorIndex, List[str], Dict[str, Any]]:
    """Load a snapshot, returning ``(index, texts, caller metadata)``."""
    codec = codec or JsonPayloadCodec()
    target = snapshot_path(path)
    if not os.path.exists(target):
        raise SnapshotError(f"No index snapshot at {target}")
    try:
        with np.load(target, allow_pickle=False) as archive:
            header = json.loads(str(archive["header_json"]))
            if header.get("version") != SNAPSHOT_VERSION:
                raise SnapshotError(
                    f"Unsupported snapshot version {header.get('version')!r} in {target}"
                )
            state: Dict[str, Any] = {
                "backend": header["backend"],
                "matrix": archive["matrix"],
                "keys": json.loads(str(archive["keys_json"])),
                "payloads": [
                    codec.decode(data) for data in json.loads(str(archive["payloads_json"]))
                ],
            }
            texts = json.loads(str(archive["texts_json"]))
            if header["backend"] == PARTITIONED:
                for knob, default in (
                    ("num_partitions", 0),
                    ("nprobe", 8),
                    ("seed", 13),
                    ("kmeans_iterations", 8),
                    ("retrain_growth", 0.5),
                    ("trained_rows", 0),
                ):
                    state[knob] = header.get(knob, default)
                if "centroids" in archive:
                    state["centroids"] = archive["centroids"]
                    state["assignment"] = archive["assignment"]
    except (KeyError, ValueError, OSError, zipfile.BadZipFile, json.JSONDecodeError) as error:
        # OSError/BadZipFile: truncated or partially written archives must
        # surface as SnapshotError so best-effort loaders rebuild instead of crashing
        raise SnapshotError(f"Corrupt index snapshot at {target}: {error}") from error
    backend = header["backend"]
    if backend == EXACT:
        index: VectorIndex = ExactIndex.from_state(state)
    elif backend == PARTITIONED:
        index = PartitionedIndex.from_state(state, search_workers=search_workers)
    else:
        raise SnapshotError(f"Unknown index backend {backend!r} in {target}")
    return index, texts, header.get("meta", {})
