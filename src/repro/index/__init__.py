"""Pluggable vector indexes behind GRED's retrieval libraries.

The subsystem splits retrieval into an embedding boundary (owned by
:class:`~repro.embeddings.store.VectorStore`) and a storage/search layer — the
:class:`VectorIndex` protocol — with two backends:

* :class:`ExactIndex` — brute-force cosine top-K over the full library in one
  matrix multiplication (the historical behaviour);
* :class:`PartitionedIndex` — IVF-style coarse quantisation: seeded k-means
  centroids partition the library and each query probes only the ``nprobe``
  most similar partitions, fanned out across
  :class:`~repro.runtime.runner.BatchRunner` workers.

:class:`IndexConfig` selects and tunes the backend (:func:`build_index` is the
factory), and :mod:`repro.index.snapshot` persists any index to disk as
``np.savez`` arrays plus JSON payloads so prepared libraries survive process
restarts.
"""

from repro.index.base import (
    EXACT,
    PARTITIONED,
    IndexConfig,
    SearchHit,
    VectorIndex,
    resolve_partition_count,
    select_top_k,
)
from repro.index.exact import ExactIndex
from repro.index.partitioned import PartitionedIndex
from repro.index.snapshot import (
    JsonPayloadCodec,
    PayloadCodec,
    SnapshotError,
    load_index,
    save_index,
)


def build_index(config: IndexConfig) -> VectorIndex:
    """Instantiate the backend named by ``config``."""
    if config.backend == EXACT:
        return ExactIndex()
    if config.backend == PARTITIONED:
        return PartitionedIndex(
            num_partitions=config.num_partitions,
            nprobe=config.nprobe,
            search_workers=config.search_workers,
        )
    raise ValueError(
        f"Unknown index backend {config.backend!r} (expected {EXACT!r} or {PARTITIONED!r})"
    )


__all__ = [
    "EXACT",
    "PARTITIONED",
    "ExactIndex",
    "IndexConfig",
    "JsonPayloadCodec",
    "PartitionedIndex",
    "PayloadCodec",
    "SearchHit",
    "SnapshotError",
    "VectorIndex",
    "build_index",
    "load_index",
    "resolve_partition_count",
    "save_index",
    "select_top_k",
]
