"""The partitioned (IVF-style) backend: probe a few k-means partitions.

The library is coarsely quantised with spherical k-means: every vector is
assigned to its most similar centroid, and a query only scores the
``nprobe`` partitions whose centroids it is closest to — a scan of roughly
``nprobe / num_partitions`` of the library instead of all of it.  Partition
scoring is fanned out across :class:`~repro.runtime.runner.BatchRunner`
workers; per-partition candidates are merged with the same deterministic
tie-break as the exact backend, so results are identical at any worker count.

Entries added after the last training round land in an *unpartitioned tail*
that every query scans exactly; the index retrains (one seeded k-means over
the grown library) once the tail outgrows ``retrain_growth`` of the trained
rows, keeping incremental adds cheap without letting recall decay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.index.base import PARTITIONED, SearchHit, resolve_partition_count, select_top_k
from repro.index.exact import ExactIndex

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.runner import BatchRunner


class PartitionedIndex(ExactIndex):
    """IVF-style index: k-means coarse centroids plus an exact tail.

    Args:
        num_partitions: partition count (``0`` = ``round(sqrt(n))`` at train
            time).
        nprobe: partitions scanned per query; clamped to the partition count.
        search_workers: ``BatchRunner`` workers for partition scoring.
        seed: k-means seed (centroid init is deterministic given the library).
        kmeans_iterations: Lloyd iteration cap (stops early on convergence).
        retrain_growth: retrain when the unpartitioned tail exceeds this
            fraction of the trained rows.
    """

    backend_name = PARTITIONED

    def __init__(
        self,
        num_partitions: int = 0,
        nprobe: int = 8,
        search_workers: int = 1,
        seed: int = 13,
        kmeans_iterations: int = 8,
        retrain_growth: float = 0.5,
    ) -> None:
        super().__init__()
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self.num_partitions = num_partitions
        self.nprobe = nprobe
        self.seed = seed
        self.kmeans_iterations = kmeans_iterations
        self.retrain_growth = retrain_growth
        # deferred: repro.runtime's package init reaches back into
        # repro.embeddings, which would close an import cycle at module scope
        from repro.runtime.runner import BatchRunner

        self._runner: "BatchRunner" = BatchRunner(max_workers=search_workers)
        self._serial_runner: "BatchRunner" = BatchRunner(max_workers=1)
        self._centroids: Optional[np.ndarray] = None
        self._partition_rows: List[np.ndarray] = []  # global row ids per partition
        self._partition_matrices: List[np.ndarray] = []
        self._partition_keys: List[Tuple[str, ...]] = []
        self._trained_rows = 0

    # -- training ----------------------------------------------------------

    def _needs_training(self, total: int) -> bool:
        partitions = resolve_partition_count(self.num_partitions, total)
        if total < 2 * partitions:
            return False  # too small to be worth partitioning; scan exactly
        if self._centroids is None:
            return True
        tail = total - self._trained_rows
        return tail > max(1.0, self._trained_rows * self.retrain_growth)

    def _kmeans(self, matrix: np.ndarray, partitions: int) -> np.ndarray:
        """Seeded spherical k-means; returns the ``(partitions, dims)`` centroids."""
        rng = np.random.default_rng(self.seed)
        initial = rng.choice(len(matrix), size=partitions, replace=False)
        centroids = matrix[np.sort(initial)].copy()
        assignment = np.full(len(matrix), -1)
        for _ in range(self.kmeans_iterations):
            new_assignment = np.argmax(matrix @ centroids.T, axis=1)
            if np.array_equal(new_assignment, assignment):
                break
            assignment = new_assignment
            sums = np.zeros_like(centroids)
            np.add.at(sums, assignment, matrix)
            norms = np.linalg.norm(sums, axis=1)
            populated = norms > 0
            centroids[populated] = sums[populated] / norms[populated, None]
            # empty partitions keep their previous centroid (deterministic)
        return centroids

    def _train_locked(self) -> None:
        """(Re)build centroids and partition slices; caller holds the lock.

        Only *populated* partitions are kept: k-means can leave a centroid
        with no members (its stale position is retained during iteration),
        and probing such a partition would waste one of the query's
        ``nprobe`` slots — or return zero hits at ``nprobe=1``.
        """
        matrix, keys, _ = self._matrix, self._keys, self._payloads
        partitions = resolve_partition_count(self.num_partitions, len(matrix))
        centroids = self._kmeans(matrix, partitions)
        assignment = np.argmax(matrix @ centroids.T, axis=1)
        self._partition_rows = []
        self._partition_matrices = []
        self._partition_keys = []
        populated = []
        for partition in range(partitions):
            rows = np.flatnonzero(assignment == partition)
            if not len(rows):
                continue
            populated.append(partition)
            self._partition_rows.append(rows)
            self._partition_matrices.append(matrix[rows])
            self._partition_keys.append(tuple(keys[row] for row in rows))
        self._centroids = centroids[populated]
        self._trained_rows = len(matrix)

    def ensure_trained(self) -> None:
        """Train (or retrain) now if a search would; used before snapshotting
        so saved libraries carry their centroids and warm starts skip k-means."""
        with self._lock:
            if self._needs_training(len(self._keys)):
                self._train_locked()

    def _search_snapshot(self):
        """A consistent search-time view, retraining first when stale."""
        with self._lock:
            if self._needs_training(len(self._keys)):
                self._train_locked()
            return (
                self._matrix,
                self._keys,
                self._payloads,
                self._centroids,
                list(self._partition_rows),
                list(self._partition_matrices),
                list(self._partition_keys),
                self._trained_rows,
            )

    # -- search ------------------------------------------------------------

    def search_matrix(self, queries: np.ndarray, top_k: int) -> List[List[SearchHit]]:
        matrix, keys, payloads, centroids, rows, mats, part_keys, trained = self._search_snapshot()
        queries = np.asarray(queries)
        if not len(keys) or top_k <= 0:
            return [[] for _ in range(len(queries))]
        if centroids is None:
            return ExactIndex.search_matrix(self, queries, top_k)

        nprobe = min(self.nprobe, len(centroids))
        centroid_scores = queries @ centroids.T  # (queries, partitions)
        # stable sort: equal centroid scores probe the lower partition id
        probed = np.argsort(-centroid_scores, axis=1, kind="stable")[:, :nprobe]

        by_partition: Dict[int, List[int]] = {}
        for query_index, partitions in enumerate(probed):
            for partition in partitions:
                by_partition.setdefault(int(partition), []).append(query_index)

        def score_partition(partition: int) -> List[Tuple[int, np.ndarray, np.ndarray]]:
            """Local top-K candidates of one partition for the queries probing it."""
            query_indices = by_partition[partition]
            local = mats[partition] @ queries[query_indices].T  # (rows, queries)
            out = []
            for column, query_index in enumerate(query_indices):
                scores = local[:, column]
                picks = select_top_k(scores, part_keys[partition], top_k)
                out.append((query_index, rows[partition][picks], scores[picks]))
            return out

        tasks = sorted(by_partition)
        # fan out only for query batches: a single-query probe is a handful of
        # small matmuls, not worth a fresh thread pool per call on the
        # per-example pipeline hot path (results are identical either way)
        runner = self._runner if len(queries) > 1 else self._serial_runner
        partition_results = runner.map(tasks, score_partition)

        candidates: List[List[Tuple[np.ndarray, np.ndarray]]] = [[] for _ in range(len(queries))]
        # input order of `tasks` is preserved by the runner, so the merge is
        # deterministic regardless of worker count
        for partition_result in partition_results:
            for query_index, global_rows, scores in partition_result:
                candidates[query_index].append((global_rows, scores))
        if trained < len(keys):  # the unpartitioned tail, scanned exactly
            tail_rows = np.arange(trained, len(keys))
            tail_keys = keys[trained:]
            tail_scores = matrix[trained:] @ queries.T
            for query_index in range(len(queries)):
                scores = tail_scores[:, query_index]
                # pre-reduce like the partitions do: the tail can hold up to
                # retrain_growth of the library, too big to merge wholesale
                picks = select_top_k(scores, tail_keys, top_k)
                candidates[query_index].append((tail_rows[picks], scores[picks]))

        results: List[List[SearchHit]] = []
        for query_index in range(len(queries)):
            merged = candidates[query_index]
            global_rows = np.concatenate([rows_ for rows_, _ in merged])
            scores = np.concatenate([scores_ for _, scores_ in merged])
            merged_keys = [keys[row] for row in global_rows]
            results.append(
                [
                    SearchHit(
                        key=keys[global_rows[pick]],
                        payload=payloads[global_rows[pick]],
                        score=float(scores[pick]),
                    )
                    for pick in select_top_k(scores, merged_keys, top_k)
                ]
            )
        return results

    # -- introspection / persistence ----------------------------------------

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def partition_sizes(self) -> List[int]:
        with self._lock:
            return [len(rows) for rows in self._partition_rows]

    def state(self) -> Dict[str, Any]:
        with self._lock:
            state = super().state()
            state.update(
                {
                    "num_partitions": self.num_partitions,
                    "nprobe": self.nprobe,
                    "seed": self.seed,
                    "kmeans_iterations": self.kmeans_iterations,
                    "retrain_growth": self.retrain_growth,
                    "trained_rows": self._trained_rows,
                }
            )
            if self._centroids is not None:
                assignment = np.full(self._trained_rows, -1)
                for partition, rows in enumerate(self._partition_rows):
                    assignment[rows] = partition
                state["centroids"] = self._centroids
                state["assignment"] = assignment
            return state

    @classmethod
    def from_state(cls, state: Dict[str, Any], search_workers: int = 1) -> "PartitionedIndex":
        index = cls(
            num_partitions=int(state.get("num_partitions", 0)),
            nprobe=int(state.get("nprobe", 8)),
            search_workers=search_workers,
            seed=int(state.get("seed", 13)),
            kmeans_iterations=int(state.get("kmeans_iterations", 8)),
            retrain_growth=float(state.get("retrain_growth", 0.5)),
        )
        index.add(state["keys"], np.asarray(state["matrix"]), state["payloads"])
        if "centroids" in state and state["centroids"] is not None:
            with index._lock:
                centroids = np.asarray(state["centroids"])
                assignment = np.asarray(state["assignment"])
                index._centroids = centroids
                index._partition_rows = []
                index._partition_matrices = []
                index._partition_keys = []
                for partition in range(len(centroids)):
                    rows = np.flatnonzero(assignment == partition)
                    index._partition_rows.append(rows)
                    index._partition_matrices.append(index._matrix[rows])
                    index._partition_keys.append(tuple(index._keys[row] for row in rows))
                index._trained_rows = int(state.get("trained_rows", len(index._keys)))
        return index
