"""The vector-index contract shared by every retrieval backend.

A :class:`VectorIndex` is the storage-and-search half of a vector library: it
holds ``(key, vector, payload)`` triples and answers batched cosine top-K
queries.  Embedding text into vectors is *not* its job — that stays with
:class:`~repro.embeddings.store.VectorStore`, which owns the embedder and
delegates everything below the embedding boundary to a configured index.

Two backends implement the protocol (see :mod:`repro.index.exact` and
:mod:`repro.index.partitioned`); :func:`build_index` maps an
:class:`IndexConfig` to an instance, and :mod:`repro.index.snapshot` persists
any of them to disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Generic,
    List,
    Optional,
    Protocol,
    Sequence,
    TypeVar,
    runtime_checkable,
)

import numpy as np

PayloadT = TypeVar("PayloadT")

#: Known backend names, in the order the docs present them.
EXACT, PARTITIONED = "exact", "partitioned"


@dataclass(frozen=True)
class IndexConfig:
    """Which retrieval backend to use and how to tune it.

    Attributes:
        backend: ``"exact"`` (brute-force matmul over the full library, the
            historical behaviour) or ``"partitioned"`` (IVF-style coarse
            quantisation: queries probe only the ``nprobe`` partitions whose
            centroids are most similar).
        num_partitions: partition count for the partitioned backend;
            ``0`` picks ``round(sqrt(n))`` from the library size at train
            time.
        nprobe: how many partitions each query scans.  Larger values trade
            throughput for recall; ``nprobe == num_partitions`` degenerates
            to exact search.
        search_workers: fan partition scoring out across this many
            :class:`~repro.runtime.runner.BatchRunner` workers (``1`` =
            serial; results are identical at any worker count).
        snapshot_path: when set, retrieval libraries are persisted here after
            preparation and reloaded on the next run instead of re-embedding
            the corpus (see :meth:`repro.core.retriever.GREDRetriever.prepare`).
    """

    backend: str = EXACT
    num_partitions: int = 0
    nprobe: int = 8
    search_workers: int = 1
    snapshot_path: Optional[str] = None


@dataclass
class SearchHit(Generic[PayloadT]):
    """One retrieval result: the stored payload plus its similarity score."""

    key: str
    payload: PayloadT
    score: float


@runtime_checkable
class VectorIndex(Protocol):
    """Storage plus batched cosine top-K search over ``(key, vector, payload)``.

    Implementations must be append-only and thread-safe: concurrent ``add``
    and ``search_matrix`` calls may interleave, and every hit an in-flight
    search returns must be an internally consistent triple (the score pairs
    with the key's own vector and payload, never a neighbour's).
    """

    backend_name: str

    def __len__(self) -> int:
        ...  # pragma: no cover - protocol stub

    def add(self, keys: Sequence[str], vectors: np.ndarray, payloads: Sequence[Any]) -> None:
        ...  # pragma: no cover - protocol stub

    def search_matrix(self, queries: np.ndarray, top_k: int) -> List[List[SearchHit]]:
        ...  # pragma: no cover - protocol stub

    def snapshot(self) -> Any:
        """A consistent ``(matrix, keys, payloads)`` view of the library."""
        ...  # pragma: no cover - protocol stub

    def state(self) -> Dict[str, Any]:
        ...  # pragma: no cover - protocol stub


def select_top_k(scores: np.ndarray, keys: Sequence[str], top_k: int) -> List[int]:
    """Indices of the ``top_k`` best scores, with a deterministic tie-break.

    Uses ``np.partition`` to find the K-th score in O(n) and only sorts the
    survivors, instead of fully sorting the library on every query.  Equal
    scores are broken by ascending key, so the returned order does not depend
    on the platform's (unstable) sort or on how entries are sharded across
    partitions.
    """
    count = int(scores.shape[0])
    if top_k <= 0 or count == 0:
        return []
    top_k = min(top_k, count)
    if top_k == count:
        return sorted(range(count), key=lambda index: (-scores[index], keys[index]))
    kth = np.partition(scores, count - top_k)[count - top_k]
    above = np.flatnonzero(scores > kth)  # at most top_k - 1 entries
    ties = np.flatnonzero(scores == kth)
    needed = top_k - len(above)
    if len(ties) > needed:
        # a mass tie (e.g. a zero query vector scoring the whole library
        # equally) must not trigger a Python sort of every tied entry:
        # partition the tie block by key and keep only the smallest keys
        tie_keys = np.array([keys[index] for index in ties.tolist()])
        ties = ties[np.argpartition(tie_keys, needed - 1)[:needed]]
    candidates = np.concatenate([above, ties])
    return sorted(candidates.tolist(), key=lambda index: (-scores[index], keys[index]))


def resolve_partition_count(num_partitions: int, library_size: int) -> int:
    """The effective partition count: explicit, or ``round(sqrt(n))`` when 0."""
    if num_partitions > 0:
        return min(num_partitions, max(1, library_size))
    return int(np.clip(round(np.sqrt(max(1, library_size))), 1, 1024))
