"""The exact (brute-force) backend: one matmul over the whole library.

This is the historical :class:`~repro.embeddings.store.VectorStore` search,
lifted below the embedding boundary.  The matrix grows incrementally —
:meth:`ExactIndex.add` appends pre-embedded rows — and a search scores every
row in a single ``(library, queries)`` matrix multiplication.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.index.base import EXACT, SearchHit, select_top_k


class ExactIndex:
    """Append-only flat index with exact cosine top-K.

    Storage is immutable-snapshot style: ``add`` swaps in extended tuples and
    a new matrix under the lock, and a search grabs one consistent
    ``(matrix, keys, payloads)`` triple before scoring.  Readers therefore
    never observe a half-updated library — the race where scores computed
    against an older matrix were paired with keys/payloads appended by a
    concurrent ``add`` cannot occur.
    """

    backend_name = EXACT

    def __init__(self) -> None:
        self._keys: Tuple[str, ...] = ()
        self._payloads: Tuple[Any, ...] = ()
        self._matrix: np.ndarray = np.zeros((0, 0))
        # re-entrant so subclasses can snapshot while holding the lock
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, keys: Sequence[str], vectors: np.ndarray, payloads: Sequence[Any]) -> None:
        """Append pre-embedded rows; ``vectors`` is ``(len(keys), dims)``."""
        if len(keys) != len(vectors) or len(keys) != len(payloads):
            raise ValueError(
                f"Mismatched batch: {len(keys)} keys, {len(vectors)} vectors, "
                f"{len(payloads)} payloads"
            )
        if not len(keys):
            return
        vectors = np.asarray(vectors)
        with self._lock:
            self._keys = self._keys + tuple(keys)
            self._payloads = self._payloads + tuple(payloads)
            matrix = self._matrix if self._matrix.size else None
            self._matrix = vectors if matrix is None else np.vstack([matrix, vectors])

    def snapshot(self) -> Tuple[np.ndarray, Tuple[str, ...], Tuple[Any, ...]]:
        """A consistent ``(matrix, keys, payloads)`` view of the library."""
        with self._lock:
            return self._matrix, self._keys, self._payloads

    def search_matrix(self, queries: np.ndarray, top_k: int) -> List[List[SearchHit]]:
        """Top-K hits for each row of ``queries``, scored in one matmul."""
        matrix, keys, payloads = self.snapshot()
        if not len(keys) or top_k <= 0:
            return [[] for _ in range(len(queries))]
        scores = matrix @ np.asarray(queries).T  # (library, queries)
        results: List[List[SearchHit]] = []
        for column in range(scores.shape[1]):
            column_scores = scores[:, column]
            results.append(
                [
                    SearchHit(key=keys[index], payload=payloads[index], score=float(column_scores[index]))
                    for index in select_top_k(column_scores, keys, top_k)
                ]
            )
        return results

    def state(self) -> Dict[str, Any]:
        """The serialisable core of the index (see :mod:`repro.index.snapshot`)."""
        matrix, keys, payloads = self.snapshot()
        return {
            "backend": self.backend_name,
            "keys": list(keys),
            "payloads": list(payloads),
            "matrix": matrix,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ExactIndex":
        index = cls()
        index.add(state["keys"], np.asarray(state["matrix"]), state["payloads"])
        return index
