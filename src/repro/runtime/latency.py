"""A chat-model wrapper that simulates remote-endpoint latency.

The simulated chat model answers in microseconds, which hides the property the
batched runtime is built to exploit: against a real LLM endpoint almost all of
a pipeline run is spent waiting on the network.  :class:`LatencyChatModel`
re-introduces that wait as a fixed ``time.sleep`` per completion call (the
sleep releases the GIL, exactly like a socket read), so throughput benchmarks
measure realistic serial-vs-batched behaviour without any network access.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from repro.llm.interface import ChatMessage, ChatModel, CompletionParams


class LatencyChatModel(ChatModel):
    """Delegates to ``inner`` after sleeping ``seconds_per_call``."""

    def __init__(self, inner: ChatModel, seconds_per_call: float = 0.02):
        if seconds_per_call < 0:
            raise ValueError("seconds_per_call must be non-negative")
        self.inner = inner
        self.seconds_per_call = seconds_per_call
        self.calls = 0
        self._lock = threading.Lock()

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def complete(
        self, messages: Sequence[ChatMessage], params: Optional[CompletionParams] = None
    ) -> str:
        with self._lock:
            self.calls += 1
        if self.seconds_per_call:
            time.sleep(self.seconds_per_call)
        return self.inner.complete(messages, params=params)
