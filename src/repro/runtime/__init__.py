"""repro.runtime: the batched, cached execution engine.

This package is the single throughput layer shared by ``GRED.predict_batch``,
the :class:`~repro.evaluation.evaluator.ModelEvaluator` and the benchmark
harness:

* :class:`LLMCache` — memoizes chat completions keyed on the full request,
  with hit/miss statistics per pipeline behaviour.
* :class:`BatchRunner` / :class:`BatchReport` — maps a callable over a dataset
  on a configurable thread pool with failure isolation, progress reporting and
  per-item timing.
* :mod:`repro.runtime.timing` — aggregates the per-stage durations that
  ``GRED.trace`` records.
* :class:`LatencyChatModel` — simulates remote-LLM latency so benchmarks can
  demonstrate batched speed-ups offline.
"""

from repro.runtime.cache import CacheStats, LLMCache, behaviour_of
from repro.runtime.latency import LatencyChatModel
from repro.runtime.runner import (
    BatchFailure,
    BatchItemResult,
    BatchReport,
    BatchRunner,
)
from repro.runtime.timing import StageStat, aggregate_stage_timings, format_stage_table

__all__ = [
    "BatchFailure",
    "BatchItemResult",
    "BatchReport",
    "BatchRunner",
    "CacheStats",
    "LLMCache",
    "LatencyChatModel",
    "StageStat",
    "aggregate_stage_timings",
    "behaviour_of",
    "format_stage_table",
]
