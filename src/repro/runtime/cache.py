"""A memoizing wrapper around any :class:`~repro.llm.interface.ChatModel`.

GRED issues the same completion request many times across an experiment run:
the annotation prompt for a database is shared by every test question on that
database, and the robustness variant sets repeat NLQs with small edits whose
retrieval prompts often collide.  :class:`LLMCache` sits between a pipeline
stage and the underlying chat model and memoizes responses keyed on the full
``(messages, params)`` request, so repeated requests cost a dictionary lookup
instead of a completion call.

The cache is thread-safe and transparent: attributes it does not define
(``log``, ``lexicon``, ...) are delegated to the wrapped model, so code that
inspects ``SimulatedChatModel.log`` keeps working when a cache is interposed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.llm import markers
from repro.llm.interface import ChatMessage, ChatModel, CompletionParams

#: (behaviour name, prompt sentinel) in dispatch priority order — mirrors
#: :meth:`repro.llm.simulated.SimulatedChatModel._dispatch` so cache statistics
#: group by the same behaviour names the simulated model logs.
_BEHAVIOUR_MARKERS = (
    ("repair", markers.TASK_REPAIR),
    ("debug", markers.TASK_DEBUG),
    ("retune", markers.TASK_RETUNE),
    ("generation", markers.TASK_GENERATION),
    ("annotation", markers.TASK_ANNOTATION),
)

CacheKey = Tuple[Tuple[Tuple[str, str], ...], CompletionParams]


def behaviour_of(prompt: str) -> str:
    """The pipeline behaviour a prompt belongs to (``"unknown"`` if none)."""
    lowered = prompt.lower()
    for name, marker in _BEHAVIOUR_MARKERS:
        if marker.lower() in lowered:
            return name
    return "unknown"


@dataclass
class CacheStats:
    """Hit/miss counters, overall and per pipeline behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    by_behaviour: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def record(self, behaviour: str, hit: bool) -> None:
        bucket = self.by_behaviour.setdefault(behaviour, {"hits": 0, "misses": 0})
        if hit:
            self.hits += 1
            bucket["hits"] += 1
        else:
            self.misses += 1
            bucket["misses"] += 1

    def summary(self) -> str:
        """One line suitable for progress logs and benchmark reports."""
        return (
            f"llm-cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate, {self.evictions} evictions)"
        )


class LLMCache(ChatModel):
    """Memoizes ``complete`` calls of an inner chat model.

    Args:
        inner: the chat model doing the real work on a cache miss.
        max_entries: optional FIFO capacity bound; ``None`` means unbounded.

    Two threads missing on the same key may both call ``inner`` (the lock is
    released around the completion call so misses proceed concurrently); both
    store the same deterministic response, so correctness is unaffected.
    """

    def __init__(self, inner: ChatModel, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None (unbounded), got {max_entries}; "
                "to disable caching, use the inner model directly"
            )
        self.inner = inner
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._cache: Dict[CacheKey, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._cache)

    def __getattr__(self, name: str):
        # Transparent delegation: expose the wrapped model's log, lexicon, ...
        return getattr(self.inner, name)

    @staticmethod
    def _key(messages: Sequence[ChatMessage], params: CompletionParams) -> CacheKey:
        return (tuple((message.role, message.content) for message in messages), params)

    def complete(
        self, messages: Sequence[ChatMessage], params: Optional[CompletionParams] = None
    ) -> str:
        params = params or CompletionParams()
        key = self._key(messages, params)
        behaviour = behaviour_of("\n".join(message.content for message in messages))
        with self._lock:
            if key in self._cache:
                self.stats.record(behaviour, hit=True)
                return self._cache[key]
            self.stats.record(behaviour, hit=False)
        response = self.inner.complete(messages, params=params)
        with self._lock:
            if self.max_entries is not None:
                while len(self._cache) >= self.max_entries:
                    self._cache.pop(next(iter(self._cache)))
                    self.stats.evictions += 1
            self._cache[key] = response
        return response

    def clear(self) -> None:
        """Drop every cached response (statistics are kept)."""
        with self._lock:
            self._cache.clear()
