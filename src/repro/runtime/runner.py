"""Batched execution over a dataset with workers, timing and failure isolation.

:class:`BatchRunner` is the execution engine behind ``GRED.predict_batch``,
:class:`~repro.evaluation.evaluator.ModelEvaluator` and the benchmark harness.
It maps a callable over a sequence of items, optionally on a thread pool, and
returns a :class:`BatchReport` that preserves input order, isolates failures
(one bad example records an error instead of aborting the run) and carries
per-item wall-clock timings.

With ``max_workers=1`` the runner degenerates to a plain serial loop, so the
batched path is bit-identical to historical serial behaviour; higher worker
counts overlap the latency of chat-model calls (the dominant cost against a
real LLM endpoint).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

ProgressCallback = Callable[[int, int], None]


class BatchFailure(RuntimeError):
    """Raised by strict accessors when a batch contains failed items."""


@dataclass
class BatchItemResult(Generic[ResultT]):
    """Outcome of one item: either a value or an error string, plus timing."""

    index: int
    value: Optional[ResultT] = None
    error: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchReport(Generic[ResultT]):
    """Ordered results of one batch run plus aggregate throughput numbers."""

    items: List[BatchItemResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    max_workers: int = 1

    def __len__(self) -> int:
        return len(self.items)

    @property
    def ok_count(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def failure_count(self) -> int:
        return len(self.items) - self.ok_count

    def failures(self) -> List[BatchItemResult]:
        return [item for item in self.items if not item.ok]

    def values(self, strict: bool = True) -> List[Optional[ResultT]]:
        """The per-item values in input order.

        With ``strict=True`` (default) a batch containing failures raises
        :class:`BatchFailure`; with ``strict=False`` failed slots hold ``None``.
        """
        if strict and self.failure_count:
            first = self.failures()[0]
            raise BatchFailure(
                f"{self.failure_count}/{len(self.items)} items failed; "
                f"first failure at index {first.index}: {first.error}"
            )
        return [item.value for item in self.items]

    @property
    def items_per_second(self) -> float:
        return len(self.items) / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def busy_seconds(self) -> float:
        """Summed per-item compute time (= wall time of an ideal serial run)."""
        return sum(item.seconds for item in self.items)

    def summary(self) -> str:
        return (
            f"{self.ok_count}/{len(self.items)} ok in {self.wall_seconds:.2f}s "
            f"({self.items_per_second:.1f} items/s, {self.max_workers} workers)"
        )


class BatchRunner:
    """Maps a callable over items with a configurable thread pool.

    Args:
        max_workers: ``1`` runs a plain serial loop (deterministic baseline);
            ``n > 1`` uses a thread pool of ``n`` workers.
        progress: optional ``(done, total)`` callback invoked after every item
            (serialised by an internal lock, so it may mutate shared state).
        fail_fast: when ``True``, re-raise the first failure after the batch
            drains instead of recording it; the default isolates failures.
    """

    def __init__(
        self,
        max_workers: int = 1,
        progress: Optional[ProgressCallback] = None,
        fail_fast: bool = False,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.progress = progress
        self.fail_fast = fail_fast

    def _run_one(self, index: int, item: ItemT, fn: Callable[[ItemT], ResultT]) -> BatchItemResult:
        started = time.perf_counter()
        try:
            value = fn(item)
            return BatchItemResult(index=index, value=value, seconds=time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001 - failure isolation is the point
            return BatchItemResult(
                index=index,
                error=f"{type(error).__name__}: {error}",
                seconds=time.perf_counter() - started,
            )

    def run(self, items: Sequence[ItemT], fn: Callable[[ItemT], ResultT]) -> BatchReport:
        """Execute ``fn`` over every item, returning results in input order."""
        items = list(items)
        results: List[Optional[BatchItemResult]] = [None] * len(items)
        done = 0
        lock = threading.Lock()
        started = time.perf_counter()

        def finish(result: BatchItemResult) -> None:
            nonlocal done
            results[result.index] = result
            if self.progress is not None:
                with lock:
                    done += 1
                    self.progress(done, len(items))

        if self.max_workers == 1 or len(items) <= 1:
            for index, item in enumerate(items):
                finish(self._run_one(index, item, fn))
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    pool.submit(self._run_one, index, item, fn)
                    for index, item in enumerate(items)
                ]
                # completion order, so progress ticks as items actually finish;
                # results land in their input slot via BatchItemResult.index
                for future in as_completed(futures):
                    finish(future.result())

        report = BatchReport(
            items=[result for result in results if result is not None],
            wall_seconds=time.perf_counter() - started,
            max_workers=self.max_workers,
        )
        if self.fail_fast and report.failure_count:
            first = report.failures()[0]
            raise BatchFailure(f"item {first.index} failed: {first.error}")
        return report

    def map(self, items: Sequence[ItemT], fn: Callable[[ItemT], ResultT]) -> List[ResultT]:
        """Like :meth:`run` but returns plain values, raising on any failure."""
        return self.run(items, fn).values(strict=True)
