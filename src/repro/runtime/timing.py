"""Aggregation of per-stage wall-clock timings.

``GRED.trace`` stamps each pipeline stage (``generate`` / ``retune`` /
``debug``) with its duration; :func:`aggregate_stage_timings` folds those
per-trace dictionaries into one :class:`StageStat` per stage so benchmarks and
experiment reports can show where a run spent its time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping


@dataclass
class StageStat:
    """Accumulated wall-clock time of one pipeline stage."""

    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)


def aggregate_stage_timings(
    timings: Iterable[Mapping[str, float]]
) -> Dict[str, StageStat]:
    """Fold per-item ``{stage: seconds}`` mappings into per-stage statistics."""
    stats: Dict[str, StageStat] = {}
    for mapping in timings:
        for stage, seconds in mapping.items():
            stats.setdefault(stage, StageStat()).add(seconds)
    return stats


def format_stage_table(stats: Mapping[str, StageStat]) -> str:
    """A small fixed-width table of stage timings for logs and benchmarks."""
    lines = [f"{'stage':<12} {'count':>6} {'total s':>9} {'mean ms':>9} {'max ms':>9}"]
    for stage, stat in sorted(stats.items(), key=lambda kv: -kv[1].total_seconds):
        lines.append(
            f"{stage:<12} {stat.count:>6} {stat.total_seconds:>9.3f} "
            f"{stat.mean_seconds * 1e3:>9.2f} {stat.max_seconds * 1e3:>9.2f}"
        )
    return "\n".join(lines)
