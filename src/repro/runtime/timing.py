"""Per-stage wall-clock measurement and aggregation.

The stage plan's :class:`~repro.pipeline.middleware.TimingMiddleware` stamps
each pipeline stage (``generate`` / ``retune`` / ``debug`` / ``repair`` /
``verify``) with its duration using a :class:`Stopwatch`;
:func:`aggregate_stage_timings` folds those per-trace dictionaries into one
:class:`StageStat` per stage so benchmarks and experiment reports can show
where a run spent its time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping


class Stopwatch:
    """A context manager measuring the wall-clock seconds of its block.

    The single timing primitive behind stage middleware and benchmarks —
    replaces the hand-paired ``time.perf_counter()`` calls that used to be
    threaded through ``GRED.trace``.  ``seconds`` reads as the running
    elapsed time inside the block and freezes at exit.
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self._elapsed: float = 0.0
        self._running = False

    @property
    def seconds(self) -> float:
        if self._running:
            return time.perf_counter() - self._start
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self._running = True
        return self

    def __exit__(self, *exc_info) -> None:
        self._elapsed = time.perf_counter() - self._start
        self._running = False


@dataclass
class StageStat:
    """Accumulated wall-clock time of one pipeline stage."""

    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)


def aggregate_stage_timings(
    timings: Iterable[Mapping[str, float]]
) -> Dict[str, StageStat]:
    """Fold per-item ``{stage: seconds}`` mappings into per-stage statistics."""
    stats: Dict[str, StageStat] = {}
    for mapping in timings:
        for stage, seconds in mapping.items():
            stats.setdefault(stage, StageStat()).add(seconds)
    return stats


def format_stage_table(stats: Mapping[str, StageStat]) -> str:
    """A small fixed-width table of stage timings for logs and benchmarks."""
    lines = [f"{'stage':<12} {'count':>6} {'total s':>9} {'mean ms':>9} {'max ms':>9}"]
    for stage, stat in sorted(stats.items(), key=lambda kv: -kv[1].total_seconds):
        lines.append(
            f"{stage:<12} {stat.count:>6} {stat.total_seconds:>9.3f} "
            f"{stat.mean_seconds * 1e3:>9.2f} {stat.max_seconds * 1e3:>9.2f}"
        )
    return "\n".join(lines)
