"""A light-weight model of the Vega-Lite specification subset used by nvBench."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: Marks accepted by the validator — the ones nvBench charts compile to.
VALID_MARKS = frozenset({"bar", "line", "point", "arc"})

#: Encoding channels used by nvBench chart types.
VALID_CHANNELS = frozenset({"x", "y", "color", "theta"})

#: Vega-Lite field types.
VALID_FIELD_TYPES = frozenset({"quantitative", "nominal", "ordinal", "temporal"})

#: Aggregations understood by the compiler.
VALID_AGGREGATES = frozenset({"count", "sum", "mean", "average", "min", "max"})


@dataclass
class Encoding:
    """One encoding channel (x, y, color or theta)."""

    field: str
    type: str = "nominal"
    aggregate: Optional[str] = None
    sort: Optional[str] = None
    time_unit: Optional[str] = None
    bin: bool = False

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"field": self.field, "type": self.type}
        if self.aggregate:
            payload["aggregate"] = self.aggregate
        if self.sort:
            payload["sort"] = self.sort
        if self.time_unit:
            payload["timeUnit"] = self.time_unit
        if self.bin:
            payload["bin"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Encoding":
        return cls(
            field=str(payload.get("field", "")),
            type=str(payload.get("type", "nominal")),
            aggregate=payload.get("aggregate"),
            sort=payload.get("sort"),
            time_unit=payload.get("timeUnit"),
            bin=bool(payload.get("bin", False)),
        )


@dataclass
class VegaLiteSpec:
    """A minimal Vega-Lite specification."""

    mark: str
    encoding: Dict[str, Encoding]
    data_values: List[Dict[str, object]] = field(default_factory=list)
    title: str = ""

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
            "mark": self.mark,
            "encoding": {name: enc.to_dict() for name, enc in self.encoding.items()},
            "data": {"values": self.data_values},
        }
        if self.title:
            payload["title"] = self.title
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "VegaLiteSpec":
        encoding = {
            name: Encoding.from_dict(enc)
            for name, enc in payload.get("encoding", {}).items()
        }
        data = payload.get("data", {})
        values = data.get("values", []) if isinstance(data, dict) else []
        return cls(
            mark=str(payload.get("mark", "")),
            encoding=encoding,
            data_values=list(values),
            title=str(payload.get("title", "")),
        )
