"""DVQ → Vega-Lite compilation and chart materialisation.

The paper's text-to-vis pipeline ends with a declarative visualization language
specification (Vega-Lite) that a front end renders.  This package compiles a
DVQ into a Vega-Lite JSON specification, validates it against the schema
subset used by nvBench, and materialises the chart data by delegating to the
executor.
"""

from repro.vegalite.spec import Encoding, VegaLiteSpec
from repro.vegalite.compiler import compile_to_vegalite
from repro.vegalite.renderer import Chart, ChartRenderer, RenderError
from repro.vegalite.validation import validate_spec

__all__ = [
    "Chart",
    "ChartRenderer",
    "Encoding",
    "RenderError",
    "VegaLiteSpec",
    "compile_to_vegalite",
    "validate_spec",
]
