"""Validation of Vega-Lite specifications against the nvBench subset."""

from __future__ import annotations

from typing import List

from repro.vegalite.spec import (
    VALID_AGGREGATES,
    VALID_CHANNELS,
    VALID_FIELD_TYPES,
    VALID_MARKS,
    VegaLiteSpec,
)


def validate_spec(spec: VegaLiteSpec) -> List[str]:
    """Return a list of validation problems; an empty list means the spec is valid.

    The validator reproduces the front-end behaviour in Figure 1 of the paper:
    specifications with unknown marks (e.g. ``"histogram"``) or malformed field
    references are rejected and no chart is drawn.
    """
    problems: List[str] = []
    if spec.mark not in VALID_MARKS:
        problems.append(f"Unknown mark {spec.mark!r}; expected one of {sorted(VALID_MARKS)}")
    if not spec.encoding:
        problems.append("Specification has no encoding channels")
    for channel, encoding in spec.encoding.items():
        if channel not in VALID_CHANNELS:
            problems.append(f"Unknown encoding channel {channel!r}")
        if not encoding.field or not str(encoding.field).strip():
            problems.append(f"Channel {channel!r} has an empty field reference")
        elif " " in str(encoding.field).strip() and not str(encoding.field).isupper():
            # nvBench field names never contain spaces; a multi-word field
            # usually means a natural-language phrase leaked into the spec
            problems.append(
                f"Channel {channel!r} field {encoding.field!r} is not a valid column identifier"
            )
        if encoding.type not in VALID_FIELD_TYPES:
            problems.append(f"Channel {channel!r} has invalid field type {encoding.type!r}")
        if encoding.aggregate is not None and encoding.aggregate not in VALID_AGGREGATES:
            problems.append(
                f"Channel {channel!r} has unknown aggregate {encoding.aggregate!r}"
            )
    if spec.mark != "arc" and "x" not in spec.encoding:
        problems.append("Non-pie charts require an x channel")
    if spec.mark == "arc" and "theta" not in spec.encoding:
        problems.append("Pie charts require a theta channel")
    return problems


def is_valid_spec(spec: VegaLiteSpec) -> bool:
    """True when :func:`validate_spec` reports no problems."""
    return not validate_spec(spec)
