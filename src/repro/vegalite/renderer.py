"""Chart materialisation: execute a DVQ and attach the data series to its spec."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.database.database import Database
from repro.dvq.errors import DVQError
from repro.dvq.nodes import DVQuery
from repro.dvq.parser import parse_dvq
from repro.executor.backend import ExecutionBackend
from repro.executor.errors import ExecutionError
from repro.executor.executor import DVQExecutor, ExecutionResult
from repro.vegalite.compiler import compile_to_vegalite
from repro.vegalite.spec import VegaLiteSpec
from repro.vegalite.validation import validate_spec


class RenderError(Exception):
    """Raised when a chart cannot be rendered (bad spec or failed execution)."""

    def __init__(self, message, problems=None):
        super().__init__(message)
        self.problems = problems or []


@dataclass
class Chart:
    """A rendered chart: a validated spec plus its materialised data series."""

    spec: VegaLiteSpec
    result: ExecutionResult
    query: DVQuery

    @property
    def data(self) -> List[Dict[str, object]]:
        return self.result.as_dicts()

    def summary(self) -> str:
        """A short human-readable description, used by examples and the case study."""
        columns = ", ".join(self.result.columns)
        return (
            f"{self.query.chart_type.value} chart with {len(self.result)} data points "
            f"over [{columns}]"
        )

    def ascii_render(self, width: int = 40, max_rows: int = 12) -> str:
        """A terminal rendering of the chart (bar lengths proportional to y)."""
        rows = self.result.rows[:max_rows]
        if not rows:
            return "(empty chart)"
        y_values = []
        for row in rows:
            value = row[1] if len(row) > 1 else row[0]
            try:
                y_values.append(float(value))
            except (TypeError, ValueError):
                y_values.append(0.0)
        max_y = max(y_values) if any(y_values) else 1.0
        lines = []
        for row, y_value in zip(rows, y_values):
            label = str(row[0])[:18].ljust(18)
            bar_length = int(round(width * (y_value / max_y))) if max_y else 0
            lines.append(f"{label} | {'#' * bar_length} {y_value:g}")
        return "\n".join(lines)


@dataclass
class ChartRenderer:
    """Renders DVQs (text or AST) into :class:`Chart` objects.

    By default the chart data is materialised by the row-at-a-time
    interpreter (``executor``); pass ``backend`` — any
    :class:`~repro.executor.backend.ExecutionBackend`, e.g.
    ``resolve_backend("sqlite")`` — to execute on a different engine with
    normalised (engine-independent) results instead.
    """

    executor: DVQExecutor = field(default_factory=DVQExecutor)
    strict: bool = True
    backend: Optional[ExecutionBackend] = None

    def render(self, query: DVQuery, database: Database) -> Chart:
        """Render a parsed query against ``database``.

        Raises:
            RenderError: when the compiled spec is invalid or execution fails.
        """
        spec = compile_to_vegalite(query, database)
        problems = validate_spec(spec)
        if problems and self.strict:
            raise RenderError(
                f"Invalid Vega-Lite specification: {problems[0]}", problems=problems
            )
        engine = self.backend if self.backend is not None else self.executor
        try:
            result = engine.execute(query, database)
        except ExecutionError as exc:
            raise RenderError(f"Execution failed: {exc}") from exc
        spec.data_values = result.as_dicts()
        return Chart(spec=spec, result=result, query=query)

    def render_text(self, dvq_text: str, database: Database) -> Chart:
        """Parse and render a DVQ string.

        Raises:
            RenderError: when the DVQ cannot be parsed, compiled or executed —
                this is the "no chart" outcome the paper's case study reports
                for non-robust model predictions.
        """
        try:
            query = parse_dvq(dvq_text)
        except DVQError as exc:
            raise RenderError(f"Cannot parse DVQ: {exc}") from exc
        return self.render(query, database)

    def try_render_text(self, dvq_text: str, database: Database) -> Optional[Chart]:
        """Render a DVQ string, returning ``None`` instead of raising on failure."""
        try:
            return self.render_text(dvq_text, database)
        except RenderError:
            return None
