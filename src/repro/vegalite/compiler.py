"""Compile DVQ ASTs into Vega-Lite specifications."""

from __future__ import annotations

from typing import Dict, Optional

from repro.database.database import Database
from repro.database.schema import ColumnType
from repro.dvq.nodes import (
    AggregateExpr,
    BinUnit,
    ChartType,
    DVQuery,
    SelectItem,
    SortDirection,
)
from repro.vegalite.spec import Encoding, VegaLiteSpec

_AGGREGATE_MAP = {
    "COUNT": "count",
    "SUM": "sum",
    "AVG": "mean",
    "MIN": "min",
    "MAX": "max",
}

_TIME_UNIT_MAP = {
    BinUnit.YEAR: "year",
    BinUnit.MONTH: "month",
    BinUnit.WEEKDAY: "day",
}


def _field_type(item: SelectItem, query: DVQuery, database: Optional[Database]) -> str:
    """Infer the Vega-Lite field type of a select item."""
    if isinstance(item.expr, AggregateExpr):
        return "quantitative"
    column_name = item.expr.column
    if database is not None:
        resolved = database.resolve_column(column_name, preferred_table=query.table)
        if resolved is not None:
            table_name, canonical = resolved
            column = database.schema.table(table_name).column(canonical)
            if column.ctype is ColumnType.NUMBER:
                return "quantitative"
            if column.ctype is ColumnType.DATE:
                return "temporal"
            return "nominal"
    if query.bin is not None and column_name.lower() == query.bin.column.column.lower():
        return "temporal"
    return "nominal"


def _encoding_for(item: SelectItem, query: DVQuery, database: Optional[Database]) -> Encoding:
    if isinstance(item.expr, AggregateExpr):
        return Encoding(
            field=item.expr.argument.column,
            type="quantitative",
            aggregate=_AGGREGATE_MAP[item.expr.function.value],
        )
    return Encoding(field=item.expr.column, type=_field_type(item, query, database))


def compile_to_vegalite(query: DVQuery, database: Optional[Database] = None) -> VegaLiteSpec:
    """Compile ``query`` into a :class:`VegaLiteSpec` (without data values).

    When ``database`` is given, field types are inferred from the schema;
    otherwise nominal/quantitative defaults are used.
    """
    x_encoding = _encoding_for(query.x, query, database)
    y_encoding = _encoding_for(query.y, query, database)

    if query.bin is not None and query.bin.unit in _TIME_UNIT_MAP:
        if x_encoding.field.lower() == query.bin.column.column.lower():
            x_encoding.time_unit = _TIME_UNIT_MAP[query.bin.unit]
            x_encoding.type = "temporal"
    if query.bin is not None and query.bin.unit is BinUnit.INTERVAL:
        if x_encoding.field.lower() == query.bin.column.column.lower():
            x_encoding.bin = True
            x_encoding.type = "quantitative"

    if query.order_by is not None:
        direction = "ascending" if query.order_by.direction is SortDirection.ASC else "descending"
        order_expr = query.order_by.expr
        order_column = (
            order_expr.argument.column if isinstance(order_expr, AggregateExpr) else order_expr.column
        )
        if order_column.lower() == x_encoding.field.lower():
            x_encoding.sort = direction
        else:
            x_encoding.sort = f"-y" if direction == "descending" else "y"

    encoding: Dict[str, Encoding] = {}
    if query.chart_type is ChartType.PIE:
        encoding["theta"] = Encoding(
            field=y_encoding.field,
            type="quantitative",
            aggregate=y_encoding.aggregate,
        )
        encoding["color"] = Encoding(field=x_encoding.field, type="nominal")
    else:
        encoding["x"] = x_encoding
        encoding["y"] = y_encoding
        if query.chart_type.is_grouped:
            color_field = None
            if query.color is not None:
                color_field = query.color.column.column
            elif len(query.group_by) >= 2:
                color_field = query.group_by[-1].column
            elif query.group_by:
                color_field = query.group_by[0].column
            if color_field:
                encoding["color"] = Encoding(field=color_field, type="nominal")

    return VegaLiteSpec(
        mark=query.chart_type.mark,
        encoding=encoding,
        title=f"{query.chart_type.value.title()} chart of {query.table}",
    )
