"""Experiment harness: everything needed to regenerate the paper's tables and figures."""

from repro.experiments.workbench import Workbench, WorkbenchConfig

__all__ = ["Workbench", "WorkbenchConfig"]
