"""The experiment workbench shared by benchmarks, examples and EXPERIMENTS.md.

A :class:`Workbench` lazily builds the synthetic nvBench corpus, derives the
nvBench-Rob robustness suite, trains the baseline models on the training split
and prepares GRED — then evaluates any subset of models on any subset of the
variant test sets.  All randomness is seeded through the corpus configuration,
so two workbenches with the same configuration produce identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import time

from repro.core.ablation import build_ablation_variants, build_repair_variants
from repro.core.config import GREDConfig
from repro.core.pipeline import GRED
from repro.core.retriever import GREDRetriever
from repro.index import PARTITIONED, IndexConfig
from repro.evaluation.evaluator import EvaluationRun, ModelEvaluator
from repro.evaluation.metrics import EvaluationResult, execution_rate_uplift
from repro.models.base import TextToVisModel
from repro.models.rgvisnet import RGVisNetModel
from repro.models.seq2vis import Seq2VisModel
from repro.models.transformer_model import TransformerModel
from repro.nvbench.dataset import NVBenchDataset
from repro.nvbench.generator import CorpusConfig, NVBenchGenerator
from repro.robustness.variants import RobustnessSuite, RobustnessSuiteBuilder, VariantKind


@dataclass(frozen=True)
class WorkbenchConfig:
    """Scale, seeding and runtime knobs of a workbench run.

    ``scale=1.0`` reproduces the paper-scale corpus (~7.6k pairs, ~1.2k test
    pairs); benchmarks default to a smaller scale so a full table regenerates
    in seconds rather than minutes.

    Attributes:
        scale: fraction of the paper-scale corpus to generate.
        seed: corpus seed; all downstream randomness derives from it.
        evaluation_limit: cap on examples per evaluation run (``None`` = all).
        gred_top_k: retrieval ``top_k`` used by the prepared GRED pipeline.
        max_workers: worker threads for batched evaluation runs; ``1`` keeps
            the historical serial loop (results are identical either way —
            predictions are independent across examples).
        llm_cache: prepare GRED with ``use_llm_cache`` so repeated completion
            requests across variant test sets are served from memory.
        execution_backend: when set (``"columnar"``, ``"interpreter"`` or
            ``"sqlite"``), every evaluation also executes the predicted DVQs
            on that engine and reports
            :attr:`~repro.evaluation.evaluator.EvaluationRun.execution_rate`;
            ``None`` (default) skips the execution check, keeping runs
            identical to the historical behaviour.
        optimize_plans: run the plan optimizer when the columnar engine is
            used (prepared GRED pipelines and evaluation checks alike).  On
            by default; results are identical either way — this is the
            optimizer-ablation switch.
        execution_workers: thread-pool width of the columnar engine's
            parallel pipeline for the execution checks (``1`` = serial;
            results are identical for every width).
        execution_morsel_size: rows per morsel / join partition when
            ``execution_workers > 1`` (``None`` = the engine default).
        max_repair_rounds: prepare GRED with the execution-guided repair
            loop enabled for this many rounds (``0`` keeps the historical
            pipeline).  Uses ``execution_backend`` (falling back to the
            columnar engine) for the in-loop execution checks.
        index: retrieval-index configuration handed to the prepared GRED
            (see :class:`~repro.index.IndexConfig`) — backend selection,
            partitioning knobs and the optional library snapshot path.
    """

    scale: float = 0.15
    seed: int = 7
    evaluation_limit: Optional[int] = None
    gred_top_k: int = 10
    max_workers: int = 1
    llm_cache: bool = True
    execution_backend: Optional[str] = None
    optimize_plans: bool = True
    execution_workers: int = 1
    execution_morsel_size: Optional[int] = None
    max_repair_rounds: int = 0
    index: IndexConfig = field(default_factory=IndexConfig)


@dataclass
class Workbench:
    """Lazily-constructed experiment state.

    Corpus, robustness suite, trained baselines and the prepared GRED pipeline
    are each built once on first use and cached on the instance.  Every
    evaluation routes through :class:`~repro.evaluation.evaluator.ModelEvaluator`
    and therefore the :mod:`repro.runtime` batch engine — see
    :class:`WorkbenchConfig` for the ``max_workers`` / ``llm_cache`` knobs.
    """

    config: WorkbenchConfig = field(default_factory=WorkbenchConfig)
    _dataset: Optional[NVBenchDataset] = None
    _suite: Optional[RobustnessSuite] = None
    _baselines: Optional[Dict[str, TextToVisModel]] = None
    _gred: Optional[GRED] = None

    # -- construction ------------------------------------------------------------

    @property
    def dataset(self) -> NVBenchDataset:
        if self._dataset is None:
            generator = NVBenchGenerator(CorpusConfig(scale=self.config.scale, seed=self.config.seed))
            self._dataset = generator.generate()
        return self._dataset

    @property
    def suite(self) -> RobustnessSuite:
        if self._suite is None:
            self._suite = RobustnessSuiteBuilder().build(self.dataset)
        return self._suite

    def baselines(self) -> Dict[str, TextToVisModel]:
        """The three baseline models, trained on the training split."""
        if self._baselines is None:
            models: Dict[str, TextToVisModel] = {
                "Seq2Vis": Seq2VisModel(),
                "Transformer": TransformerModel(),
                "RGVisNet": RGVisNetModel(),
            }
            for model in models.values():
                model.fit(self.dataset.train, self.dataset.catalog)
            self._baselines = models
        return self._baselines

    def gred(self) -> GRED:
        """The full GRED pipeline, prepared on the training split.

        With ``config.llm_cache`` (default) the pipeline's chat model is
        wrapped in an :class:`~repro.runtime.cache.LLMCache`, so the four
        variant test sets — which repeat databases and many prompts — reuse
        completions instead of recomputing them.
        """
        if self._gred is None:
            model = GRED(self._gred_config())
            model.fit(self.dataset.train, self.dataset.catalog)
            self._gred = model
        return self._gred

    def _gred_config(self) -> GREDConfig:
        """The workbench's GRED configuration."""
        return GREDConfig(
            top_k=self.config.gred_top_k,
            use_llm_cache=self.config.llm_cache,
            max_repair_rounds=self.config.max_repair_rounds,
            execution_backend=self.config.execution_backend or "columnar",
            optimize_plans=self.config.optimize_plans,
            execution_workers=self.config.execution_workers,
            execution_morsel_size=self.config.execution_morsel_size,
            index=self.config.index,
        )

    def gred_ablations(self) -> Dict[str, GRED]:
        """The four ablation variants of Table 4, each prepared on the training split."""
        variants = build_ablation_variants(top_k=self.config.gred_top_k)
        for variant in variants.values():
            variant.fit(self.dataset.train, self.dataset.catalog)
        return variants

    def gred_repair_variants(
        self, max_repair_rounds: int = 2, use_debugger: bool = True
    ) -> Dict[str, GRED]:
        """The repair-loop ablation pair, each prepared on the training split.

        Delegates to :func:`~repro.core.ablation.build_repair_variants`: two
        otherwise-identical pipelines, repair loop off vs on, for measuring
        the execution-rate uplift of execution-guided repair.
        ``use_debugger=False`` studies the loop on the "w/o DBG" ablation,
        where execution failures are most frequent.
        """
        variants = build_repair_variants(
            top_k=self.config.gred_top_k,
            max_repair_rounds=max_repair_rounds,
            execution_backend=self.config.execution_backend or "columnar",
            optimize_plans=self.config.optimize_plans,
            use_debugger=use_debugger,
            use_llm_cache=self.config.llm_cache,
        )
        for variant in variants.values():
            variant.fit(self.dataset.train, self.dataset.catalog)
        return variants

    # -- retrieval-index study -----------------------------------------------------

    def index_ablation(
        self,
        num_partitions: int = 0,
        nprobe: int = 4,
        top_k: int = 5,
        query_limit: Optional[int] = 200,
    ) -> Dict[str, object]:
        """Exact vs partitioned retrieval on this corpus: recall and latency.

        Prepares two :class:`~repro.core.retriever.GREDRetriever` instances
        over the training split — one per backend — runs the test-split NLQs
        through both, and reports the partitioned backend's recall@``top_k``
        against the exact ground truth alongside both query latencies.  The
        recall/latency trade-off is controlled by ``nprobe`` (and
        ``num_partitions``; ``0`` = ``round(sqrt(n))``).
        """
        train = self.dataset.train
        queries = [example.nlq for example in self.dataset.test][:query_limit]
        exact = GREDRetriever(index_config=IndexConfig()).prepare(train)
        partitioned = GREDRetriever(
            index_config=IndexConfig(
                backend=PARTITIONED,
                num_partitions=num_partitions,
                nprobe=nprobe,
                search_workers=self.config.max_workers,
            )
        ).prepare(train)

        def timed_search(retriever: GREDRetriever):
            retriever.retrieve_by_nlq_many(queries[:1], top_k)  # embed / train once
            started = time.perf_counter()
            hits = retriever.retrieve_by_nlq_many(queries, top_k)
            return hits, time.perf_counter() - started

        exact_hits, exact_seconds = timed_search(exact)
        partitioned_hits, partitioned_seconds = timed_search(partitioned)
        overlaps = [
            len({hit.key for hit in truth} & {hit.key for hit in candidate}) / max(1, len(truth))
            for truth, candidate in zip(exact_hits, partitioned_hits)
        ]
        return {
            "library_size": len(train),
            "query_count": len(queries),
            "top_k": top_k,
            "nprobe": nprobe,
            "recall": sum(overlaps) / max(1, len(overlaps)),
            "exact_seconds": exact_seconds,
            "partitioned_seconds": partitioned_seconds,
            "speedup": exact_seconds / partitioned_seconds if partitioned_seconds else float("inf"),
        }

    # -- repair-loop study ---------------------------------------------------------

    def repair_uplift(
        self,
        kind: VariantKind = VariantKind.SCHEMA,
        max_repair_rounds: int = 2,
        use_debugger: bool = True,
    ) -> Dict[str, object]:
        """Execution-rate uplift of the repair loop on one variant test set.

        Evaluates the repair-off / repair-on pair of
        :meth:`gred_repair_variants` on the ``kind`` test set with execution
        checking enabled, and reports both execution rates, the absolute
        uplift and the run's
        :class:`~repro.evaluation.metrics.RepairSummary`.
        """
        variants = self.gred_repair_variants(
            max_repair_rounds=max_repair_rounds, use_debugger=use_debugger
        )
        backend = self.config.execution_backend or "columnar"
        evaluator = ModelEvaluator(
            limit=self.config.evaluation_limit,
            max_workers=self.config.max_workers,
            execution_backend=backend,
            optimize_plans=self.config.optimize_plans,
            execution_workers=self.config.execution_workers or None,
            execution_morsel_size=self.config.execution_morsel_size,
        )
        (baseline_name, baseline), (repaired_name, repaired) = variants.items()
        dataset = self.suite.variant(kind)
        baseline_run = evaluator.evaluate(baseline, dataset, model_name=baseline_name)
        repaired_run = evaluator.evaluate(repaired, dataset, model_name=repaired_name)
        return {
            "variant": kind.value,
            "execution_rate_without_repair": baseline_run.execution_rate,
            "execution_rate_with_repair": repaired_run.execution_rate,
            "uplift": execution_rate_uplift(
                baseline_run.execution_rate, repaired_run.execution_rate
            ),
            "repair_summary": repaired_run.repair_summary,
        }

    # -- evaluation -----------------------------------------------------------------

    def evaluate(self, model: TextToVisModel, dataset: NVBenchDataset,
                 model_name: Optional[str] = None) -> EvaluationRun:
        """Score ``model`` on ``dataset`` through the batched runtime.

        Uses ``config.max_workers`` evaluation workers; since every example is
        predicted independently, worker count changes wall-clock time only,
        never the resulting numbers.
        """
        evaluator = ModelEvaluator(
            limit=self.config.evaluation_limit,
            max_workers=self.config.max_workers,
            execution_backend=self.config.execution_backend,
            optimize_plans=self.config.optimize_plans,
            execution_workers=self.config.execution_workers or None,
            execution_morsel_size=self.config.execution_morsel_size,
        )
        return evaluator.evaluate(model, dataset, model_name=model_name)

    def evaluate_on_variant(self, model: TextToVisModel, kind: VariantKind,
                            model_name: Optional[str] = None) -> EvaluationRun:
        return self.evaluate(model, self.suite.variant(kind), model_name=model_name)

    def table_results(self, kind: VariantKind,
                      include_gred: bool = True) -> Dict[str, EvaluationResult]:
        """One of Tables 1-3: every model's accuracies on one variant test set."""
        results: Dict[str, EvaluationResult] = {}
        for name, model in self.baselines().items():
            results[name] = self.evaluate_on_variant(model, kind, model_name=name).result
        if include_gred:
            results["GRED (Ours)"] = self.evaluate_on_variant(self.gred(), kind, model_name="GRED").result
        return results

    def figure3_series(self, include_gred: bool = False) -> Dict[str, Dict[str, float]]:
        """Figure 3: overall accuracy of each model on nvBench vs nvBench-Rob."""
        series: Dict[str, Dict[str, float]] = {}
        kinds = [VariantKind.ORIGINAL, VariantKind.BOTH]
        models: Dict[str, TextToVisModel] = dict(self.baselines())
        if include_gred:
            models["GRED (Ours)"] = self.gred()
        for name, model in models.items():
            series[name] = {
                kind.value: self.evaluate_on_variant(model, kind, model_name=name).result.overall_accuracy
                for kind in kinds
            }
        return series

    def ablation_table(self, kinds: Sequence[VariantKind] = (
        VariantKind.NLQ, VariantKind.SCHEMA, VariantKind.BOTH,
    )) -> Dict[str, Dict[str, float]]:
        """Table 4: overall accuracy of each GRED ablation on the three variant sets."""
        table: Dict[str, Dict[str, float]] = {}
        for name, variant in self.gred_ablations().items():
            table[name] = {
                kind.value: self.evaluate_on_variant(variant, kind, model_name=name).result.overall_accuracy
                for kind in kinds
            }
        return table

    def case_study(self, index: int = 0) -> Dict[str, str]:
        """Table 5: the DVQ every model produces for one dual-variant example."""
        example = self.suite.dual_variant.examples[index]
        database = self.suite.catalog.get(example.db_id)
        predictions: Dict[str, str] = {"NLQ": example.nlq, "Target": example.dvq}
        for name, model in self.baselines().items():
            predictions[name] = model.predict(example.nlq, database)
        predictions["GRED"] = self.gred().predict(example.nlq, database)
        return predictions
