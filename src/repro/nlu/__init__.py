"""Shared natural-language interpretation utilities.

Both the baseline text-to-vis models and the simulated LLM need to read chart
intents, aggregations, orderings, binning instructions and filter conditions
out of a question.  They differ in *how they ground* phrases to schema columns
(lexical vs semantic linking) and in what structural priors they use, which is
exactly the axis the paper studies.
"""

from repro.nlu.question import QuestionSignals, QuestionInterpreter
from repro.nlu.conditions import ExtractedCondition, ConditionExtractor

__all__ = [
    "ConditionExtractor",
    "ExtractedCondition",
    "QuestionInterpreter",
    "QuestionSignals",
]
