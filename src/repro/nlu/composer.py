"""Composition of a DVQ from question signals, schema links and a structure prior.

The composer is shared by the baseline models and by the simulated LLM's
generation behaviour.  Callers control the two ingredients the paper identifies
as the robustness bottleneck:

* the :class:`~repro.linking.SchemaLinker` used to ground phrases (lexical for
  the baselines, semantic for GRED), and
* the fallback vocabulary used when grounding fails (training-set column names
  for the baselines — reproducing their "memorised schema" failure mode — or a
  retrieved template's columns for GRED, which the debugger later repairs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.database.schema import DatabaseSchema
from repro.dvq.nodes import (
    AggregateExpr,
    AggregateFunction,
    BinClause,
    BinUnit,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    OrderClause,
    SelectItem,
    SortDirection,
    WhereClause,
)
from repro.linking.linker import SchemaLinker
from repro.nlu.conditions import ConditionExtractor, ExtractedCondition
from repro.nlu.question import QuestionInterpreter, QuestionSignals

_X_MARKERS = ["for each", "for every", "per", "over the", "over", "by"]
_AGG_MARKERS = [
    "average of", "mean", "sum of", "total of", "combined", "number of",
    "how many", "tally of", "minimum", "maximum", "smallest", "largest",
    "lowest", "highest", "average", "sum",
]
_ORDER_MARKERS = ["sort by", "arrange by", "organize by", "order by", "rank by"]
_GROUP_MARKERS = [
    "group by attribute", "grouped by", "broken down by",
    "aggregated for every", "aggregated for each",
]
_COLOR_MARKERS = ["colored by", "coloured by"]
_BIN_MARKERS = ["bin", "bucket", "split"]


@dataclass
class StructurePrior:
    """Fallback structure used when the question under-specifies the query."""

    chart_type: Optional[ChartType] = None
    aggregate: Optional[AggregateFunction] = None
    table: Optional[str] = None
    x_column: Optional[str] = None
    y_column: Optional[str] = None
    group_columns: Sequence[str] = ()
    order_direction: Optional[SortDirection] = None
    bin_unit: Optional[BinUnit] = None

    @classmethod
    def from_query(cls, query: DVQuery) -> "StructurePrior":
        """Extract a prior from an existing DVQ (a retrieved prototype)."""
        aggregate = None
        y_column = None
        if isinstance(query.y.expr, AggregateExpr):
            aggregate = query.y.expr.function
            y_column = query.y.expr.argument.column
        else:
            y_column = query.y.expr.column
        return cls(
            chart_type=query.chart_type,
            aggregate=aggregate,
            table=query.table,
            x_column=query.x.column.column if query.x.column.column != "*" else None,
            y_column=y_column,
            group_columns=[column.column for column in query.group_by],
            order_direction=query.order_by.direction if query.order_by else None,
            bin_unit=query.bin.unit if query.bin else None,
        )


class QueryComposer:
    """Builds a DVQ from a question, a schema, and an optional structure prior."""

    def __init__(
        self,
        linker: SchemaLinker,
        interpreter: Optional[QuestionInterpreter] = None,
        extractor: Optional[ConditionExtractor] = None,
        allowed_columns: Optional[Sequence[str]] = None,
    ):
        self.linker = linker
        self.interpreter = interpreter or QuestionInterpreter()
        self.extractor = extractor or ConditionExtractor()
        self.allowed_columns = (
            {column.lower() for column in allowed_columns} if allowed_columns else None
        )

    # -- phrase extraction --------------------------------------------------

    def _phrase_after(self, text: str, marker: str, max_words: int = 4) -> Optional[str]:
        index = text.find(marker)
        if index < 0:
            return None
        tail = text[index + len(marker):]
        tail = re.split(
            r"[,.!?]| in | using | from | with | by | over | for each | for every | per | — ",
            tail,
        )[0]
        words = tail.strip().split()
        filtered = [word for word in words if word not in ("the", "a", "an", "of", "attribute")]
        return " ".join(filtered[:max_words]) if filtered else None

    def _link(self, phrase: Optional[str], schema: DatabaseSchema,
              preferred_table: Optional[str], fallback: Optional[str]) -> Optional[str]:
        """Ground a phrase to a column name, honouring the allowed vocabulary."""
        if phrase:
            candidate = self.linker.best_column(phrase, schema, preferred_table=preferred_table)
            if candidate is not None and self._allowed(candidate.column):
                return candidate.column
        if fallback:
            return fallback
        if phrase:
            candidate = self.linker.best_column(phrase, schema, preferred_table=preferred_table)
            if candidate is not None:
                return candidate.column
        return None

    def _allowed(self, column: str) -> bool:
        if self.allowed_columns is None:
            return True
        return column.lower() in self.allowed_columns

    # -- composition ----------------------------------------------------------

    def compose(
        self,
        question: str,
        schema: DatabaseSchema,
        prior: Optional[StructurePrior] = None,
        signals: Optional[QuestionSignals] = None,
    ) -> DVQuery:
        """Compose a DVQ for ``question`` against ``schema``."""
        prior = prior or StructurePrior()
        text = " ".join(question.lower().split())
        signals = signals or self.interpreter.interpret(question)

        chart_type = signals.chart_type or prior.chart_type or ChartType.BAR
        aggregate = signals.aggregate or prior.aggregate

        table = self._choose_table(text, schema, prior)
        x_column = self._choose_x(text, schema, table, prior)
        y_column, aggregate = self._choose_y(text, schema, table, prior, aggregate, x_column)
        if x_column is None:
            x_column = prior.x_column or (schema.table(table).columns[0].name if schema.has_table(table) else "unknown")
        if y_column is None:
            y_column = prior.y_column or x_column

        select: List[SelectItem] = [SelectItem(ColumnRef(column=x_column))]
        if aggregate is not None:
            select.append(
                SelectItem(AggregateExpr(function=aggregate, argument=ColumnRef(column=y_column)))
            )
        else:
            select.append(SelectItem(ColumnRef(column=y_column)))

        group_columns = self._choose_groups(text, schema, table, prior, chart_type, x_column,
                                            aggregate)
        color_column = self._choose_color(text, schema, table)
        if color_column and chart_type.is_grouped:
            select.append(SelectItem(ColumnRef(column=color_column)))
            if color_column.lower() not in [column.lower() for column in group_columns]:
                group_columns.append(color_column)

        where = self._choose_where(question, schema, table, prior)
        order = self._choose_order(text, schema, table, signals, prior, x_column, y_column, aggregate)
        bin_clause = self._choose_bin(text, signals, prior, x_column)
        if bin_clause is not None:
            group_columns = [column for column in group_columns if column.lower() != x_column.lower()]

        return DVQuery(
            chart_type=chart_type,
            select=tuple(select),
            table=table,
            where=where,
            group_by=tuple(ColumnRef(column=column) for column in group_columns),
            order_by=order,
            bin=bin_clause,
        )

    # -- slot choosers ----------------------------------------------------------

    def _choose_table(self, text: str, schema: DatabaseSchema, prior: StructurePrior) -> str:
        if prior.table and schema.has_table(prior.table):
            return schema.table(prior.table).name
        for marker in ("from table ", "based on the ", "using the records of the ", "records of the "):
            phrase = self._phrase_after(text, marker, max_words=2)
            if phrase:
                for table in schema.tables:
                    if self.linker.score_phrase(phrase.split(), table.name) >= 0.5:
                        return table.name
        # the table whose columns best match the question
        best_table = None
        best_score = -1.0
        for table in schema.tables:
            score = 0.0
            for candidate in self.linker.question_links(text, schema, top_k=6):
                if candidate.table.lower() == table.name.lower():
                    score += candidate.score
            if score > best_score:
                best_score = score
                best_table = table.name
        if best_table is not None:
            return best_table
        return prior.table or schema.tables[0].name

    def _choose_x(self, text: str, schema: DatabaseSchema, table: str,
                  prior: StructurePrior) -> Optional[str]:
        for marker in _X_MARKERS:
            phrase = self._phrase_after(text, f"{marker} ", max_words=3)
            if phrase:
                column = self._link(phrase, schema, table, None)
                if column:
                    return column
        return self._link(None, schema, table, prior.x_column)

    def _choose_y(self, text: str, schema: DatabaseSchema, table: str, prior: StructurePrior,
                  aggregate: Optional[AggregateFunction], x_column: Optional[str]):
        phrase = None
        for marker in _AGG_MARKERS:
            phrase = self._phrase_after(text, f"{marker} ", max_words=3)
            if phrase:
                break
        column = self._link(phrase, schema, table, prior.y_column)
        if aggregate is AggregateFunction.COUNT and column is None:
            column = x_column
        if column is None and phrase is None:
            # non-aggregated y (scatter): second best linked column
            links = self.linker.question_links(text, schema, top_k=4)
            for candidate in links:
                if x_column is None or candidate.column.lower() != x_column.lower():
                    if self._allowed(candidate.column):
                        column = candidate.column
                        break
        return column, aggregate

    def _choose_groups(self, text: str, schema: DatabaseSchema, table: str, prior: StructurePrior,
                       chart_type: ChartType, x_column: str,
                       aggregate: Optional[AggregateFunction]) -> List[str]:
        groups: List[str] = []
        for marker in _GROUP_MARKERS:
            phrase = self._phrase_after(text, f"{marker} ", max_words=4)
            if not phrase:
                continue
            for part in re.split(r"\s+and\s+", phrase):
                column = self._link(part.strip(), schema, table, None)
                if column and column.lower() not in [existing.lower() for existing in groups]:
                    groups.append(column)
            break
        if not groups and (aggregate is not None):
            if prior.group_columns:
                groups = [
                    self._link(column, schema, table, column) or column
                    for column in prior.group_columns
                ]
            elif aggregate is not None and x_column:
                groups = [x_column]
        if aggregate is not None and x_column and not groups:
            groups = [x_column]
        return groups

    def _choose_color(self, text: str, schema: DatabaseSchema, table: str) -> Optional[str]:
        for marker in _COLOR_MARKERS:
            phrase = self._phrase_after(text, f"{marker} ", max_words=3)
            if phrase:
                return self._link(phrase, schema, table, None)
        return None

    def _choose_where(self, question: str, schema: DatabaseSchema, table: str,
                      prior: StructurePrior) -> Optional[WhereClause]:
        extracted = self.extractor.extract(question)
        if not extracted:
            return None
        conditions: List[Condition] = []
        connectors: List[str] = []
        for index, item in enumerate(extracted):
            column = self._link(item.column_phrase, schema, table, None)
            if column is None:
                column = item.column_phrase.replace(" ", "_")
            conditions.append(self._to_condition(item, column))
            if index > 0:
                connectors.append(item.connector)
        return WhereClause(conditions=tuple(conditions), connectors=tuple(connectors))

    def _to_condition(self, item: ExtractedCondition, column: str) -> Condition:
        operator = item.operator
        negated = False
        if operator == "IS NOT NULL":
            operator = "IS NULL"
            negated = True
        value = self._coerce_value(item.value)
        value2 = self._coerce_value(item.value2)
        return Condition(
            column=ColumnRef(column=column),
            operator=operator,
            value=value,
            value2=value2,
            negated=negated,
        )

    @staticmethod
    def _coerce_value(value: Optional[str]):
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return value.strip("'\"")

    def _choose_order(self, text: str, schema: DatabaseSchema, table: str,
                      signals: QuestionSignals, prior: StructurePrior,
                      x_column: str, y_column: str,
                      aggregate: Optional[AggregateFunction]) -> Optional[OrderClause]:
        direction = signals.order_direction
        if direction is None and signals.has_order:
            direction = prior.order_direction
        if direction is None and not signals.has_order:
            return None
        direction = direction or SortDirection.ASC
        target_phrase = None
        for marker in _ORDER_MARKERS:
            target_phrase = self._phrase_after(text, f"{marker} ", max_words=4)
            if target_phrase:
                break
        target_is_aggregate = False
        if target_phrase:
            if any(cue in target_phrase for cue in ("average", "avg", "sum", "count", "number",
                                                    "minimum", "maximum", "min", "max",
                                                    "mean", "total", "tally", "combined",
                                                    "smallest", "largest", "lowest", "highest")):
                target_is_aggregate = True
            column = self._link(target_phrase, schema, table, None)
        else:
            column = None
        if column is None:
            column = x_column
        if target_is_aggregate and aggregate is not None:
            expr = AggregateExpr(function=aggregate, argument=ColumnRef(column=y_column))
            return OrderClause(expr=expr, direction=direction)
        return OrderClause(expr=ColumnRef(column=column), direction=direction)

    def _choose_bin(self, text: str, signals: QuestionSignals, prior: StructurePrior,
                    x_column: str) -> Optional[BinClause]:
        unit = signals.bin_unit or prior.bin_unit
        if unit is None:
            return None
        if signals.bin_unit is None and prior.bin_unit is not None:
            # only honour the prior's bin when the question actually asks for binning
            if not any(marker in text for marker in _BIN_MARKERS):
                return None
        return BinClause(column=ColumnRef(column=x_column), unit=unit)
