"""Extraction of filter conditions from questions.

nvBench questions spell out filters in a small number of surface patterns
("whose salary is greater than 120", "price is between 10 and 40", "status
equals Open").  The extractor recovers ``(column phrase, operator, value)``
triples; grounding the column phrase onto an actual schema column is left to
the caller, because that grounding step (lexical vs semantic) is precisely
where robust and non-robust systems diverge.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

#: Marker phrases that introduce the filter part of a question.
_FILTER_INTROS = [
    "for those records whose",
    "considering only entries where",
    "restricted to cases in which",
    "for records where",
    "whose",
    "where",
]

_CONNECTOR_SPLIT = re.compile(r"\s+(and|or)\s+")

_PATTERNS = [
    ("BETWEEN", re.compile(r"^(?P<col>.+?)\s+is\s+between\s+(?P<val>\S+)\s+and\s+(?P<val2>\S+)$")),
    ("!=", re.compile(r"^(?P<col>.+?)\s+does\s+not\s+equal\s+(?P<val>.+)$")),
    ("=", re.compile(r"^(?P<col>.+?)\s+equals\s+(?P<val>.+)$")),
    ("=", re.compile(r"^(?P<col>.+?)\s+is\s+equal\s+to\s+(?P<val>.+)$")),
    (">", re.compile(r"^(?P<col>.+?)\s+is\s+(greater|more|bigger|larger)\s+than\s+(?P<val>\S+)$")),
    (">=", re.compile(r"^(?P<col>.+?)\s+is\s+at\s+least\s+(?P<val>\S+)$")),
    ("<", re.compile(r"^(?P<col>.+?)\s+is\s+(less|smaller|lower)\s+than\s+(?P<val>\S+)$")),
    ("<=", re.compile(r"^(?P<col>.+?)\s+is\s+at\s+most\s+(?P<val>\S+)$")),
    ("LIKE", re.compile(r"^(?P<col>.+?)\s+is\s+like\s+(?P<val>\S+)$")),
    ("IS NOT NULL", re.compile(r"^(?P<col>.+?)\s+is\s+not\s+null$")),
    ("IS NULL", re.compile(r"^(?P<col>.+?)\s+is\s+null$")),
]


@dataclass
class ExtractedCondition:
    """A condition read from the question, not yet grounded to a schema."""

    column_phrase: str
    operator: str
    value: Optional[str] = None
    value2: Optional[str] = None
    connector: str = "AND"

    def numeric_value(self) -> Optional[float]:
        try:
            return float(self.value) if self.value is not None else None
        except ValueError:
            return None


class ConditionExtractor:
    """Finds the filter clause of a question and parses its conditions."""

    def filter_segment(self, question: str) -> Optional[str]:
        """The substring of the question that describes filters, if any."""
        text = " ".join(question.lower().split())
        for intro in _FILTER_INTROS:
            index = text.find(intro)
            if index >= 0:
                segment = text[index + len(intro):]
                # cut at the next clause marker
                for stop in (", and group", ", and sort", ", and arrange",
                             ", and bin", ", and bucket", ", and split",
                             ", and organize", ", and broken", ", and aggregated",
                             ", colored by", ", coloured by"):
                    stop_index = segment.find(stop)
                    if stop_index >= 0:
                        segment = segment[:stop_index]
                return segment.strip().strip(".!?—- ")
        return None

    def extract(self, question: str) -> List[ExtractedCondition]:
        """All conditions found in the question, with their connectors."""
        segment = self.filter_segment(question)
        if not segment:
            return []
        # protect the AND that belongs to BETWEEN before splitting on connectors
        protected = re.sub(
            r"between\s+(\S+)\s+and\s+(\S+)", r"between \1 @@AND@@ \2", segment
        )
        conditions: List[ExtractedCondition] = []
        connector = "AND"
        for piece in _split_with_connectors(protected):
            if piece.strip() in ("and", "or"):
                connector = piece.strip().upper()
                continue
            parsed = self._parse_piece(piece.replace("@@AND@@", "and").strip().strip(","))
            if parsed is None:
                continue
            parsed.connector = connector
            conditions.append(parsed)
            connector = "AND"
        return conditions

    def _parse_piece(self, piece: str) -> Optional[ExtractedCondition]:
        piece = piece.strip()
        if not piece:
            return None
        for operator, pattern in _PATTERNS:
            match = pattern.match(piece)
            if match is None:
                continue
            groups = match.groupdict()
            value = groups.get("val")
            if value is not None:
                value = value.strip().strip(".,")
            value2 = groups.get("val2")
            if value2 is not None:
                value2 = value2.strip().strip(".,")
            column_phrase = groups["col"].strip()
            column_phrase = re.sub(r"^(the|a|an)\s+", "", column_phrase)
            return ExtractedCondition(
                column_phrase=column_phrase, operator=operator, value=value, value2=value2
            )
        return None


def _split_with_connectors(segment: str) -> List[str]:
    """Split a filter segment keeping the and/or connectors as separate items."""
    return [piece for piece in _CONNECTOR_SPLIT.split(segment) if piece.strip()]
