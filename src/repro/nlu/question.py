"""Keyword-level interpretation of text-to-vis questions."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.dvq.nodes import AggregateFunction, BinUnit, ChartType, SortDirection

#: Chart-type cue words.  The lists include both the explicit nvBench phrasings
#: and the natural paraphrases nvBench-Rob introduces (histogram, trend curve,
#: dot plot, ...), mirroring what a large language model knows about chart
#: vocabulary.
_CHART_CUES = {
    ChartType.STACKED_BAR: ["stacked bar", "stacked column", "layered column"],
    ChartType.GROUPING_LINE: ["grouping line", "multi-line", "multi line", "multi-series line"],
    ChartType.GROUPING_SCATTER: [
        "grouping scatter", "grouped scatter", "colour-coded dot", "color-coded dot",
    ],
    ChartType.PIE: ["pie", "circular chart", "donut", "proportion wheel", "circular split"],
    ChartType.LINE: ["line chart", "line graph", "trend", "time-series", "curve", "over time"],
    ChartType.SCATTER: ["scatter", "dot plot", "point cloud", "dot diagram"],
    ChartType.BAR: ["bar chart", "bar graph", "histogram", "column graph", "column diagram", "bars"],
}

_AGGREGATE_CUES = {
    AggregateFunction.AVG: ["average", "mean", "typical value"],
    AggregateFunction.SUM: ["sum", "total of", "combined", "total"],
    AggregateFunction.COUNT: ["number of", "how many", "count", "tally"],
    AggregateFunction.MIN: ["minimum", "smallest", "lowest"],
    AggregateFunction.MAX: ["maximum", "largest", "highest"],
}

_ASC_CUES = [
    "asc", "ascending", "low to high", "smallest upwards", "upwards",
    "smallest to largest", "increasing",
]
_DESC_CUES = [
    "desc", "descending", "high to low", "largest downwards", "downwards",
    "largest to smallest", "decreasing",
]

_BIN_CUES = {
    BinUnit.YEAR: ["by year", "per year", "yearly", "each year", "by yr"],
    BinUnit.MONTH: ["by month", "per month", "monthly"],
    BinUnit.WEEKDAY: ["by weekday", "by day of the week", "per weekday"],
    BinUnit.INTERVAL: ["into intervals", "into buckets", "into bins"],
}

_GROUP_CUES = ["group by", "grouped by", "broken down by", "aggregated for every",
               "aggregated for each", "for each", "for every", "per "]

_ORDER_CUES = ["sort", "order", "arrange", "organize", "rank", "list in", "starting with"]


@dataclass
class QuestionSignals:
    """The chart-level signals read from one question."""

    chart_type: Optional[ChartType]
    aggregate: Optional[AggregateFunction]
    has_order: bool
    order_direction: Optional[SortDirection]
    has_group: bool
    bin_unit: Optional[BinUnit]
    mentions_count_of_rows: bool


class QuestionInterpreter:
    """Reads :class:`QuestionSignals` from a question string."""

    def interpret(self, question: str) -> QuestionSignals:
        text = " ".join(question.lower().split())
        return QuestionSignals(
            chart_type=self.chart_type(text),
            aggregate=self.aggregate(text),
            has_order=self.has_order(text),
            order_direction=self.order_direction(text),
            has_group=self.has_group(text),
            bin_unit=self.bin_unit(text),
            mentions_count_of_rows=bool(re.search(r"how many|number of", text)),
        )

    def chart_type(self, text: str) -> Optional[ChartType]:
        text = text.lower()
        for chart_type, cues in _CHART_CUES.items():
            if any(cue in text for cue in cues):
                return chart_type
        return None

    def aggregate(self, text: str) -> Optional[AggregateFunction]:
        text = text.lower()
        best: Optional[AggregateFunction] = None
        best_position = len(text) + 1
        for function, cues in _AGGREGATE_CUES.items():
            for cue in cues:
                position = text.find(cue)
                if position >= 0 and position < best_position:
                    best = function
                    best_position = position
        return best

    def has_order(self, text: str) -> bool:
        text = text.lower()
        if any(cue in text for cue in _ASC_CUES + _DESC_CUES):
            return True
        return any(cue in text for cue in _ORDER_CUES)

    def order_direction(self, text: str) -> Optional[SortDirection]:
        text = text.lower()
        asc_position = min((text.find(cue) for cue in _ASC_CUES if cue in text), default=-1)
        desc_position = min((text.find(cue) for cue in _DESC_CUES if cue in text), default=-1)
        if asc_position < 0 and desc_position < 0:
            return None
        if desc_position < 0:
            return SortDirection.ASC
        if asc_position < 0:
            return SortDirection.DESC
        return SortDirection.ASC if asc_position < desc_position else SortDirection.DESC

    def has_group(self, text: str) -> bool:
        text = text.lower()
        return any(cue in text for cue in _GROUP_CUES)

    def bin_unit(self, text: str) -> Optional[BinUnit]:
        text = text.lower()
        if not any(cue in text for cue in ("bin", "bucket", "split", "binned")):
            # temporal grouping phrases also imply binning when a date is involved
            pass
        for unit, cues in _BIN_CUES.items():
            for cue in cues:
                if f"bin {cue}" in text or f"bucket {cue}" in text or f"split {cue}" in text:
                    return unit
                if cue in text and any(word in text for word in ("bin", "bucket", "split")):
                    return unit
        return None
