"""Assembly of the three nvBench-Rob test sets from the original test split."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.database.catalog import Catalog
from repro.nvbench.dataset import NVBenchDataset
from repro.nvbench.example import NVBenchExample
from repro.robustness.nlq_rewriter import NLQRewriter
from repro.robustness.schema_renamer import SchemaRenamePlan, SchemaRenamer
from repro.robustness.synonyms import SynonymLexicon, default_lexicon


class VariantKind(enum.Enum):
    """The three robustness test sets plus the unperturbed original."""

    ORIGINAL = "nvBench"
    NLQ = "nvBench-Rob_nlq"
    SCHEMA = "nvBench-Rob_schema"
    BOTH = "nvBench-Rob_(nlq,schema)"


@dataclass
class RobustnessSuite:
    """The full nvBench-Rob evaluation suite.

    Attributes:
        original: the unperturbed test split (gold nvBench behaviour).
        nlq_variant: paraphrased NLQs over the original databases.
        schema_variant: original NLQs over renamed databases; gold DVQs follow
            the renamed schema.
        dual_variant: both perturbations applied together.
        catalog: catalog containing both original and renamed databases.
        rename_plans: per-database rename plans (for analysis and debugging).
    """

    original: NVBenchDataset
    nlq_variant: NVBenchDataset
    schema_variant: NVBenchDataset
    dual_variant: NVBenchDataset
    catalog: Catalog
    rename_plans: Dict[str, SchemaRenamePlan] = field(default_factory=dict)

    def variant(self, kind: VariantKind) -> NVBenchDataset:
        mapping = {
            VariantKind.ORIGINAL: self.original,
            VariantKind.NLQ: self.nlq_variant,
            VariantKind.SCHEMA: self.schema_variant,
            VariantKind.BOTH: self.dual_variant,
        }
        return mapping[kind]

    def all_variants(self) -> Dict[VariantKind, NVBenchDataset]:
        return {kind: self.variant(kind) for kind in VariantKind}


class RobustnessSuiteBuilder:
    """Builds a :class:`RobustnessSuite` from a generated nvBench dataset."""

    def __init__(
        self,
        lexicon: Optional[SynonymLexicon] = None,
        nlq_rewriter: Optional[NLQRewriter] = None,
        schema_renamer: Optional[SchemaRenamer] = None,
    ):
        self.lexicon = lexicon or default_lexicon()
        self.nlq_rewriter = nlq_rewriter or NLQRewriter(lexicon=self.lexicon)
        self.schema_renamer = schema_renamer or SchemaRenamer(lexicon=self.lexicon)

    def build(self, dataset: NVBenchDataset, examples: Optional[List[NVBenchExample]] = None) -> RobustnessSuite:
        """Perturb ``examples`` (default: the dataset's test split)."""
        if dataset.catalog is None:
            raise ValueError("The dataset must carry its database catalog")
        examples = list(examples if examples is not None else dataset.test)

        # 1. renamed twins of every database used by the evaluated examples
        rename_plans: Dict[str, SchemaRenamePlan] = {}
        combined_catalog = Catalog(list(dataset.catalog))
        for db_id in sorted({example.db_id for example in examples}):
            database = dataset.catalog.get(db_id)
            renamed, plan = self.schema_renamer.apply_to_database(database)
            rename_plans[db_id] = plan
            if renamed.name not in combined_catalog:
                combined_catalog.add(renamed)

        # 2. the four example lists
        original = [example.with_variant(meta_update={"variant": VariantKind.ORIGINAL.value})
                    for example in examples]
        nlq_variant: List[NVBenchExample] = []
        schema_variant: List[NVBenchExample] = []
        dual_variant: List[NVBenchExample] = []
        for example in examples:
            rewrite = self.nlq_rewriter.rewrite(example.nlq, key=example.example_id)
            plan = rename_plans[example.db_id]
            renamed_dvq = self.schema_renamer.rewrite_dvq(example.dvq, plan)
            nlq_variant.append(
                example.with_variant(
                    nlq=rewrite.rewritten,
                    meta_update={
                        "variant": VariantKind.NLQ.value,
                        "replaced_words": ",".join(rewrite.replaced_words),
                    },
                )
            )
            schema_variant.append(
                example.with_variant(
                    dvq=renamed_dvq,
                    db_id=plan.new_db_id,
                    meta_update={"variant": VariantKind.SCHEMA.value},
                )
            )
            dual_variant.append(
                example.with_variant(
                    nlq=rewrite.rewritten,
                    dvq=renamed_dvq,
                    db_id=plan.new_db_id,
                    meta_update={"variant": VariantKind.BOTH.value},
                )
            )

        def as_dataset(items: List[NVBenchExample], kind: VariantKind) -> NVBenchDataset:
            return NVBenchDataset(items, catalog=combined_catalog, name=kind.value)

        return RobustnessSuite(
            original=as_dataset(original, VariantKind.ORIGINAL),
            nlq_variant=as_dataset(nlq_variant, VariantKind.NLQ),
            schema_variant=as_dataset(schema_variant, VariantKind.SCHEMA),
            dual_variant=as_dataset(dual_variant, VariantKind.BOTH),
            catalog=combined_catalog,
            rename_plans=rename_plans,
        )
