"""Construction of the nvBench-Rob robustness benchmark.

The paper perturbs the nvBench development split along two axes and releases
three test sets:

* ``nvBench-Rob_nlq`` — questions are paraphrased so they no longer explicitly
  mention column names or DVQ keywords;
* ``nvBench-Rob_schema`` — table/column names are replaced with synonyms and
  different naming conventions (gold DVQs follow the new names);
* ``nvBench-Rob_(nlq,schema)`` — both perturbations at once.

The paper builds the dataset with ChatGPT plus manual correction; offline we
substitute a curated synonym lexicon, deterministic naming-convention
rewriters and paraphrase templates (see DESIGN.md for the substitution
rationale).
"""

from repro.robustness.synonyms import SynonymLexicon, default_lexicon
from repro.robustness.nlq_rewriter import NLQRewriter
from repro.robustness.schema_renamer import SchemaRenamer, SchemaRenamePlan
from repro.robustness.variants import RobustnessSuite, RobustnessSuiteBuilder, VariantKind

__all__ = [
    "NLQRewriter",
    "RobustnessSuite",
    "RobustnessSuiteBuilder",
    "SchemaRenamePlan",
    "SchemaRenamer",
    "SynonymLexicon",
    "VariantKind",
    "default_lexicon",
]
