"""NLQ reconstruction: lexical and phrasal paraphrasing of questions.

Reproduces Section 2.2 of the paper ("NLQ Reconstruction"): nouns that echo
schema identifiers are replaced with synonyms, DVQ keywords are removed or
re-phrased, and whole sentences are restructured to simulate users who do not
know the database schema or the DVQ syntax.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import List, Optional

from repro.embeddings.tokenization import split_identifier
from repro.robustness.synonyms import SynonymLexicon, default_lexicon

_IDENTIFIER_PATTERN = re.compile(r"[A-Za-z][A-Za-z0-9_]*")


@dataclass
class RewriteResult:
    """The rewritten NLQ plus a log of the edits that were applied."""

    original: str
    rewritten: str
    replaced_words: List[str]
    replaced_phrases: List[str]
    scaffold: Optional[str]


class NLQRewriter:
    """Applies lexical and phrasal perturbations to questions."""

    def __init__(
        self,
        lexicon: Optional[SynonymLexicon] = None,
        seed: int = 29,
        word_probability: float = 0.55,
        phrase_probability: float = 0.6,
        scaffold_probability: float = 0.5,
    ):
        self.lexicon = lexicon or default_lexicon()
        self.seed = seed
        self.word_probability = word_probability
        self.phrase_probability = phrase_probability
        self.scaffold_probability = scaffold_probability

    def rewrite(self, nlq: str, key: str = "") -> RewriteResult:
        """Rewrite one question; ``key`` seeds the per-example randomness."""
        rng = random.Random(f"{self.seed}:{key}:{nlq}")
        text, replaced_phrases = self._rewrite_phrases(nlq, rng)
        text, replaced_words = self._rewrite_words(text, rng)
        text, scaffold = self._restructure(text, rng)
        return RewriteResult(
            original=nlq,
            rewritten=text,
            replaced_words=replaced_words,
            replaced_phrases=replaced_phrases,
            scaffold=scaffold,
        )

    # -- phrase level --------------------------------------------------------

    def _rewrite_phrases(self, text: str, rng: random.Random):
        replaced: List[str] = []
        lowered_phrases = sorted(
            self.lexicon.phrase_paraphrases, key=len, reverse=True
        )
        for phrase in lowered_phrases:
            pattern = re.compile(r"\b" + re.escape(phrase) + r"\b", re.IGNORECASE)
            if pattern.search(text) and rng.random() < self.phrase_probability:
                replacement = rng.choice(self.lexicon.phrase_paraphrases[phrase])
                text = pattern.sub(replacement, text, count=1)
                replaced.append(phrase)
        return text, replaced

    # -- word level ------------------------------------------------------------

    def _rewrite_words(self, text: str, rng: random.Random):
        replaced: List[str] = []

        def substitute(match: re.Match) -> str:
            token = match.group(0)
            parts = split_identifier(token)
            if len(parts) > 1 or "_" in token:
                # a schema identifier copied verbatim into the question:
                # turn it into a natural phrase of synonyms ("HIRE_DATE" ->
                # "day of recruitment")
                if rng.random() >= self.word_probability:
                    return token
                new_parts = []
                for part in parts:
                    synonym = self.lexicon.pick_synonym(part.lower(), rng)
                    new_parts.append(synonym.replace("_", " ") if synonym else part.lower())
                replaced.append(token)
                if len(new_parts) >= 2 and rng.random() < 0.5:
                    return f"{new_parts[-1]} of {' '.join(new_parts[:-1])}"
                return " ".join(new_parts)
            lower = token.lower()
            if lower in self.lexicon.word_synonyms and rng.random() < self.word_probability:
                synonym = self.lexicon.pick_synonym(lower, rng)
                if synonym:
                    replaced.append(token)
                    return synonym.replace("_", " ")
            return token

        text = _IDENTIFIER_PATTERN.sub(substitute, text)
        return text, replaced

    # -- sentence level ----------------------------------------------------------

    def _restructure(self, text: str, rng: random.Random):
        if rng.random() >= self.scaffold_probability:
            return text, None
        scaffold = rng.choice(self.lexicon.sentence_scaffolds)
        body = text.strip()
        if body.endswith("."):
            body = body[:-1]
        body = body[0].lower() + body[1:] if body else body
        rendered = scaffold.format(body=body)
        if not rendered.endswith((".", "!", "?")):
            rendered += "."
        return rendered, scaffold
