"""Schema synonymous substitution: rename tables and columns with synonyms.

Reproduces Section 2.2 of the paper ("Schema Synonymous Substitution"): every
database in the development split receives a renamed twin (``hr_1`` ->
``hr_1_robust``) whose columns use synonyms, abbreviations and different naming
conventions, while the data itself is unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.database.database import Database
from repro.dvq.errors import DVQError
from repro.dvq.nodes import ColumnRef, DVQuery
from repro.dvq.parser import parse_dvq
from repro.dvq.serializer import serialize_dvq
from repro.embeddings.tokenization import split_identifier
from repro.robustness.synonyms import SynonymLexicon, default_lexicon

#: Naming conventions the renamer can emit.
_CASE_STYLES = ("upper_snake", "lower_snake", "camel", "title_snake")


def _apply_case(words: List[str], style: str) -> str:
    if style == "upper_snake":
        return "_".join(word.upper() for word in words)
    if style == "lower_snake":
        return "_".join(word.lower() for word in words)
    if style == "camel":
        head, *tail = words
        return head.lower() + "".join(word.title() for word in tail)
    return "_".join(word.title() for word in words)


@dataclass
class SchemaRenamePlan:
    """The rename decisions for one database."""

    db_id: str
    new_db_id: str
    table_renames: Dict[str, str] = field(default_factory=dict)
    column_renames: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def column_map_for_table(self, table: str) -> Dict[str, str]:
        return {
            old_column: new_column
            for (table_name, old_column), new_column in self.column_renames.items()
            if table_name == table
        }

    def rename_rate(self) -> float:
        """Fraction of columns that actually received a different name."""
        if not self.column_renames:
            return 0.0
        changed = sum(
            1 for (table, old), new in self.column_renames.items() if old.lower() != new.lower()
        )
        return changed / len(self.column_renames)


class SchemaRenamer:
    """Builds rename plans and applies them to databases and gold DVQs."""

    def __init__(
        self,
        lexicon: Optional[SynonymLexicon] = None,
        seed: int = 11,
        rename_probability: float = 0.6,
        abbreviation_probability: float = 0.25,
        rename_tables: bool = False,
        suffix: str = "_robust",
    ):
        self.lexicon = lexicon or default_lexicon()
        self.seed = seed
        self.rename_probability = rename_probability
        self.abbreviation_probability = abbreviation_probability
        self.rename_tables = rename_tables
        self.suffix = suffix

    # -- plan construction --------------------------------------------------

    def plan_for(self, database: Database) -> SchemaRenamePlan:
        """Build a deterministic rename plan for ``database``."""
        rng = random.Random(f"{self.seed}:{database.name}")
        plan = SchemaRenamePlan(db_id=database.name, new_db_id=f"{database.name}{self.suffix}")
        for table in database.schema.tables:
            new_table_name = table.name
            if self.rename_tables and rng.random() < 0.3:
                new_table_name = self._rename_identifier(table.name, rng)
            plan.table_renames[table.name] = new_table_name
            used_names = set()
            for column in table.columns:
                if column.is_primary and rng.random() < 0.5:
                    # primary keys are renamed less aggressively, like the paper's
                    # HH_ID example where ids keep their abbreviation style
                    new_name = column.name
                elif rng.random() < self.rename_probability:
                    new_name = self._rename_identifier(column.name, rng)
                else:
                    new_name = column.name
                if new_name.lower() in used_names:
                    new_name = column.name
                used_names.add(new_name.lower())
                plan.column_renames[(table.name, column.name)] = new_name
        return plan

    def _rename_identifier(self, identifier: str, rng: random.Random) -> str:
        words = [word.lower() for word in split_identifier(identifier)] or [identifier.lower()]
        renamed_words: List[str] = []
        changed = False
        for word in words:
            if rng.random() < self.abbreviation_probability and word in self.lexicon.abbreviations:
                renamed_words.append(self.lexicon.abbreviations[word])
                changed = True
                continue
            synonym = self.lexicon.pick_synonym(word, rng)
            if synonym is not None and rng.random() < 0.8:
                renamed_words.extend(synonym.split("_"))
                changed = True
            else:
                renamed_words.append(word)
        joined_key = "_".join(words)
        if joined_key in self.lexicon.abbreviations and rng.random() < self.abbreviation_probability:
            renamed_words = self.lexicon.abbreviations[joined_key].split("_")
            changed = True
        style = rng.choice(_CASE_STYLES)
        new_name = _apply_case(renamed_words, style)
        if not changed:
            # at minimum, flip the casing convention so the surface form differs
            new_name = _apply_case(words, rng.choice([s for s in _CASE_STYLES]))
        return new_name

    # -- application ---------------------------------------------------------

    def apply_to_database(self, database: Database, plan: Optional[SchemaRenamePlan] = None) -> Tuple[Database, SchemaRenamePlan]:
        """Return the renamed twin of ``database`` plus the plan used."""
        plan = plan or self.plan_for(database)
        renamed = database.renamed(
            new_name=plan.new_db_id,
            table_renames=plan.table_renames,
            column_renames=plan.column_renames,
        )
        return renamed, plan

    def rewrite_dvq(self, dvq_text: str, plan: SchemaRenamePlan) -> str:
        """Rewrite a gold DVQ so it references the renamed schema."""
        try:
            query = parse_dvq(dvq_text)
        except DVQError:
            return dvq_text
        rewritten = self._rewrite_query(query, plan)
        return serialize_dvq(rewritten)

    def _rewrite_query(self, query: DVQuery, plan: SchemaRenamePlan) -> DVQuery:
        column_lookup = {
            (table.lower(), old.lower()): new
            for (table, old), new in plan.column_renames.items()
        }
        # Unqualified columns are resolved against the query's own tables first
        # (primary table, then joined tables), then against any other table.
        referenced_tables = [table.lower() for table in query.referenced_tables()]
        any_table_lookup: Dict[str, str] = {}
        for (table, old), new in plan.column_renames.items():
            any_table_lookup.setdefault(old.lower(), new)
        scoped_lookup: Dict[str, str] = {}
        for table_name in reversed(referenced_tables):
            for (table, old), new in plan.column_renames.items():
                if table.lower() == table_name:
                    scoped_lookup[old.lower()] = new
        any_table_lookup.update(scoped_lookup)
        table_lookup = {old.lower(): new for old, new in plan.table_renames.items()}
        alias_map = {}
        if query.table_alias:
            alias_map[query.table_alias.lower()] = query.table.lower()
        for join in query.joins:
            if join.alias:
                alias_map[join.alias.lower()] = join.table.lower()

        def rename_column(ref: ColumnRef) -> ColumnRef:
            if ref.column == "*":
                return ref
            owner = ref.table.lower() if ref.table else None
            if owner in alias_map:
                owner = alias_map[owner]
            new_column = None
            if owner is not None:
                new_column = column_lookup.get((owner, ref.column.lower()))
            if new_column is None:
                new_column = any_table_lookup.get(ref.column.lower(), ref.column)
            new_table = ref.table
            if ref.table and ref.table.lower() in table_lookup and ref.table.lower() not in alias_map:
                new_table = table_lookup[ref.table.lower()]
            return ColumnRef(column=new_column, table=new_table)

        def rename_expr(expr):
            if isinstance(expr, ColumnRef):
                return rename_column(expr)
            return expr.__class__(
                function=expr.function, argument=rename_column(expr.argument), distinct=expr.distinct
            )

        new_select = tuple(item.__class__(rename_expr(item.expr)) for item in query.select)
        new_joins = tuple(
            join.__class__(
                table=table_lookup.get(join.table.lower(), join.table),
                left=rename_column(join.left),
                right=rename_column(join.right),
                alias=join.alias,
            )
            for join in query.joins
        )
        new_where = None
        if query.where is not None:
            new_conditions = tuple(
                condition.__class__(
                    column=rename_column(condition.column),
                    operator=condition.operator,
                    value=condition.value,
                    value2=condition.value2,
                    negated=condition.negated,
                )
                for condition in query.where.conditions
            )
            new_where = query.where.__class__(conditions=new_conditions, connectors=query.where.connectors)
        new_group = tuple(rename_column(column) for column in query.group_by)
        new_order = None
        if query.order_by is not None:
            new_order = query.order_by.__class__(
                expr=rename_expr(query.order_by.expr), direction=query.order_by.direction
            )
        new_bin = None
        if query.bin is not None:
            new_bin = query.bin.__class__(column=rename_column(query.bin.column), unit=query.bin.unit)
        return query.replace(
            select=new_select,
            table=table_lookup.get(query.table.lower(), query.table),
            joins=new_joins,
            where=new_where,
            group_by=new_group,
            order_by=new_order,
            bin=new_bin,
        )
