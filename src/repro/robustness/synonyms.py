"""A curated synonym lexicon for schema words and question phrases.

The lexicon plays the role of the ChatGPT prompts used in the paper's dataset
construction ("what alternative name could be used for a column ... that
conveys a similar meaning to 'Movie'?").  It maps individual identifier words
to identifier-friendly synonyms (used by the schema renamer and by GRED's
debugger) and maps multi-word question phrases to paraphrases (used by the NLQ
rewriter).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Word-level synonyms for schema identifier parts.  All keys are lower-case.
WORD_SYNONYMS: Dict[str, List[str]] = {
    "salary": ["wage", "pay", "earnings"],
    "wage": ["salary", "pay"],
    "hire": ["recruitment", "onboarding"],
    "date": ["day", "time"],
    "first": ["given", "fore"],
    "last": ["family", "sur"],
    "name": ["title", "label"],
    "employee": ["staff", "worker"],
    "department": ["division", "dept", "unit"],
    "manager": ["supervisor", "boss"],
    "job": ["position", "role"],
    "history": ["record", "log"],
    "location": ["place", "site"],
    "city": ["town", "municipality"],
    "country": ["nation", "state"],
    "capacity": ["seating", "volume"],
    "openning": ["launch", "debut"],
    "opening": ["launch", "debut"],
    "year": ["yr", "annum"],
    "title": ["name", "heading"],
    "price": ["cost", "fee"],
    "amount": ["total", "sum"],
    "quantity": ["count", "volume"],
    "customer": ["client", "buyer"],
    "order": ["purchase", "transaction"],
    "product": ["item", "goods"],
    "category": ["type", "class", "group"],
    "status": ["state", "condition"],
    "rating": ["score", "grade"],
    "student": ["pupil", "learner"],
    "instructor": ["teacher", "lecturer"],
    "course": ["class", "module"],
    "credit": ["point", "unit"],
    "budget": ["funding", "allocation"],
    "building": ["structure", "facility"],
    "age": ["years_old", "maturity"],
    "weight": ["mass", "heaviness"],
    "pet": ["animal", "companion"],
    "visit": ["appointment", "checkup"],
    "cost": ["expense", "charge"],
    "airline": ["carrier", "airway"],
    "airport": ["airfield", "terminal"],
    "flight": ["trip", "journey"],
    "passenger": ["traveler", "rider"],
    "booking": ["reservation", "ticket"],
    "fare": ["price", "charge"],
    "duration": ["length", "span"],
    "physician": ["doctor", "clinician"],
    "patient": ["case", "client"],
    "appointment": ["visit", "consultation"],
    "medication": ["drug", "medicine"],
    "insurance": ["coverage", "policy"],
    "artist": ["creator", "painter"],
    "exhibition": ["show", "display"],
    "theme": ["topic", "subject"],
    "ticket": ["pass", "admission"],
    "attendance": ["turnout", "audience"],
    "team": ["club", "squad"],
    "player": ["athlete", "member"],
    "match": ["game", "fixture"],
    "coach": ["trainer", "mentor"],
    "goal": ["score", "point"],
    "stadium": ["arena", "venue"],
    "book": ["volume", "publication"],
    "author": ["writer", "novelist"],
    "member": ["subscriber", "patron"],
    "loan": ["borrowing", "checkout"],
    "fine": ["penalty", "fee"],
    "branch": ["outlet", "office"],
    "singer": ["vocalist", "performer"],
    "concert": ["performance", "gig"],
    "station": ["post", "site"],
    "reading": ["measurement", "observation"],
    "temperature": ["heat", "warmth"],
    "humidity": ["moisture", "dampness"],
    "rainfall": ["precipitation", "rain"],
    "alert": ["warning", "notice"],
    "severity": ["intensity", "level"],
    "restaurant": ["eatery", "diner"],
    "dish": ["meal", "plate"],
    "cuisine": ["cooking", "food_style"],
    "review": ["feedback", "critique"],
    "reservation": ["booking", "table_hold"],
    "calories": ["energy", "kcal"],
    "plant": ["facility", "station"],
    "fuel": ["energy", "power"],
    "production": ["output", "generation"],
    "maintenance": ["upkeep", "servicing"],
    "efficiency": ["productivity", "yield"],
    "commission": ["bonus", "incentive"],
    "percentage": ["ratio", "share"],
    "pct": ["percent", "ratio"],
    "schedule": ["timetable", "plan"],
    "staff": ["personnel", "crew"],
    "film": ["movie", "picture"],
    "gross": ["revenue", "takings"],
    "dollar": ["usd", "money"],
    "show": ["screening", "display"],
    "monthly": ["per_month", "monthwise"],
    "pages": ["length", "page_count"],
    "publication": ["release", "issue"],
    "level": ["tier", "grade"],
    "elevation": ["altitude", "height"],
    "fleet": ["aircraft", "planes"],
    "stock": ["inventory", "supply"],
    "supplier": ["vendor", "provider"],
    "discount": ["reduction", "markdown"],
    "item": ["entry", "article"],
    "nationality": ["citizenship", "origin"],
    "seat": ["chair", "place"],
    "class": ["category", "tier"],
    "net": ["total", "overall"],
    "worth": ["value", "wealth"],
    "join": ["enroll", "signup"],
    "advisor": ["mentor", "counselor"],
    "major": ["specialization", "field"],
    "sex": ["gender", "sexes"],
    "grade": ["mark", "score"],
    "semester": ["term", "session"],
    "enroll": ["register", "admit"],
    "total": ["overall", "aggregate"],
    "unit": ["item", "single"],
    "founded": ["established", "created"],
    "weekly": ["per_week", "weekwise"],
    "experience": ["tenure", "seniority"],
    "install": ["setup", "deployment"],
    "party": ["group", "guest"],
    "head": ["chief", "lead"],
    "annual": ["yearly", "per_year"],
    "brand": ["make", "label"],
    "postal": ["zip", "mail"],
    "code": ["id", "number"],
    "start": ["begin", "commence"],
    "end": ["finish", "stop"],
    "min": ["minimum", "lowest"],
    "max": ["maximum", "highest"],
    "id": ["identifier", "key", "number"],
}

#: Abbreviation-style renames applied by the schema renamer to simulate the
#: naming-convention drift the paper highlights (FIRST_NAME -> Fname,
#: DEPARTMENT_ID -> Dept_ID, ...).
ABBREVIATIONS: Dict[str, str] = {
    "department": "dept",
    "first_name": "fname",
    "last_name": "lname",
    "number": "num",
    "manager": "mgr",
    "average": "avg",
    "employee": "emp",
    "location": "loc",
    "quantity": "qty",
    "maximum": "max",
    "minimum": "min",
    "identifier": "id",
    "appointment": "appt",
    "reservation": "resv",
}

#: Phrase-level paraphrases used by the NLQ rewriter (all lower-case keys).
PHRASE_PARAPHRASES: Dict[str, List[str]] = {
    "a bar chart": ["a histogram", "a column graph", "bars"],
    "a bar graph": ["a histogram", "a column diagram"],
    "a pie chart": ["a circular chart", "a donut-style breakdown"],
    "a pie": ["a proportion wheel", "a circular split"],
    "a line chart": ["a trend curve", "a time-series plot"],
    "a line graph": ["a trend curve"],
    "the trend line": ["the evolution curve"],
    "a scatter chart": ["a dot plot", "a point cloud"],
    "a scatter plot": ["a dot diagram"],
    "a stacked bar chart": ["a layered column view", "stacked columns"],
    "a stacked bar": ["stacked columns"],
    "a grouping line chart": ["a multi-line comparison"],
    "a multi-series line chart": ["a multi-line comparison"],
    "a grouping scatter chart": ["a colour-coded dot plot"],
    "a grouped scatter plot": ["a colour-coded dot plot"],
    "in asc order": ["in ascending manner", "from the smallest upwards"],
    "in ascending order": ["going upwards", "from smallest to largest"],
    "in desc order": ["in descending manner", "from the largest downwards"],
    "in descending order": ["going downwards", "from largest to smallest"],
    "from low to high": ["starting with the smallest"],
    "from high to low": ["starting with the largest"],
    "group by attribute": ["aggregated for every", "broken down by"],
    "the number of": ["how many", "the tally of"],
    "the average of": ["the mean", "the typical value of"],
    "the sum of": ["the combined", "the total of"],
    "the minimum": ["the smallest", "the lowest"],
    "the maximum": ["the largest", "the highest"],
    "for each": ["for every", "per"],
    "bin": ["bucket", "split"],
    "by weekday": ["by day of the week"],
    "sort by": ["arrange by", "organize by"],
    "from table": ["based on the", "using the records of the"],
    "for those records whose": ["considering only entries where", "restricted to cases in which"],
}

#: Sentence-level scaffolds used to restructure questions.
SENTENCE_SCAFFOLDS: List[str] = [
    "Could you please {body}",
    "I would like you to {body}",
    "{body} — thanks!",
    "Please {body}",
    "Would it be possible to {body}",
]


@dataclass
class SynonymLexicon:
    """A bundle of word synonyms, abbreviations and phrase paraphrases."""

    word_synonyms: Dict[str, List[str]] = field(default_factory=lambda: dict(WORD_SYNONYMS))
    abbreviations: Dict[str, str] = field(default_factory=lambda: dict(ABBREVIATIONS))
    phrase_paraphrases: Dict[str, List[str]] = field(
        default_factory=lambda: dict(PHRASE_PARAPHRASES)
    )
    sentence_scaffolds: List[str] = field(default_factory=lambda: list(SENTENCE_SCAFFOLDS))

    def synonyms_for(self, word: str) -> List[str]:
        """Synonyms of a single lower-case word (empty when unknown)."""
        return list(self.word_synonyms.get(word.lower(), []))

    def pick_synonym(self, word: str, rng: random.Random) -> Optional[str]:
        options = self.synonyms_for(word)
        if not options:
            return None
        return rng.choice(options)

    def related_words(self, word: str) -> List[str]:
        """The word plus every word it maps to or from (symmetric closure).

        Used by schema-linking components to decide whether two identifier
        words refer to the same concept.
        """
        word = word.lower()
        related = {word}
        related.update(self.word_synonyms.get(word, []))
        for source, targets in self.word_synonyms.items():
            if word in targets:
                related.add(source)
                related.update(targets)
        expansion = self.abbreviations.get(word)
        if expansion:
            related.add(expansion)
        for full, abbreviated in self.abbreviations.items():
            if word == abbreviated:
                related.add(full)
        return sorted(related)

    def are_related(self, left: str, right: str) -> bool:
        """True when two words are synonyms/abbreviations of one another."""
        left = left.lower()
        right = right.lower()
        if left == right:
            return True
        return right in self.related_words(left) or left in self.related_words(right)


def default_lexicon() -> SynonymLexicon:
    """The lexicon instance shared by the dataset builder and the models."""
    return SynonymLexicon()
