"""Canonical text rendering of DVQ ASTs.

Serialization is the inverse of :func:`repro.dvq.parser.parse_dvq` up to token
spacing: ``parse(serialize(q)) == normalize(q)`` for every well-formed query,
which the property-based tests exercise.
"""

from __future__ import annotations

from typing import List

from repro.dvq.nodes import DVQuery


def serialize_dvq(query: DVQuery) -> str:
    """Render ``query`` in the canonical nvBench surface syntax."""
    parts: List[str] = ["Visualize", query.chart_type.value, "SELECT"]
    parts.append(" , ".join(item.render() for item in query.select))
    parts.append("FROM")
    table = query.table
    if query.table_alias:
        table = f"{table} AS {query.table_alias}"
    parts.append(table)
    for join in query.joins:
        parts.append(join.render())
    if query.where is not None and query.where.conditions:
        parts.append("WHERE")
        parts.append(query.where.render())
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(" , ".join(column.qualified() for column in query.group_by))
    if query.order_by is not None:
        parts.append(query.order_by.render())
    if query.bin is not None:
        parts.append(query.bin.render())
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)
