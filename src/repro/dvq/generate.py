"""Seeded random generation of well-formed DVQs over a database.

:class:`RandomDVQGenerator` samples syntactically valid, executable queries
from the *portable* DVQ subset — the fragment on which every execution
backend is defined to agree (see :mod:`repro.executor.backend`):

* bare select columns are always part of the grouping key (or the query is a
  flat projection with no aggregation at all);
* ORDER BY always targets a selected expression;
* predicate literals are drawn from the filtered column's own values, so
  comparisons never cross incompatible types;
* LIKE patterns are prefix/suffix/contains fragments of real values, free of
  embedded ``%`` / ``_`` wildcards.

The generator is fully seeded: the same seed and database produce the same
query sequence, which keeps the differential suite
(``tests/test_sql_differential.py``) and the round-trip property tests
reproducible.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.database.schema import Column, ColumnType
from repro.dvq.nodes import (
    AggregateExpr,
    AggregateFunction,
    BinClause,
    BinUnit,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderClause,
    SelectItem,
    SortDirection,
    WhereClause,
)

#: Chart families by channel count.
_TWO_CHANNEL = (ChartType.BAR, ChartType.PIE, ChartType.LINE, ChartType.SCATTER)
_THREE_CHANNEL = (
    ChartType.STACKED_BAR,
    ChartType.GROUPING_LINE,
    ChartType.GROUPING_SCATTER,
)


class _ScopedColumn:
    """A column reachable from the query, with its owning table context."""

    def __init__(self, column: Column, table_name: str, qualifier: Optional[str]):
        self.column = column
        self.table_name = table_name  # real table name, for data lookups
        self.qualifier = qualifier  # alias (or table name) to qualify refs with

    def ref(self, rng: random.Random, qualify_probability: float) -> ColumnRef:
        if self.qualifier and rng.random() < qualify_probability:
            return ColumnRef(column=self.column.name, table=self.qualifier)
        return ColumnRef(column=self.column.name)


class RandomDVQGenerator:
    """Sample executable DVQs from the portable subset, deterministically.

    Args:
        seed: seeds the internal RNG; the query sequence is a pure function
            of (seed, database).
        join_probability: chance of following a foreign key into a join when
            the schema offers one.
        where_probability: chance of attaching a WHERE clause.
        order_probability: chance of attaching an ORDER BY clause.
        limit_probability: chance of attaching a LIMIT (top-k) clause.
        portable_subset: when True (the default) every query stays inside the
            portable subset and executes cleanly on every backend.  When
            False, a ``corruption_probability`` fraction of queries is
            deliberately broken with known-unsupported constructs (missing
            tables / columns) so differential fuzzing can assert that every
            engine rejects them under the *same*
            :class:`~repro.executor.backend.ExecutionOutcome` category.
        corruption_probability: fraction of queries corrupted when
            ``portable_subset`` is off.
    """

    def __init__(
        self,
        seed: int = 0,
        join_probability: float = 0.4,
        where_probability: float = 0.6,
        order_probability: float = 0.5,
        limit_probability: float = 0.25,
        portable_subset: bool = True,
        corruption_probability: float = 0.15,
    ):
        self._rng = random.Random(seed)
        self.join_probability = join_probability
        self.where_probability = where_probability
        self.order_probability = order_probability
        self.limit_probability = limit_probability
        self.portable_subset = portable_subset
        self.corruption_probability = corruption_probability

    # -- public API ---------------------------------------------------------

    def generate(self, database: Database) -> DVQuery:
        """Sample one executable DVQ against ``database``."""
        rng = self._rng
        table, alias, joins, columns, qualify_probability = self._choose_tables(database)
        shape = rng.random()
        if shape < 0.2:
            query = self._flat_query(rng, database, table, alias, joins, columns, qualify_probability)
        elif shape < 0.45 and self._binnable(database, columns):
            query = self._binned_query(rng, database, table, alias, joins, columns, qualify_probability)
        else:
            query = self._aggregate_query(rng, database, table, alias, joins, columns, qualify_probability)
        if not self.portable_subset and rng.random() < self.corruption_probability:
            query = self._corrupt(rng, query)
        return query

    def generate_many(self, database: Database, count: int) -> List[DVQuery]:
        """Sample ``count`` queries (the sequence is seed-deterministic)."""
        return [self.generate(database) for _ in range(count)]

    # -- table / scope selection --------------------------------------------

    def _choose_tables(self, database: Database):
        rng = self._rng
        schema = database.schema
        foreign_keys = schema.joinable_pairs()
        joins: List[JoinClause] = []
        alias: Optional[str] = None
        if foreign_keys and rng.random() < self.join_probability:
            fk = rng.choice(foreign_keys)
            primary_name, joined_name = fk.table, fk.ref_table
            left_col, right_col = fk.column, fk.ref_column
            use_aliases = rng.random() < 0.5
            alias = "T1" if use_aliases else None
            join_alias = "T2" if use_aliases else None
            primary_qualifier = alias or primary_name
            joined_qualifier = join_alias or joined_name
            # occasionally qualify by the underlying table name even when
            # aliased — the interpreter tolerates it and the compiler must too
            if use_aliases and rng.random() < 0.2:
                primary_qualifier = primary_name
            joins.append(
                JoinClause(
                    table=joined_name,
                    left=ColumnRef(column=left_col, table=primary_qualifier),
                    right=ColumnRef(column=right_col, table=joined_qualifier),
                    alias=join_alias,
                )
            )
            columns = self._scope_columns(schema, primary_name, alias)
            columns += self._scope_columns(schema, joined_name, join_alias)
            return primary_name, alias, joins, columns, 0.8
        table = rng.choice(schema.tables).name
        if rng.random() < 0.15:
            alias = "T1"
        columns = self._scope_columns(schema, table, alias)
        return table, alias, joins, columns, 0.3

    def _scope_columns(self, schema, table_name: str, alias: Optional[str]) -> List[_ScopedColumn]:
        table = schema.table(table_name)
        qualifier = alias or table.name
        return [_ScopedColumn(column, table.name, qualifier) for column in table.columns]

    # -- query shapes -------------------------------------------------------

    def _aggregate_query(self, rng, database, table, alias, joins, columns, qualify_probability) -> DVQuery:
        x_pool = self._group_key_pool(database, columns)
        x_pool = x_pool or columns
        x = rng.choice(x_pool)
        x_ref = x.ref(rng, qualify_probability)
        y_item = SelectItem(self._aggregate_expr(rng, columns, qualify_probability))
        select = [SelectItem(x_ref), y_item]
        group_by = [x_ref]
        chart = rng.choice(_TWO_CHANNEL)
        color_pool = [
            c
            for c in columns
            if c.column.ctype is ColumnType.TEXT and c.column.name != x.column.name
        ]
        if color_pool and rng.random() < 0.25:
            color = rng.choice(color_pool)
            color_ref = color.ref(rng, qualify_probability)
            select.append(SelectItem(color_ref))
            group_by.append(color_ref)
            chart = rng.choice(_THREE_CHANNEL)
        return self._finish(
            rng, database, chart, select, table, alias, joins, columns,
            group_by=group_by, bin_clause=None, qualify_probability=qualify_probability,
        )

    def _binned_query(self, rng, database, table, alias, joins, columns, qualify_probability) -> DVQuery:
        date_cols, number_cols = self._bin_candidates(database, columns)
        if date_cols and (not number_cols or rng.random() < 0.6):
            target = rng.choice(date_cols)
            unit = rng.choice((BinUnit.YEAR, BinUnit.MONTH, BinUnit.WEEKDAY))
        else:
            target = rng.choice(number_cols)
            unit = rng.choice((BinUnit.INTERVAL, BinUnit.YEAR))
        x_ref = target.ref(rng, qualify_probability)
        select = [SelectItem(x_ref), SelectItem(self._aggregate_expr(rng, columns, qualify_probability))]
        chart = rng.choice((ChartType.BAR, ChartType.LINE))
        return self._finish(
            rng, database, chart, select, table, alias, joins, columns,
            group_by=[], bin_clause=BinClause(column=x_ref, unit=unit),
            qualify_probability=qualify_probability,
        )

    def _flat_query(self, rng, database, table, alias, joins, columns, qualify_probability) -> DVQuery:
        count = 3 if rng.random() < 0.2 and len(columns) >= 3 else 2
        picked = rng.sample(columns, min(count, len(columns)))
        select = [SelectItem(c.ref(rng, qualify_probability)) for c in picked]
        chart = rng.choice(_THREE_CHANNEL) if len(select) >= 3 else rng.choice(_TWO_CHANNEL)
        return self._finish(
            rng, database, chart, select, table, alias, joins, columns,
            group_by=[], bin_clause=None, qualify_probability=qualify_probability,
        )

    def _aggregate_expr(self, rng, columns, qualify_probability) -> AggregateExpr:
        number_cols = [c for c in columns if c.column.ctype is ColumnType.NUMBER]
        date_cols = [c for c in columns if c.column.ctype is ColumnType.DATE]
        roll = rng.random()
        if roll < 0.3 or not number_cols:
            if roll < 0.1:
                return AggregateExpr(
                    function=AggregateFunction.COUNT, argument=ColumnRef(column="*")
                )
            target = rng.choice(columns)
            return AggregateExpr(
                function=AggregateFunction.COUNT,
                argument=target.ref(rng, qualify_probability),
                distinct=rng.random() < 0.3,
            )
        if roll < 0.8:
            function = rng.choice((AggregateFunction.SUM, AggregateFunction.AVG))
            target = rng.choice(number_cols)
        else:
            function = rng.choice((AggregateFunction.MIN, AggregateFunction.MAX))
            target = rng.choice(number_cols + date_cols)
        return AggregateExpr(function=function, argument=target.ref(rng, qualify_probability))

    # -- clauses ------------------------------------------------------------

    def _finish(
        self, rng, database, chart, select, table, alias, joins, columns,
        group_by, bin_clause, qualify_probability,
    ) -> DVQuery:
        where = None
        if rng.random() < self.where_probability:
            where = self._where(rng, database, columns, qualify_probability)
        order_by = None
        if rng.random() < self.order_probability:
            item = rng.choice(select)
            order_by = OrderClause(
                expr=item.expr,
                direction=rng.choice((SortDirection.ASC, SortDirection.DESC)),
            )
        limit = rng.randint(1, 8) if rng.random() < self.limit_probability else None
        return DVQuery(
            chart_type=chart,
            select=tuple(select),
            table=table,
            table_alias=alias,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            order_by=order_by,
            bin=bin_clause,
            limit=limit,
        )

    def _where(self, rng, database, columns, qualify_probability) -> Optional[WhereClause]:
        count = 1 if rng.random() < 0.7 else 2
        conditions = []
        for _ in range(count):
            condition = self._condition(rng, database, columns, qualify_probability)
            if condition is not None:
                conditions.append(condition)
        if not conditions:
            return None
        connectors = tuple(
            rng.choice(("AND", "OR")) for _ in range(len(conditions) - 1)
        )
        return WhereClause(conditions=tuple(conditions), connectors=connectors)

    def _condition(self, rng, database, columns, qualify_probability) -> Optional[Condition]:
        scoped = rng.choice(columns)
        ref = scoped.ref(rng, qualify_probability)
        values = self._literal_pool(database, scoped)
        ctype = scoped.column.ctype
        if not values:
            return Condition(column=ref, operator="IS NULL", negated=rng.random() < 0.5)
        if ctype is ColumnType.NUMBER:
            return self._numeric_condition(rng, ref, values)
        if ctype is ColumnType.DATE:
            return self._date_condition(rng, ref, values)
        if ctype is ColumnType.BOOLEAN:
            return Condition(column=ref, operator="=", value=int(rng.choice(values)))
        return self._text_condition(rng, ref, values)

    def _numeric_condition(self, rng, ref, values) -> Condition:
        roll = rng.random()
        if roll < 0.5:
            operator = rng.choice(("=", "!=", "<", "<=", ">", ">="))
            return Condition(column=ref, operator=operator, value=rng.choice(values))
        if roll < 0.8:
            low, high = sorted((rng.choice(values), rng.choice(values)))
            return Condition(column=ref, operator="BETWEEN", value=low, value2=high)
        picked = self._sample_values(rng, values)
        return Condition(
            column=ref, operator="IN", value=picked, negated=rng.random() < 0.3
        )

    def _date_condition(self, rng, ref, values) -> Condition:
        roll = rng.random()
        if roll < 0.5:
            operator = rng.choice(("<", "<=", ">", ">=", "=", "!="))
            return Condition(column=ref, operator=operator, value=rng.choice(values))
        low, high = sorted((rng.choice(values), rng.choice(values)))
        return Condition(column=ref, operator="BETWEEN", value=low, value2=high)

    def _text_condition(self, rng, ref, values) -> Condition:
        roll = rng.random()
        if roll < 0.35:
            value = rng.choice(values)
            if rng.random() < 0.3:
                value = rng.choice((value.upper(), value.lower()))
            return Condition(
                column=ref, operator=rng.choice(("=", "!=")), value=value
            )
        if roll < 0.6:
            pattern = self._like_pattern(rng, str(rng.choice(values)))
            return Condition(
                column=ref, operator="LIKE", value=pattern, negated=rng.random() < 0.3
            )
        if roll < 0.85:
            picked = self._sample_values(rng, values)
            return Condition(
                column=ref, operator="IN", value=picked, negated=rng.random() < 0.3
            )
        return Condition(column=ref, operator="IS NULL", negated=rng.random() < 0.5)

    def _like_pattern(self, rng, value: str) -> str:
        fragment = value[:3] if len(value) >= 3 else value
        style = rng.random()
        if style < 0.33:
            fragment = value[:3] or value
            pattern = f"{fragment}%"
        elif style < 0.66:
            fragment = value[-3:] or value
            pattern = f"%{fragment}"
        else:
            middle = value[1:4] or value
            pattern = f"%{middle}%"
        if rng.random() < 0.3:
            pattern = pattern.lower()
        # the portable subset forbids inner wildcards; real pool values never
        # contain % or _, but guard against surprises
        return pattern.replace("_", " ")

    def _sample_values(self, rng, values: Sequence[object]) -> Tuple[object, ...]:
        distinct = list(dict.fromkeys(values))
        count = min(len(distinct), rng.randint(2, 3))
        picked = rng.sample(distinct, count)
        # occasionally include a NULL literal — it matches NULL rows under IN
        # and drops them under NOT IN, a semantics corner both backends must
        # share
        if rng.random() < 0.15:
            picked.append(None)
        return tuple(picked)

    # -- subclass hooks -----------------------------------------------------
    #
    # :class:`repro.workload.generator.WorkloadGenerator` overrides these to
    # drive choices from collected table statistics instead of raw scans.

    def _literal_pool(self, database: Database, scoped: _ScopedColumn) -> List[object]:
        """Non-null literals predicates on ``scoped`` may compare against.

        NaN is excluded like NULL: it has no DVQ text form, so a NaN literal
        could never survive the serialize → parse round-trip the fuzz
        harness requires of every generated query.
        """
        return [
            value
            for value in database.table(scoped.table_name).column_values(scoped.column.name)
            if value is not None
            and not (isinstance(value, float) and math.isnan(value))
        ]

    def _group_key_pool(
        self, database: Database, columns: Sequence[_ScopedColumn]
    ) -> List[_ScopedColumn]:
        """Columns suitable as a grouping key (low-cardinality by type here)."""
        return [c for c in columns if c.column.ctype in (ColumnType.TEXT, ColumnType.BOOLEAN)]

    def _bin_candidates(
        self, database: Database, columns: Sequence[_ScopedColumn]
    ) -> Tuple[List[_ScopedColumn], List[_ScopedColumn]]:
        """(date columns, number columns) eligible as BIN targets."""
        date_cols = [c for c in columns if c.column.ctype is ColumnType.DATE]
        number_cols = [c for c in columns if c.column.ctype is ColumnType.NUMBER]
        return date_cols, number_cols

    # -- helpers ------------------------------------------------------------

    def _binnable(self, database: Database, columns: Sequence[_ScopedColumn]) -> bool:
        date_cols, number_cols = self._bin_candidates(database, columns)
        return bool(date_cols or number_cols)

    def _corrupt(self, rng: random.Random, query: DVQuery) -> DVQuery:
        """Break a query with a construct every backend must reject alike.

        Only *schema-level* corruptions are generated (missing table, missing
        column): they parse, fail on every engine, and classify to the same
        ``missing_table`` / ``missing_column`` outcome category — the
        contract non-portable fuzz mode asserts.
        """
        if rng.random() < 0.5:
            return query.replace(table=f"fuzz_missing_table_{rng.randint(0, 999)}")
        condition = Condition(
            column=ColumnRef(column=f"FUZZ_MISSING_COL_{rng.randint(0, 999)}"),
            operator="IS NULL",
        )
        if query.where is None:
            where = WhereClause(conditions=(condition,), connectors=())
        else:
            where = WhereClause(
                conditions=query.where.conditions + (condition,),
                connectors=query.where.connectors + ("AND",),
            )
        return query.replace(where=where)
