"""Tokenizer for the DVQ (Vega-Zero) language.

The DVQ surface syntax is whitespace-friendly SQL-like text.  The tokenizer
splits a query string into typed tokens while preserving the original lexeme so
the serializer can round-trip identifiers with their exact casing (casing is
significant for schema-linking evaluation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.dvq.errors import DVQTokenizeError


class TokenType(enum.Enum):
    """Kinds of lexical tokens recognised in a DVQ string."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    DOT = "dot"
    STAR = "star"
    EOF = "eof"


#: Reserved words of the DVQ language (upper-cased for comparison).
KEYWORDS = frozenset(
    {
        "VISUALIZE",
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "BIN",
        "AND",
        "OR",
        "NOT",
        "IN",
        "LIKE",
        "BETWEEN",
        "IS",
        "NULL",
        "ASC",
        "DESC",
        "JOIN",
        "ON",
        "AS",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "DISTINCT",
        "BAR",
        "PIE",
        "LINE",
        "SCATTER",
        "STACKED",
        "GROUPING",
        "YEAR",
        "MONTH",
        "WEEKDAY",
        "INTERVAL",
        "LIMIT",
        "HAVING",
    }
)

#: Aggregate function keywords.
AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

#: Multi-character comparison operators, checked before single-char ones.
_MULTI_OPERATORS = ("<>", "!=", ">=", "<=")
_SINGLE_OPERATORS = ("=", ">", "<", "+", "-", "/", "%")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: the :class:`TokenType` of the token.
        value: the normalised value (keywords upper-cased, others verbatim).
        lexeme: the original text of the token.
        position: character offset of the token start in the source string.
    """

    type: TokenType
    value: str
    lexeme: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """Return True when the token is a keyword with one of ``names``."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.type.value}({self.lexeme!r}@{self.position})"


def _is_identifier_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_identifier_part(char: str) -> bool:
    return char.isalnum() or char == "_"


def _iter_tokens(text: str) -> Iterator[Token]:
    length = len(text)
    index = 0
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == ",":
            yield Token(TokenType.COMMA, ",", ",", index)
            index += 1
            continue
        if char == "(":
            yield Token(TokenType.LPAREN, "(", "(", index)
            index += 1
            continue
        if char == ")":
            yield Token(TokenType.RPAREN, ")", ")", index)
            index += 1
            continue
        if char == "*":
            yield Token(TokenType.STAR, "*", "*", index)
            index += 1
            continue
        if char == ".":
            yield Token(TokenType.DOT, ".", ".", index)
            index += 1
            continue
        if char in "\"'":
            end = text.find(char, index + 1)
            if end < 0:
                raise DVQTokenizeError(
                    f"Unterminated string literal starting at {index}",
                    position=index,
                    text=text,
                )
            literal = text[index + 1 : end]
            yield Token(TokenType.STRING, literal, text[index : end + 1], index)
            index = end + 1
            continue
        matched_operator = None
        for operator in _MULTI_OPERATORS:
            if text.startswith(operator, index):
                matched_operator = operator
                break
        if matched_operator is None and char in _SINGLE_OPERATORS:
            # a leading minus can start a negative number literal
            if char == "-" and index + 1 < length and text[index + 1].isdigit():
                matched_operator = None
            else:
                matched_operator = char
        if matched_operator is not None:
            yield Token(TokenType.OPERATOR, matched_operator, matched_operator, index)
            index += len(matched_operator)
            continue
        if char.isdigit() or (char == "-" and index + 1 < length and text[index + 1].isdigit()):
            start = index
            index += 1
            while index < length and (text[index].isdigit() or text[index] == "."):
                index += 1
            lexeme = text[start:index]
            yield Token(TokenType.NUMBER, lexeme, lexeme, start)
            continue
        if _is_identifier_start(char):
            start = index
            while index < length and _is_identifier_part(text[index]):
                index += 1
            lexeme = text[start:index]
            upper = lexeme.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, lexeme, start)
            else:
                yield Token(TokenType.IDENTIFIER, lexeme, lexeme, start)
            continue
        raise DVQTokenizeError(
            f"Unexpected character {char!r} at position {index}", position=index, text=text
        )
    yield Token(TokenType.EOF, "", "", length)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list of :class:`Token`, ending with an EOF token.

    Raises:
        DVQTokenizeError: if the text contains characters outside the DVQ
            alphabet or an unterminated string literal.
    """
    if text is None:
        raise DVQTokenizeError("Cannot tokenize None")
    return list(_iter_tokens(text))
