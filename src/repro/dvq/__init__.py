"""Data Visualization Query (DVQ) language substrate.

A DVQ is the intermediate representation used throughout the paper (also known
as Vega-Zero in ncNet / nvBench).  A query looks like::

    Visualize BAR SELECT JOB_ID , AVG(MANAGER_ID) FROM employees
    WHERE salary BETWEEN 8000 AND 12000 GROUP BY JOB_ID
    ORDER BY JOB_ID ASC

This package provides the full language toolchain:

* :mod:`repro.dvq.tokens` — tokenizer.
* :mod:`repro.dvq.nodes` — the typed AST.
* :mod:`repro.dvq.parser` — a recursive-descent parser.
* :mod:`repro.dvq.serializer` — canonical text rendering.
* :mod:`repro.dvq.components` — Vis / Axis / Data component extraction used by
  the evaluation metrics.
* :mod:`repro.dvq.normalize` — canonicalisation helpers for exact-match
  comparison.
"""

from repro.dvq.errors import DVQError, DVQParseError, DVQTokenizeError
from repro.dvq.nodes import (
    AggregateExpr,
    BinClause,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderClause,
    SelectItem,
    SortDirection,
    WhereClause,
)
from repro.dvq.parser import parse_dvq
from repro.dvq.serializer import serialize_dvq
from repro.dvq.tokens import Token, TokenType, tokenize
from repro.dvq.components import (
    AxisComponent,
    DataComponent,
    VisComponent,
    extract_components,
)
from repro.dvq.generate import RandomDVQGenerator
from repro.dvq.normalize import normalize_dvq_text, queries_match

__all__ = [
    "AggregateExpr",
    "AxisComponent",
    "BinClause",
    "ChartType",
    "ColumnRef",
    "Condition",
    "DataComponent",
    "DVQError",
    "DVQParseError",
    "DVQTokenizeError",
    "DVQuery",
    "JoinClause",
    "OrderClause",
    "RandomDVQGenerator",
    "SelectItem",
    "SortDirection",
    "Token",
    "TokenType",
    "VisComponent",
    "WhereClause",
    "extract_components",
    "normalize_dvq_text",
    "parse_dvq",
    "queries_match",
    "serialize_dvq",
    "tokenize",
]
