"""Typed AST nodes for DVQ queries.

The AST mirrors the three logical parts of a Data Visualization Query used by
the evaluation metrics in the paper:

* the *Vis* part — the chart type (``Visualize BAR`` ...),
* the *Axis* part — the two (or three) encoded channels (the SELECT list),
* the *Data* part — the data transformation (FROM / JOIN / WHERE / GROUP BY /
  ORDER BY / BIN).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union


class ChartType(enum.Enum):
    """Supported chart families, matching Figure 2 in the paper."""

    BAR = "BAR"
    PIE = "PIE"
    LINE = "LINE"
    SCATTER = "SCATTER"
    STACKED_BAR = "STACKED BAR"
    GROUPING_LINE = "GROUPING LINE"
    GROUPING_SCATTER = "GROUPING SCATTER"

    @property
    def mark(self) -> str:
        """Return the underlying Vega-Lite mark for the chart type."""
        if self in (ChartType.BAR, ChartType.STACKED_BAR):
            return "bar"
        if self in (ChartType.LINE, ChartType.GROUPING_LINE):
            return "line"
        if self in (ChartType.SCATTER, ChartType.GROUPING_SCATTER):
            return "point"
        return "arc"

    @property
    def is_grouped(self) -> bool:
        """True for chart types that use a colour/grouping channel."""
        return self in (
            ChartType.STACKED_BAR,
            ChartType.GROUPING_LINE,
            ChartType.GROUPING_SCATTER,
        )

    @classmethod
    def from_text(cls, text: str) -> "ChartType":
        normalized = " ".join(text.upper().split())
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"Unknown chart type: {text!r}")


class SortDirection(enum.Enum):
    """Sort direction for ORDER BY clauses."""

    ASC = "ASC"
    DESC = "DESC"


class AggregateFunction(enum.Enum):
    """Aggregate functions permitted in a SELECT item."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly table-qualified) reference to a column.

    ``table`` may be a table name or an alias such as ``T1``; ``column`` may be
    ``*`` only inside ``COUNT(*)``.
    """

    column: str
    table: Optional[str] = None

    def qualified(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column

    def lower_key(self) -> str:
        """Case-insensitive comparison key (unqualified)."""
        return self.column.lower()

    def with_column(self, column: str) -> "ColumnRef":
        return replace(self, column=column)


@dataclass(frozen=True)
class AggregateExpr:
    """An aggregate application such as ``AVG(salary)`` or ``COUNT(DISTINCT id)``."""

    function: AggregateFunction
    argument: ColumnRef
    distinct: bool = False

    def render(self) -> str:
        inner = self.argument.qualified()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.function.value}({inner})"


#: A SELECT item is either a bare column or an aggregate over a column.
SelectExpr = Union[ColumnRef, AggregateExpr]


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list (i.e. one encoded axis)."""

    expr: SelectExpr

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.expr, AggregateExpr)

    @property
    def column(self) -> ColumnRef:
        if isinstance(self.expr, AggregateExpr):
            return self.expr.argument
        return self.expr

    def render(self) -> str:
        if isinstance(self.expr, AggregateExpr):
            return self.expr.render()
        return self.expr.qualified()


@dataclass(frozen=True)
class Condition:
    """A single predicate in the WHERE clause.

    Supported operators: ``=``, ``!=``, ``<>``, ``>``, ``>=``, ``<``, ``<=``,
    ``LIKE``, ``IN``, ``BETWEEN``, ``IS NULL`` / ``IS NOT NULL``.  For BETWEEN,
    ``value`` holds the lower bound and ``value2`` the upper bound.  For IN,
    ``value`` holds a tuple of literals.
    """

    column: ColumnRef
    operator: str
    value: object = None
    value2: object = None
    negated: bool = False

    def render(self) -> str:
        op = self.operator.upper()
        col = self.column.qualified()
        if op == "BETWEEN":
            return f"{col} BETWEEN {_render_literal(self.value)} AND {_render_literal(self.value2)}"
        if op == "IN":
            values = " , ".join(_render_literal(v) for v in self.value)
            prefix = "NOT IN" if self.negated else "IN"
            return f"{col} {prefix} ( {values} )"
        if op == "IS NULL":
            return f"{col} IS NOT NULL" if self.negated else f"{col} IS NULL"
        if op == "LIKE":
            prefix = "NOT LIKE" if self.negated else "LIKE"
            return f"{col} {prefix} {_render_literal(self.value)}"
        return f"{col} {op} {_render_literal(self.value)}"


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


@dataclass(frozen=True)
class WhereClause:
    """A flat list of conditions joined by connectors (``AND`` / ``OR``).

    ``connectors[i]`` joins ``conditions[i]`` and ``conditions[i + 1]``, so the
    list of connectors is always one element shorter than the conditions.
    """

    conditions: Sequence[Condition]
    connectors: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.conditions and len(self.connectors) != len(self.conditions) - 1:
            raise ValueError(
                "WhereClause needs exactly len(conditions) - 1 connectors; "
                f"got {len(self.conditions)} conditions and {len(self.connectors)} connectors"
            )

    def render(self) -> str:
        parts: List[str] = []
        for index, condition in enumerate(self.conditions):
            if index > 0:
                parts.append(self.connectors[index - 1].upper())
            parts.append(condition.render())
        return " ".join(parts)


@dataclass(frozen=True)
class JoinClause:
    """An equi-join between the primary table and another table."""

    table: str
    left: ColumnRef
    right: ColumnRef
    alias: Optional[str] = None

    def render(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        return (
            f"JOIN {self.table}{alias} ON "
            f"{self.left.qualified()} = {self.right.qualified()}"
        )


@dataclass(frozen=True)
class OrderClause:
    """ORDER BY over a column or an aggregate of a column."""

    expr: SelectExpr
    direction: SortDirection = SortDirection.ASC

    def render(self) -> str:
        if isinstance(self.expr, AggregateExpr):
            rendered = self.expr.render()
        else:
            rendered = self.expr.qualified()
        return f"ORDER BY {rendered} {self.direction.value}"


class BinUnit(enum.Enum):
    """Temporal/numeric binning units supported by the BIN clause."""

    YEAR = "YEAR"
    MONTH = "MONTH"
    WEEKDAY = "WEEKDAY"
    INTERVAL = "INTERVAL"


@dataclass(frozen=True)
class BinClause:
    """``BIN <column> BY <unit>`` — temporal or interval binning of the x axis."""

    column: ColumnRef
    unit: BinUnit

    def render(self) -> str:
        return f"BIN {self.column.qualified()} BY {self.unit.value}"


@dataclass(frozen=True)
class DVQuery:
    """A complete Data Visualization Query.

    ``limit`` is the optional top-k clause (``LIMIT n``): after ordering, only
    the first ``n`` rows are materialised.  Because a top-k cut must pick the
    same rows on every execution engine, executors apply a deterministic
    canonical ordering (see :mod:`repro.executor.ordering`) before slicing.
    """

    chart_type: ChartType
    select: Sequence[SelectItem]
    table: str
    table_alias: Optional[str] = None
    joins: Sequence[JoinClause] = field(default_factory=tuple)
    where: Optional[WhereClause] = None
    group_by: Sequence[ColumnRef] = field(default_factory=tuple)
    order_by: Optional[OrderClause] = None
    bin: Optional[BinClause] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.select:
            raise ValueError("A DVQuery must select at least one expression")
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"LIMIT must be non-negative, got {self.limit}")

    @property
    def x(self) -> SelectItem:
        """The first SELECT item, conventionally the x axis."""
        return self.select[0]

    @property
    def y(self) -> SelectItem:
        """The second SELECT item, conventionally the y axis."""
        if len(self.select) < 2:
            return self.select[0]
        return self.select[1]

    @property
    def color(self) -> Optional[SelectItem]:
        """The optional third channel used by grouped chart types."""
        if len(self.select) >= 3:
            return self.select[2]
        return None

    def needs_grouping(self) -> bool:
        """True when execution groups rows: GROUP BY, BIN, or any aggregate.

        The single source of this rule — the row interpreter, the planner and
        the compiled SQL all derive their grouping decision from it.
        """
        if self.group_by or self.bin is not None:
            return True
        return any(item.is_aggregate for item in self.select)

    def referenced_columns(self) -> List[ColumnRef]:
        """All column references appearing anywhere in the query."""
        columns: List[ColumnRef] = []
        for item in self.select:
            if not (isinstance(item.expr, ColumnRef) and item.expr.column == "*"):
                columns.append(item.column)
        for join in self.joins:
            columns.extend([join.left, join.right])
        if self.where is not None:
            columns.extend(condition.column for condition in self.where.conditions)
        columns.extend(self.group_by)
        if self.order_by is not None:
            if isinstance(self.order_by.expr, AggregateExpr):
                columns.append(self.order_by.expr.argument)
            else:
                columns.append(self.order_by.expr)
        if self.bin is not None:
            columns.append(self.bin.column)
        return columns

    def referenced_tables(self) -> List[str]:
        """All table names referenced by the query (primary first)."""
        tables = [self.table]
        tables.extend(join.table for join in self.joins)
        return tables

    def replace(self, **changes) -> "DVQuery":
        """Return a copy with the given fields replaced (dataclass semantics)."""
        return replace(self, **changes)
