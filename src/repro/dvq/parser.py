"""Recursive-descent parser turning DVQ text into a :class:`~repro.dvq.nodes.DVQuery`."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dvq.errors import DVQParseError
from repro.dvq.nodes import (
    AggregateExpr,
    AggregateFunction,
    BinClause,
    BinUnit,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderClause,
    SelectExpr,
    SelectItem,
    SortDirection,
    WhereClause,
)
from repro.dvq.tokens import AGGREGATES, Token, TokenType, tokenize


class _TokenStream:
    """A cursor over a token list with convenience accessors."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def expect_keyword(self, *names: str) -> Token:
        token = self.current
        if token.is_keyword(*names):
            return self.advance()
        raise DVQParseError(
            f"Expected keyword {' or '.join(names)}, found {token.lexeme!r}", token=token
        )

    def expect(self, token_type: TokenType) -> Token:
        token = self.current
        if token.type is token_type:
            return self.advance()
        raise DVQParseError(
            f"Expected {token_type.value}, found {token.lexeme!r}", token=token
        )

    def match_keyword(self, *names: str) -> Optional[Token]:
        if self.current.is_keyword(*names):
            return self.advance()
        return None

    def at_end(self) -> bool:
        return self.current.type is TokenType.EOF


def parse_dvq(text: str) -> DVQuery:
    """Parse a DVQ string into an AST.

    Raises:
        DVQParseError: when the text does not conform to the DVQ grammar.
    """
    stream = _TokenStream(tokenize(text))
    stream.expect_keyword("VISUALIZE")
    chart_type = _parse_chart_type(stream)
    stream.expect_keyword("SELECT")
    select = _parse_select_list(stream)
    stream.expect_keyword("FROM")
    table, table_alias = _parse_table_reference(stream)
    joins = _parse_joins(stream)
    where = _parse_where(stream)
    group_by = _parse_group_by(stream)
    order_by = _parse_order_by(stream)
    bin_clause = _parse_bin(stream)
    limit = _parse_limit(stream)
    # clauses may legitimately appear in either order in nvBench-style queries
    if where is None and stream.current.is_keyword("WHERE"):
        where = _parse_where(stream)
    if order_by is None and stream.current.is_keyword("ORDER"):
        order_by = _parse_order_by(stream)
    if bin_clause is None and stream.current.is_keyword("BIN"):
        bin_clause = _parse_bin(stream)
    if not group_by and stream.current.is_keyword("GROUP"):
        group_by = _parse_group_by(stream)
    if limit is None and stream.current.is_keyword("LIMIT"):
        limit = _parse_limit(stream)
    if not stream.at_end():
        raise DVQParseError(
            f"Unexpected trailing input starting at {stream.current.lexeme!r}",
            token=stream.current,
        )
    return DVQuery(
        chart_type=chart_type,
        select=tuple(select),
        table=table,
        table_alias=table_alias,
        joins=tuple(joins),
        where=where,
        group_by=tuple(group_by),
        order_by=order_by,
        bin=bin_clause,
        limit=limit,
    )


def _parse_chart_type(stream: _TokenStream) -> ChartType:
    first = stream.advance()
    if first.type is not TokenType.KEYWORD:
        raise DVQParseError(f"Expected a chart type, found {first.lexeme!r}", token=first)
    if first.value in ("STACKED", "GROUPING"):
        second = stream.advance()
        return ChartType.from_text(f"{first.value} {second.value}")
    return ChartType.from_text(first.value)


def _parse_select_list(stream: _TokenStream) -> List[SelectItem]:
    items = [SelectItem(_parse_select_expr(stream))]
    while stream.current.type is TokenType.COMMA:
        stream.advance()
        items.append(SelectItem(_parse_select_expr(stream)))
    return items


def _parse_select_expr(stream: _TokenStream) -> SelectExpr:
    token = stream.current
    if token.type is TokenType.KEYWORD and token.value in AGGREGATES:
        stream.advance()
        stream.expect(TokenType.LPAREN)
        distinct = stream.match_keyword("DISTINCT") is not None
        argument = _parse_column_ref(stream, allow_star=True)
        stream.expect(TokenType.RPAREN)
        return AggregateExpr(
            function=AggregateFunction(token.value), argument=argument, distinct=distinct
        )
    return _parse_column_ref(stream, allow_star=True)


def _parse_column_ref(stream: _TokenStream, allow_star: bool = False) -> ColumnRef:
    token = stream.current
    if token.type is TokenType.STAR and allow_star:
        stream.advance()
        return ColumnRef(column="*")
    if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
        raise DVQParseError(f"Expected a column name, found {token.lexeme!r}", token=token)
    stream.advance()
    name = token.lexeme
    if stream.current.type is TokenType.DOT:
        stream.advance()
        column_token = stream.current
        if column_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise DVQParseError(
                f"Expected a column name after '.', found {column_token.lexeme!r}",
                token=column_token,
            )
        stream.advance()
        return ColumnRef(column=column_token.lexeme, table=name)
    return ColumnRef(column=name)


def _parse_table_reference(stream: _TokenStream) -> Tuple[str, Optional[str]]:
    token = stream.current
    if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
        raise DVQParseError(f"Expected a table name, found {token.lexeme!r}", token=token)
    stream.advance()
    alias = None
    if stream.match_keyword("AS"):
        alias_token = stream.expect(TokenType.IDENTIFIER)
        alias = alias_token.lexeme
    return token.lexeme, alias


def _parse_joins(stream: _TokenStream) -> List[JoinClause]:
    joins: List[JoinClause] = []
    while stream.current.is_keyword("JOIN"):
        stream.advance()
        table, alias = _parse_table_reference(stream)
        stream.expect_keyword("ON")
        left = _parse_column_ref(stream)
        operator = stream.expect(TokenType.OPERATOR)
        if operator.value != "=":
            raise DVQParseError("Joins must be equi-joins", token=operator)
        right = _parse_column_ref(stream)
        joins.append(JoinClause(table=table, left=left, right=right, alias=alias))
    return joins


def _parse_where(stream: _TokenStream) -> Optional[WhereClause]:
    if not stream.match_keyword("WHERE"):
        return None
    conditions = [_parse_condition(stream)]
    connectors: List[str] = []
    while stream.current.is_keyword("AND", "OR"):
        # `BETWEEN x AND y` consumes its own AND inside _parse_condition, so an
        # AND seen here is always a connector.
        connectors.append(stream.advance().value)
        conditions.append(_parse_condition(stream))
    return WhereClause(conditions=tuple(conditions), connectors=tuple(connectors))


def _parse_condition(stream: _TokenStream) -> Condition:
    column = _parse_column_ref(stream)
    token = stream.current
    if token.is_keyword("NOT"):
        stream.advance()
        follow = stream.current
        if follow.is_keyword("IN"):
            stream.advance()
            values = _parse_value_list(stream)
            return Condition(column=column, operator="IN", value=tuple(values), negated=True)
        if follow.is_keyword("LIKE"):
            stream.advance()
            value = _parse_literal(stream)
            return Condition(column=column, operator="LIKE", value=value, negated=True)
        raise DVQParseError(f"Unsupported NOT {follow.lexeme!r} condition", token=follow)
    if token.is_keyword("IS"):
        stream.advance()
        negated = stream.match_keyword("NOT") is not None
        stream.expect_keyword("NULL")
        return Condition(column=column, operator="IS NULL", negated=negated)
    if token.is_keyword("BETWEEN"):
        stream.advance()
        low = _parse_literal(stream)
        stream.expect_keyword("AND")
        high = _parse_literal(stream)
        return Condition(column=column, operator="BETWEEN", value=low, value2=high)
    if token.is_keyword("IN"):
        stream.advance()
        values = _parse_value_list(stream)
        return Condition(column=column, operator="IN", value=tuple(values))
    if token.is_keyword("LIKE"):
        stream.advance()
        value = _parse_literal(stream)
        return Condition(column=column, operator="LIKE", value=value)
    if token.type is TokenType.OPERATOR:
        stream.advance()
        value = _parse_literal(stream)
        operator = "!=" if token.value == "<>" else token.value
        return Condition(column=column, operator=operator, value=value)
    raise DVQParseError(f"Expected a comparison operator, found {token.lexeme!r}", token=token)


def _parse_value_list(stream: _TokenStream) -> List[object]:
    stream.expect(TokenType.LPAREN)
    values = [_parse_literal(stream)]
    while stream.current.type is TokenType.COMMA:
        stream.advance()
        values.append(_parse_literal(stream))
    stream.expect(TokenType.RPAREN)
    return values


def _parse_literal(stream: _TokenStream) -> object:
    token = stream.current
    if token.type is TokenType.NUMBER:
        stream.advance()
        if "." in token.value:
            return float(token.value)
        return int(token.value)
    if token.type is TokenType.STRING:
        stream.advance()
        return token.value
    if token.is_keyword("NULL"):
        stream.advance()
        return None
    if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
        # bare-word literals occur in nvBench-style queries (e.g. = Finance)
        stream.advance()
        return token.lexeme
    raise DVQParseError(f"Expected a literal value, found {token.lexeme!r}", token=token)


def _parse_group_by(stream: _TokenStream) -> List[ColumnRef]:
    if not stream.current.is_keyword("GROUP"):
        return []
    stream.advance()
    stream.expect_keyword("BY")
    columns = [_parse_column_ref(stream)]
    while stream.current.type is TokenType.COMMA:
        stream.advance()
        columns.append(_parse_column_ref(stream))
    return columns


def _parse_order_by(stream: _TokenStream) -> Optional[OrderClause]:
    if not stream.current.is_keyword("ORDER"):
        return None
    stream.advance()
    stream.expect_keyword("BY")
    expr = _parse_select_expr(stream)
    direction = SortDirection.ASC
    if stream.current.is_keyword("ASC", "DESC"):
        direction = SortDirection(stream.advance().value)
    return OrderClause(expr=expr, direction=direction)


def _parse_limit(stream: _TokenStream) -> Optional[int]:
    if not stream.current.is_keyword("LIMIT"):
        return None
    keyword = stream.advance()
    token = stream.expect(TokenType.NUMBER)
    if "." in token.value or token.value.startswith("-"):
        raise DVQParseError(
            f"LIMIT expects a non-negative integer, found {token.lexeme!r}", token=keyword
        )
    return int(token.value)


def _parse_bin(stream: _TokenStream) -> Optional[BinClause]:
    if not stream.current.is_keyword("BIN"):
        return None
    stream.advance()
    column = _parse_column_ref(stream)
    stream.expect_keyword("BY")
    unit_token = stream.advance()
    try:
        unit = BinUnit(unit_token.value.upper())
    except ValueError as exc:
        raise DVQParseError(f"Unknown bin unit {unit_token.lexeme!r}", token=unit_token) from exc
    return BinClause(column=column, unit=unit)
