"""Extraction of the Vis / Axis / Data components used by the paper's metrics.

Appendix A of the paper defines four accuracies.  Three of them compare
individual query components:

* **Vis accuracy** — the chart type matches.
* **Axis accuracy** — the x/y (and optional colour) encodings match.
* **Data accuracy** — the data transformation (source tables, filters,
  grouping, ordering, binning) matches.

This module turns a :class:`~repro.dvq.nodes.DVQuery` into hashable component
objects so the metric computations reduce to equality checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dvq.nodes import AggregateExpr, ColumnRef, DVQuery, SelectItem


@dataclass(frozen=True)
class VisComponent:
    """The chart-type component of a DVQ."""

    chart_type: str


@dataclass(frozen=True)
class AxisComponent:
    """The axis (encoding) component of a DVQ.

    Each channel is represented as a ``(aggregate, column)`` pair with the
    aggregate name empty for bare columns.  Comparison is case-insensitive on
    column names because nvBench treats column identifiers case-insensitively.
    """

    x: Tuple[str, str]
    y: Tuple[str, str]
    color: Optional[Tuple[str, str]] = None


@dataclass(frozen=True)
class DataComponent:
    """The data-transformation component of a DVQ."""

    tables: Tuple[str, ...]
    conditions: Tuple[Tuple[str, str, str], ...]
    connectors: Tuple[str, ...]
    group_by: Tuple[str, ...]
    order_by: Optional[Tuple[str, str, str]]
    bin: Optional[Tuple[str, str]]
    limit: Optional[int] = None


@dataclass(frozen=True)
class QueryComponents:
    """All three components of a query, as used by the evaluator."""

    vis: VisComponent
    axis: AxisComponent
    data: DataComponent


def _channel_key(item: SelectItem) -> Tuple[str, str]:
    if isinstance(item.expr, AggregateExpr):
        aggregate = item.expr.function.value
        column = item.expr.argument.column.lower()
        if item.expr.distinct:
            aggregate = f"{aggregate} DISTINCT"
        return aggregate, column
    return "", item.expr.column.lower()


def _column_key(column: ColumnRef) -> str:
    return column.column.lower()


def _literal_key(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, str):
        return value.lower()
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, tuple):
        return ",".join(sorted(_literal_key(item) for item in value))
    return str(value)


def extract_components(query: DVQuery) -> QueryComponents:
    """Extract the Vis, Axis and Data components from ``query``."""
    vis = VisComponent(chart_type=query.chart_type.value)

    x_key = _channel_key(query.x)
    y_key = _channel_key(query.y)
    color_key = _channel_key(query.color) if query.color is not None else None
    axis = AxisComponent(x=x_key, y=y_key, color=color_key)

    tables = tuple(sorted(table.lower() for table in query.referenced_tables()))
    conditions = []
    connectors: Tuple[str, ...] = ()
    if query.where is not None:
        for condition in query.where.conditions:
            operator = condition.operator.upper()
            if condition.negated:
                operator = f"NOT {operator}"
            value_key = _literal_key(condition.value)
            if condition.operator.upper() == "BETWEEN":
                value_key = f"{value_key}..{_literal_key(condition.value2)}"
            conditions.append((_column_key(condition.column), operator, value_key))
        connectors = tuple(connector.upper() for connector in query.where.connectors)
    group_by = tuple(sorted(_column_key(column) for column in query.group_by))
    order_by = None
    if query.order_by is not None:
        if isinstance(query.order_by.expr, AggregateExpr):
            order_column = query.order_by.expr.argument.column.lower()
            order_aggregate = query.order_by.expr.function.value
        else:
            order_column = query.order_by.expr.column.lower()
            order_aggregate = ""
        order_by = (order_aggregate, order_column, query.order_by.direction.value)
    bin_key = None
    if query.bin is not None:
        bin_key = (_column_key(query.bin.column), query.bin.unit.value)
    data = DataComponent(
        tables=tables,
        conditions=tuple(sorted(conditions)),
        connectors=connectors,
        group_by=group_by,
        order_by=order_by,
        bin=bin_key,
        limit=query.limit,
    )
    return QueryComponents(vis=vis, axis=axis, data=data)
