"""Canonicalisation helpers for DVQ comparison.

Exact-match accuracy in nvBench tolerates superficial differences such as token
spacing, keyword casing and quote style, while being sensitive to column-name
casing differences only up to case-insensitive identity.  ``normalize_dvq_text``
re-serializes a query through the parser so two strings compare equal exactly
when their ASTs carry the same information.
"""

from __future__ import annotations

from typing import Optional

from repro.dvq.components import extract_components
from repro.dvq.errors import DVQError
from repro.dvq.nodes import DVQuery
from repro.dvq.parser import parse_dvq
from repro.dvq.serializer import serialize_dvq


def normalize_dvq_text(text: str) -> str:
    """Return the canonical serialization of ``text``.

    Falls back to whitespace-normalised, upper-cased text when the query cannot
    be parsed (model outputs are frequently malformed).
    """
    try:
        return serialize_dvq(parse_dvq(text))
    except DVQError:
        return " ".join(text.upper().split())


def try_parse(text: str) -> Optional[DVQuery]:
    """Parse ``text``, returning ``None`` on any DVQ error."""
    try:
        return parse_dvq(text)
    except DVQError:
        return None


def queries_match(predicted: str, target: str) -> bool:
    """True when two DVQ strings are equivalent under component comparison.

    Two queries match when all three components (Vis, Axis, Data) are equal,
    which is the paper's overall exact-match criterion.  Unparseable predictions
    only match via literal (case-insensitive) string equality.
    """
    predicted_ast = try_parse(predicted)
    target_ast = try_parse(target)
    if predicted_ast is None or target_ast is None:
        return " ".join(predicted.lower().split()) == " ".join(target.lower().split())
    return extract_components(predicted_ast) == extract_components(target_ast)
