"""Exception hierarchy for the DVQ language toolchain."""


class DVQError(Exception):
    """Base class for all DVQ language errors."""


class DVQTokenizeError(DVQError):
    """Raised when the tokenizer encounters an invalid character sequence."""

    def __init__(self, message, position=None, text=None):
        super().__init__(message)
        self.position = position
        self.text = text


class DVQParseError(DVQError):
    """Raised when the parser cannot build an AST from a token stream."""

    def __init__(self, message, token=None):
        super().__init__(message)
        self.token = token


class DVQValidationError(DVQError):
    """Raised when an AST is structurally valid but semantically inconsistent."""
