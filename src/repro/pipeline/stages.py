"""The :class:`Stage` protocol and GRED's concrete pipeline stages.

Each stage is a small object with a ``name`` and a ``run(context)`` method
that reads and mutates a :class:`~repro.pipeline.context.StageContext`.  The
three paper stages (generate / retune / debug) wrap the existing LLM callers
unchanged; the execution-aware stages (verify / repair) close the loop
between the :class:`~repro.executor.backend.ExecutionBackend` and the LLM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from repro.dvq.normalize import try_parse
from repro.executor.backend import (
    ExecutionBackend,
    ExecutionOutcome,
    parse_failure_outcome,
)
from repro.pipeline.context import StageContext

if TYPE_CHECKING:  # imported lazily to keep repro.pipeline importable standalone
    from repro.core.debugger import AnnotationBasedDebugger
    from repro.core.generator import NLQRetrievalGenerator
    from repro.core.retuner import DVQRetrievalRetuner

#: Canonical stage names; timings and records use these keys.
GENERATE, RETUNE, DEBUG, REPAIR, VERIFY = "generate", "retune", "debug", "repair", "verify"


@runtime_checkable
class Stage(Protocol):
    """One step of a stage plan.

    Implementations read the current candidate from ``context.dvq`` and
    publish their result with :meth:`StageContext.advance` (and, for
    execution-aware stages, :meth:`StageContext.set_outcome`), so any stage
    can be composed with any other.
    """

    name: str

    def run(self, context: StageContext) -> None:
        ...  # pragma: no cover - protocol stub


class GenerateStage:
    """Stage (a): the NLQ-Retrieval Generator produces the initial candidate."""

    name = GENERATE

    def __init__(self, generator: NLQRetrievalGenerator):
        self.generator = generator

    def run(self, context: StageContext) -> None:
        context.advance(self.name, self.generator.generate(context.nlq, context.database))


class RetuneStage:
    """Stage (b): the DVQ-Retrieval Retuner restyles a non-empty candidate."""

    name = RETUNE

    def __init__(self, retuner: DVQRetrievalRetuner):
        self.retuner = retuner

    def run(self, context: StageContext) -> None:
        dvq = self.retuner.retune(context.dvq) if context.dvq else context.dvq
        context.advance(self.name, dvq)


class DebugStage:
    """Stage (c): the Annotation-based Debugger repairs schema references."""

    name = DEBUG

    def __init__(self, debugger: AnnotationBasedDebugger):
        self.debugger = debugger

    def run(self, context: StageContext) -> None:
        dvq = self.debugger.debug(context.dvq, context.database) if context.dvq else context.dvq
        context.advance(self.name, dvq)


def check_execution(
    backend: ExecutionBackend, dvq: str, context: StageContext
) -> ExecutionOutcome:
    """Parse and execute ``dvq`` against the context's database, classified."""
    parsed = try_parse(dvq)
    if parsed is None:
        return parse_failure_outcome(dvq)
    return backend.explain_failure(parsed, context.database)


class VerifyExecutionStage:
    """Executes the candidate and records the structured verdict.

    The paper's "no chart" check as a plan stage.  Reuses the verdict left by
    an earlier execution-aware stage (the repair loop) when the candidate has
    not changed since, so enabling both costs one execution, not two.
    """

    name = VERIFY

    def __init__(self, backend: ExecutionBackend):
        self.backend = backend

    def run(self, context: StageContext) -> None:
        outcome = context.cached_outcome()
        if outcome is None:
            outcome = check_execution(self.backend, context.dvq, context)
        context.advance(self.name, context.dvq, detail=outcome.diagnosis())
        context.set_outcome(outcome)


class ExecutionGuidedRepairStage:
    """Runs the candidate and feeds execution failures back into the debugger.

    The loop that turns ``verify_execution`` from a metric into a
    self-correction subsystem: execute the candidate on the configured
    backend; on failure, hand the structured
    :class:`~repro.executor.backend.ExecutionOutcome` to
    :meth:`~repro.core.debugger.AnnotationBasedDebugger.repair` and try
    again, for up to ``max_rounds`` rounds.  The loop stops early when the
    candidate executes or when a round makes no progress (the repairer
    returned the candidate unchanged).
    """

    name = REPAIR

    def __init__(
        self,
        debugger: AnnotationBasedDebugger,
        backend: ExecutionBackend,
        max_rounds: int = 1,
    ):
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.debugger = debugger
        self.backend = backend
        self.max_rounds = max_rounds

    def run(self, context: StageContext) -> None:
        outcome = context.cached_outcome()
        if outcome is None:
            outcome = check_execution(self.backend, context.dvq, context)
        initially_ok = outcome.ok
        rounds = 0
        while not outcome.ok and rounds < self.max_rounds:
            repaired = self.debugger.repair(context.dvq, context.database, outcome)
            rounds += 1
            if not repaired or repaired == context.dvq:
                context.advance(
                    self.name,
                    context.dvq,
                    detail=f"round {rounds}: no progress on {outcome.category}",
                )
                break
            context.advance(self.name, repaired, detail=f"round {rounds}: {outcome.diagnosis()}")
            outcome = check_execution(self.backend, repaired, context)
        context.repair_rounds += rounds
        context.set_outcome(outcome)
        context.meta[self.name] = {
            "initially_ok": initially_ok,
            "rounds": rounds,
            "final_ok": outcome.ok,
        }


def stage_name(stage: Stage) -> str:
    """The stage's public name (tolerates plain callables in custom plans)."""
    name: Optional[str] = getattr(stage, "name", None)
    return name or type(stage).__name__
