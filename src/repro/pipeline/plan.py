"""Declarative stage plans: the pipeline as data instead of branches.

A :class:`StagePlan` is an immutable sequence of stages plus a middleware
chain.  :func:`build_stage_plan` derives the default plan from a
:class:`~repro.core.config.GREDConfig` — ablation switches and the repair /
verify knobs become *plan edits* (a stage present or absent) rather than
``if`` branches inside the run loop, and custom experiments edit plans with
:meth:`~StagePlan.without` / :meth:`~StagePlan.with_stage` /
:meth:`~StagePlan.replaced` instead of subclassing the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.executor.backend import ExecutionBackend
from repro.pipeline.context import StageContext
from repro.pipeline.middleware import CacheStatsMiddleware, Middleware, TimingMiddleware
from repro.pipeline.stages import (
    DebugStage,
    ExecutionGuidedRepairStage,
    GenerateStage,
    RetuneStage,
    Stage,
    VerifyExecutionStage,
    stage_name,
)
from repro.runtime.cache import LLMCache

if TYPE_CHECKING:  # type-only: keeps repro.pipeline importable without repro.core
    from repro.core.config import GREDConfig
    from repro.core.debugger import AnnotationBasedDebugger
    from repro.core.generator import NLQRetrievalGenerator
    from repro.core.retuner import DVQRetrievalRetuner


@dataclass(frozen=True)
class StagePlan:
    """An executable pipeline: ordered stages wrapped by shared middleware.

    Plans are values — every edit returns a new plan — so a fitted model can
    expose its plan and callers can derive variants without mutating shared
    state.
    """

    stages: Tuple[Stage, ...]
    middleware: Tuple[Middleware, ...] = ()

    def names(self) -> Tuple[str, ...]:
        return tuple(stage_name(stage) for stage in self.stages)

    def describe(self) -> str:
        """Human-readable dataflow, e.g. ``generate -> retune -> debug``."""
        return " -> ".join(self.names()) or "<empty plan>"

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage_name(stage) == name:
                return stage
        raise KeyError(f"Plan has no stage {name!r} (stages: {self.describe()})")

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    # -- execution -----------------------------------------------------------

    def run(self, context: StageContext) -> StageContext:
        """Run every stage in order over ``context`` and return it."""
        for stage in self.stages:
            runner = stage.run
            for middleware in reversed(self.middleware):
                runner = middleware.wrap(stage, runner)
            runner(context)
        return context

    # -- plan edits ----------------------------------------------------------

    def _index(self, name: str) -> int:
        for index, stage in enumerate(self.stages):
            if stage_name(stage) == name:
                return index
        raise KeyError(f"Plan has no stage {name!r} (stages: {self.describe()})")

    def with_stage(
        self, stage: Stage, before: Optional[str] = None, after: Optional[str] = None
    ) -> "StagePlan":
        """A plan with ``stage`` inserted (appended when no anchor is given)."""
        if before is not None and after is not None:
            raise ValueError("Pass at most one of before/after")
        stages = list(self.stages)
        if before is not None:
            stages.insert(self._index(before), stage)
        elif after is not None:
            stages.insert(self._index(after) + 1, stage)
        else:
            stages.append(stage)
        return replace(self, stages=tuple(stages))

    def without(self, name: str) -> "StagePlan":
        """A plan with the named stage removed (missing stages are ignored)."""
        stages = tuple(stage for stage in self.stages if stage_name(stage) != name)
        return replace(self, stages=stages)

    def replaced(self, name: str, stage: Stage) -> "StagePlan":
        """A plan with the named stage swapped for ``stage``."""
        index = self._index(name)
        stages = list(self.stages)
        stages[index] = stage
        return replace(self, stages=tuple(stages))

    def with_middleware(self, *middleware: Middleware) -> "StagePlan":
        """A plan with extra middleware appended (innermost last)."""
        return replace(self, middleware=self.middleware + tuple(middleware))


def default_middleware(llm_cache: Optional[LLMCache] = None) -> Tuple[Middleware, ...]:
    """Timing always; per-stage cache accounting when a cache is interposed."""
    middleware: Tuple[Middleware, ...] = (TimingMiddleware(),)
    if llm_cache is not None:
        middleware += (CacheStatsMiddleware(llm_cache),)
    return middleware


def build_stage_plan(
    config: "GREDConfig",
    generator: "NLQRetrievalGenerator",
    retuner: "DVQRetrievalRetuner",
    debugger: "AnnotationBasedDebugger",
    execution_backend: Optional[ExecutionBackend] = None,
    llm_cache: Optional[LLMCache] = None,
    middleware: Optional[Sequence[Middleware]] = None,
) -> StagePlan:
    """The default GRED plan for ``config``.

    Ablation switches map one-to-one onto stage membership:

    * ``use_retuner`` / ``use_debugger`` include stages (b) and (c);
    * ``max_repair_rounds > 0`` appends the execution-guided repair loop;
    * ``verify_execution`` appends the final execution check (which reuses
      the repair loop's verdict when both are enabled).

    Raises:
        ValueError: when a stage needs an execution backend and none was
            given.
    """
    stages: Tuple[Stage, ...] = (GenerateStage(generator),)
    if config.use_retuner:
        stages += (RetuneStage(retuner),)
    if config.use_debugger:
        stages += (DebugStage(debugger),)
    if config.max_repair_rounds > 0:
        if execution_backend is None:
            raise ValueError(
                "max_repair_rounds > 0 requires an execution backend "
                "(set GREDConfig.execution_backend)"
            )
        stages += (
            ExecutionGuidedRepairStage(
                debugger, execution_backend, max_rounds=config.max_repair_rounds
            ),
        )
    if config.verify_execution:
        if execution_backend is None:
            raise ValueError("verify_execution requires an execution backend")
        stages += (VerifyExecutionStage(execution_backend),)
    if middleware is None:
        middleware = default_middleware(llm_cache)
    return StagePlan(stages=stages, middleware=tuple(middleware))
