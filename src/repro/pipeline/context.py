"""The state a stage plan threads through its stages.

A :class:`StageContext` carries one prediction's inputs (NLQ, target
database), the current DVQ candidate, and the full artifact history — one
:class:`StageRecord` per stage execution.  Stages communicate exclusively
through the context, which is what makes plans composable: inserting,
removing or reordering stages never requires touching another stage's code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.database.database import Database
from repro.executor.backend import ExecutionOutcome


@dataclass(frozen=True)
class StageRecord:
    """One stage execution: which stage ran and the candidate it left behind.

    Attributes:
        stage: stage name (``generate`` / ``retune`` / ``debug`` / ``repair``
            / ``verify``).
        dvq: the DVQ candidate after the stage ran.
        changed: whether the stage altered the candidate.
        detail: optional structured note — the repair stage records the
            failure diagnosis it acted on, the verify stage its verdict.
    """

    stage: str
    dvq: str
    changed: bool = False
    detail: str = ""


@dataclass
class StageContext:
    """Mutable state shared by the stages of one pipeline run.

    Attributes:
        nlq: the natural-language question being answered.
        database: the target database.
        dvq: the current DVQ candidate (empty before the first stage).
        records: chronological artifact history, one record per stage run.
        timings: per-stage wall-clock seconds, stamped by
            :class:`~repro.pipeline.middleware.TimingMiddleware`.
        executes: whether the final candidate executed, when any
            execution-aware stage (verify / repair) ran; ``None`` otherwise.
        outcome: the structured verdict of the most recent execution check.
        outcome_dvq: the candidate ``outcome`` was computed for — lets a
            later stage reuse the verdict instead of re-executing when the
            candidate has not changed since.
        repair_rounds: LLM repair rounds spent by the repair stage.
        meta: free-form per-run annotations (cache statistics, repair
            summaries, ...) keyed by producer.
    """

    nlq: str
    database: Database
    dvq: str = ""
    records: List[StageRecord] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    executes: Optional[bool] = None
    outcome: Optional[ExecutionOutcome] = None
    outcome_dvq: Optional[str] = None
    repair_rounds: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    def advance(self, stage: str, dvq: str, detail: str = "") -> StageRecord:
        """Install ``dvq`` as the current candidate and record the step."""
        record = StageRecord(stage=stage, dvq=dvq, changed=dvq != self.dvq, detail=detail)
        self.records.append(record)
        self.dvq = dvq
        return record

    def set_outcome(self, outcome: ExecutionOutcome) -> None:
        """Install an execution verdict for the *current* candidate."""
        self.outcome = outcome
        self.outcome_dvq = self.dvq
        self.executes = outcome.ok

    def cached_outcome(self) -> Optional[ExecutionOutcome]:
        """The stored verdict, if it still describes the current candidate."""
        if self.outcome is not None and self.outcome_dvq == self.dvq:
            return self.outcome
        return None
