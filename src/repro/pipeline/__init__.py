"""Composable stage-plan pipeline.

The subsystem that turned ``GRED.trace``'s hard-coded ``if`` branches into
data: a :class:`Stage` protocol, a :class:`StageContext` threading the
NLQ / database / candidate / artifact history through the run, immutable
:class:`StagePlan` values built from :class:`~repro.core.config.GREDConfig`
(:func:`build_stage_plan`), and middleware for timing, cache accounting and
retries.  :class:`ExecutionGuidedRepairStage` closes the loop between the
execution backend and the debugging LLM — see ``docs/architecture.md``
("Stage plans and the execution-guided repair loop").
"""

from repro.pipeline.context import StageContext, StageRecord
from repro.pipeline.middleware import (
    CacheStatsMiddleware,
    Middleware,
    RetryMiddleware,
    StageRunner,
    TimingMiddleware,
)
from repro.pipeline.plan import StagePlan, build_stage_plan, default_middleware
from repro.pipeline.stages import (
    DEBUG,
    GENERATE,
    REPAIR,
    RETUNE,
    VERIFY,
    DebugStage,
    ExecutionGuidedRepairStage,
    GenerateStage,
    RetuneStage,
    Stage,
    VerifyExecutionStage,
    check_execution,
    stage_name,
)

__all__ = [
    "DEBUG",
    "GENERATE",
    "REPAIR",
    "RETUNE",
    "VERIFY",
    "CacheStatsMiddleware",
    "DebugStage",
    "ExecutionGuidedRepairStage",
    "GenerateStage",
    "Middleware",
    "RetryMiddleware",
    "RetuneStage",
    "Stage",
    "StageContext",
    "StagePlan",
    "StageRecord",
    "StageRunner",
    "TimingMiddleware",
    "VerifyExecutionStage",
    "build_stage_plan",
    "check_execution",
    "default_middleware",
    "stage_name",
]
