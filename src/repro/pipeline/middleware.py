"""Cross-cutting stage wrappers: timing, LLM-cache accounting, retries.

Middleware composes *around* stages instead of being threaded through them:
``GRED.trace`` historically sprinkled ``time.perf_counter()`` pairs around
each stage call; the :class:`TimingMiddleware` replaces all of them with one
wrapper applied uniformly by the plan.  A middleware receives the stage and
its run callable and returns a new callable — the plan applies them
outermost-first, so ``(timing, retry)`` times the retries it wraps.
"""

from __future__ import annotations

from typing import Callable, Protocol, Tuple, Type, runtime_checkable

from repro.pipeline.context import StageContext
from repro.pipeline.stages import Stage, stage_name
from repro.runtime.cache import LLMCache
from repro.runtime.timing import Stopwatch

#: What a middleware wraps and returns: one stage execution over a context.
StageRunner = Callable[[StageContext], None]


@runtime_checkable
class Middleware(Protocol):
    """Wraps a stage's run callable with cross-cutting behaviour."""

    def wrap(self, stage: Stage, run: StageRunner) -> StageRunner:
        ...  # pragma: no cover - protocol stub


class TimingMiddleware:
    """Stamps each stage's wall-clock seconds onto ``context.timings``.

    Durations accumulate per stage name, so a stage appearing twice in a plan
    (or re-run by the retry middleware) reports its total time under one key
    — the same contract :func:`repro.runtime.timing.aggregate_stage_timings`
    consumed when the pipeline stamped timings by hand.
    """

    def wrap(self, stage: Stage, run: StageRunner) -> StageRunner:
        name = stage_name(stage)

        def timed(context: StageContext) -> None:
            with Stopwatch() as watch:
                run(context)
            context.timings[name] = context.timings.get(name, 0.0) + watch.seconds

        return timed


class CacheStatsMiddleware:
    """Attributes LLM-cache hits and misses to the stage that caused them.

    Requires the pipeline's chat model to be wrapped in an
    :class:`~repro.runtime.cache.LLMCache`; after each stage the hit/miss
    deltas are recorded under ``context.meta["llm_cache"][<stage>]``, giving
    per-stage cache effectiveness without touching any stage code.

    The counters are snapshots of the *shared* cache, so when traces run
    concurrently (``BatchRunner`` with ``max_workers > 1``) a stage's delta
    can include requests issued by sibling threads — treat per-stage numbers
    as exact under serial execution and as approximate attribution under
    concurrency (the cache's own :class:`~repro.runtime.cache.CacheStats`
    stay exact either way).
    """

    def __init__(self, cache: LLMCache):
        self.cache = cache

    def wrap(self, stage: Stage, run: StageRunner) -> StageRunner:
        name = stage_name(stage)

        def counted(context: StageContext) -> None:
            hits, misses = self.cache.stats.hits, self.cache.stats.misses
            run(context)
            bucket = context.meta.setdefault("llm_cache", {})
            delta = {
                "hits": self.cache.stats.hits - hits,
                "misses": self.cache.stats.misses - misses,
            }
            previous = bucket.get(name)
            if previous is not None:
                delta = {key: previous[key] + delta[key] for key in delta}
            bucket[name] = delta

        return counted


class RetryMiddleware:
    """Re-runs a stage that raised, up to ``attempts`` total tries.

    Meant for plans running against *real* chat endpoints where transient
    failures (rate limits, network) are expected; the deterministic simulated
    model never needs it.  Before each re-run the context's pipeline state
    (candidate, records, execution verdict, repair counter) is rolled back to
    the pre-stage snapshot, so a stage that mutated the context mid-flight —
    the repair loop records each round as it happens — leaves no artifacts of
    the aborted attempt behind.
    """

    def __init__(self, attempts: int = 2, retry_on: Tuple[Type[BaseException], ...] = (Exception,)):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = attempts
        self.retry_on = retry_on

    def wrap(self, stage: Stage, run: StageRunner) -> StageRunner:
        def retried(context: StageContext) -> None:
            snapshot = (
                context.dvq,
                len(context.records),
                context.repair_rounds,
                context.executes,
                context.outcome,
                context.outcome_dvq,
            )
            for attempt in range(1, self.attempts + 1):
                try:
                    run(context)
                    return
                except self.retry_on:
                    if attempt == self.attempts:
                        raise
                    # roll back the aborted attempt's partial mutations
                    (
                        context.dvq,
                        kept,
                        context.repair_rounds,
                        context.executes,
                        context.outcome,
                        context.outcome_dvq,
                    ) = snapshot
                    del context.records[kept:]
                    context.meta[f"retry:{stage_name(stage)}"] = attempt

        return retried
