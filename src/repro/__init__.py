"""repro: reproduction of "Towards Robustness of Text-to-Visualization Translation
against Lexical and Phrasal Variability" (nvBench-Rob + GRED).

Top-level convenience imports; see the subpackages for the full API:

* :mod:`repro.dvq` — the DVQ (Vega-Zero) language toolchain.
* :mod:`repro.database` / :mod:`repro.executor` / :mod:`repro.vegalite` — the
  relational and visualization substrates.
* :mod:`repro.plan` — the logical-plan IR, planner and optimizer every
  execution engine lowers from.
* :mod:`repro.nvbench` / :mod:`repro.robustness` — the synthetic nvBench corpus
  and the nvBench-Rob perturbation suite.
* :mod:`repro.models` — the Seq2Vis / Transformer / RGVisNet baselines.
* :mod:`repro.core` — GRED, the paper's contribution.
* :mod:`repro.evaluation` / :mod:`repro.experiments` — metrics and the harness
  that regenerates every table and figure.
* :mod:`repro.runtime` — the batched, cached execution engine (thread-pooled
  :class:`~repro.runtime.runner.BatchRunner`, completion-memoizing
  :class:`~repro.runtime.cache.LLMCache`).
"""

from repro.core.config import GREDConfig
from repro.core.pipeline import GRED
from repro.evaluation.metrics import evaluate_predictions
from repro.experiments.workbench import Workbench, WorkbenchConfig
from repro.nvbench.generator import CorpusConfig, NVBenchGenerator, build_corpus
from repro.robustness.variants import RobustnessSuiteBuilder, VariantKind
from repro.runtime import BatchRunner, LLMCache

__version__ = "1.1.0"

__all__ = [
    "BatchRunner",
    "CorpusConfig",
    "GRED",
    "GREDConfig",
    "LLMCache",
    "NVBenchGenerator",
    "RobustnessSuiteBuilder",
    "VariantKind",
    "Workbench",
    "WorkbenchConfig",
    "build_corpus",
    "evaluate_predictions",
    "__version__",
]
