"""RGVisNet: the retrieval-generation hybrid and previous SOTA (Song et al., 2022).

RGVisNet retrieves the most similar DVQ from a codebase of training queries and
revises it with a neural model conditioned on the question and the schema.  We
reproduce its two defining behaviours:

* prototype retrieval by question similarity (dense embeddings over the
  training NLQs), which keeps its structural accuracy high; and
* lexical revision of schema tokens — when the question no longer mentions a
  column explicitly, the revision keeps the *prototype's* column names, exactly
  the failure shown in the paper's case study ("RGVisNet still choosing the
  same column name ACC_Percent as in the training data").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.dvq.normalize import try_parse
from repro.dvq.serializer import serialize_dvq
from repro.embeddings.embedder import EmbedderConfig, TextEmbedder
from repro.embeddings.store import VectorStore
from repro.index import IndexConfig
from repro.linking.linker import SchemaLinker
from repro.models.base import TextToVisModel, signals_from_sketch, sketch_targets
from repro.neural.features import BagOfWordsFeaturizer
from repro.neural.mlp import TrainingConfig
from repro.neural.multihead import MultiHeadSketchClassifier
from repro.nlu.composer import QueryComposer, StructurePrior
from repro.nvbench.example import NVBenchExample


class RGVisNetModel(TextToVisModel):
    """The RGVisNet baseline (previous state of the art)."""

    name = "RGVisNet"

    def __init__(self, max_train_examples: int = 4000,
                 training_config: Optional[TrainingConfig] = None,
                 embedder: Optional[TextEmbedder] = None,
                 index_config: Optional[IndexConfig] = None):
        self.max_train_examples = max_train_examples
        self.index_config = index_config
        self.training_config = training_config or TrainingConfig(hidden_size=64, epochs=12, seed=23)
        self.classifier = MultiHeadSketchClassifier(
            config=self.training_config,
            featurizer=BagOfWordsFeaturizer(),
        )
        self.embedder = embedder or TextEmbedder(EmbedderConfig(dimensions=384, seed=5))
        self.store: Optional[VectorStore] = None
        # lexical revision with sub-word similarity but no synonym knowledge
        self.linker = SchemaLinker(use_synonyms=False, use_char_similarity=True, min_score=0.4)
        self._fitted = False

    def fit(self, examples: Sequence[NVBenchExample], catalog: Catalog) -> "RGVisNetModel":
        examples = list(examples)[: self.max_train_examples]
        questions: List[str] = []
        targets: List[Dict[str, str]] = []
        for example in examples:
            sketch = sketch_targets(example.dvq)
            if sketch is None:
                continue
            questions.append(example.nlq)
            targets.append(sketch)
        self.classifier.fit(questions, targets)
        self.embedder.fit(example.nlq for example in examples)
        self.store = VectorStore(self.embedder, config=self.index_config)
        for example in examples:
            self.store.add(example.example_id, example.nlq, example)
        self._fitted = True
        return self

    def _retrieve_prototype(self, nlq: str) -> Optional[NVBenchExample]:
        if self.store is None or not len(self.store):
            return None
        hits = self.store.search(nlq, top_k=1)
        return hits[0].payload if hits else None

    def predict(self, nlq: str, database: Database) -> str:
        if not self._fitted:
            raise RuntimeError("RGVisNetModel.predict called before fit")
        signals = signals_from_sketch(self.classifier.predict(nlq))
        prototype = self._retrieve_prototype(nlq)
        prior = StructurePrior()
        if prototype is not None:
            prototype_query = try_parse(prototype.dvq)
            if prototype_query is not None:
                prior = StructurePrior.from_query(prototype_query)
                # the retrieved prototype also informs the chart type when the
                # classifier is unsure (its revision GNN keeps the prototype mark)
                if signals.chart_type is None:
                    signals.chart_type = prototype_query.chart_type
        composer = QueryComposer(linker=self.linker)
        query = composer.compose(nlq, database.schema, prior=prior, signals=signals)
        return serialize_dvq(query)
