"""Seq2Vis: the sequence-to-sequence baseline (Luo et al., 2021).

The reproduction keeps the two properties that drive Seq2Vis's robustness
behaviour: a trained encoder-decoder that predicts the query sketch from the
question, and an output vocabulary limited to tokens observed during training.
Schema tokens are copied only through *exact* lexical matches between question
words and column names — the over-reliance the paper documents.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.dvq.serializer import serialize_dvq
from repro.linking.linker import SchemaLinker
from repro.models.base import (
    TextToVisModel,
    collect_training_columns,
    signals_from_sketch,
    sketch_targets,
)
from repro.neural.features import BagOfWordsFeaturizer
from repro.neural.mlp import TrainingConfig
from repro.neural.multihead import MultiHeadSketchClassifier
from repro.nlu.composer import QueryComposer, StructurePrior
from repro.nvbench.example import NVBenchExample
from repro.dvq.normalize import try_parse


class Seq2VisModel(TextToVisModel):
    """The Seq2Vis baseline."""

    name = "Seq2Vis"

    def __init__(self, max_train_examples: int = 4000,
                 training_config: Optional[TrainingConfig] = None):
        self.max_train_examples = max_train_examples
        self.training_config = training_config or TrainingConfig(hidden_size=48, epochs=10, seed=11)
        self.classifier = MultiHeadSketchClassifier(
            config=self.training_config,
            featurizer=BagOfWordsFeaturizer(),
        )
        # exact-match lexical linking only: no synonyms, no sub-word similarity
        self.linker = SchemaLinker(use_synonyms=False, use_char_similarity=False, min_score=0.5)
        self._memory_featurizer = BagOfWordsFeaturizer(use_bigrams=False)
        self._memory_matrix: Optional[np.ndarray] = None
        self._memory_examples: List[NVBenchExample] = []
        self._vocabulary_columns: List[str] = []
        self._fitted = False

    # -- training ---------------------------------------------------------------

    def fit(self, examples: Sequence[NVBenchExample], catalog: Catalog) -> "Seq2VisModel":
        examples = list(examples)[: self.max_train_examples]
        questions: List[str] = []
        targets: List[Dict[str, str]] = []
        for example in examples:
            sketch = sketch_targets(example.dvq)
            if sketch is None:
                continue
            questions.append(example.nlq)
            targets.append(sketch)
        self.classifier.fit(questions, targets)
        self._vocabulary_columns = collect_training_columns(examples)
        self._memory_examples = examples
        self._memory_featurizer.fit(example.nlq for example in examples)
        self._memory_matrix = self._memory_featurizer.transform(
            [example.nlq for example in examples]
        )
        self._fitted = True
        return self

    # -- inference -----------------------------------------------------------------

    def _nearest_training_example(self, nlq: str) -> Optional[NVBenchExample]:
        if self._memory_matrix is None or not len(self._memory_examples):
            return None
        vector = self._memory_featurizer.transform_one(nlq)
        scores = self._memory_matrix @ vector
        return self._memory_examples[int(np.argmax(scores))]

    def predict(self, nlq: str, database: Database) -> str:
        if not self._fitted:
            raise RuntimeError("Seq2VisModel.predict called before fit")
        signals = signals_from_sketch(self.classifier.predict(nlq))
        # the decoder's memory: structure of the closest training question
        prior = StructurePrior()
        nearest = self._nearest_training_example(nlq)
        if nearest is not None:
            nearest_query = try_parse(nearest.dvq)
            if nearest_query is not None:
                prior = StructurePrior.from_query(nearest_query)
        composer = QueryComposer(
            linker=self.linker,
            allowed_columns=self._vocabulary_columns,
        )
        query = composer.compose(nlq, database.schema, prior=prior, signals=signals)
        return serialize_dvq(query)
