"""Transformer baseline (Vaswani et al., 2017) for text-to-vis.

Compared to Seq2Vis, the Transformer baseline can copy arbitrary schema tokens
through its attention mechanism, which we reproduce as sub-word (character
n-gram) lexical matching over the target schema.  It still has no notion of
synonymy, so its schema linking degrades on nvBench-Rob in the same way the
paper reports, just less severely than Seq2Vis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.dvq.serializer import serialize_dvq
from repro.linking.linker import SchemaLinker
from repro.models.base import TextToVisModel, signals_from_sketch, sketch_targets
from repro.neural.features import BagOfWordsFeaturizer
from repro.neural.mlp import TrainingConfig
from repro.neural.multihead import MultiHeadSketchClassifier
from repro.nlu.composer import QueryComposer
from repro.nvbench.example import NVBenchExample


class TransformerModel(TextToVisModel):
    """The Transformer baseline."""

    name = "Transformer"

    def __init__(self, max_train_examples: int = 4000,
                 training_config: Optional[TrainingConfig] = None):
        self.max_train_examples = max_train_examples
        self.training_config = training_config or TrainingConfig(hidden_size=64, epochs=12, seed=17)
        self.classifier = MultiHeadSketchClassifier(
            config=self.training_config,
            featurizer=BagOfWordsFeaturizer(),
        )
        # sub-word copying: character-level similarity, still no synonym knowledge
        self.linker = SchemaLinker(use_synonyms=False, use_char_similarity=True, min_score=0.4)
        self._fitted = False

    def fit(self, examples: Sequence[NVBenchExample], catalog: Catalog) -> "TransformerModel":
        examples = list(examples)[: self.max_train_examples]
        questions: List[str] = []
        targets: List[Dict[str, str]] = []
        for example in examples:
            sketch = sketch_targets(example.dvq)
            if sketch is None:
                continue
            questions.append(example.nlq)
            targets.append(sketch)
        self.classifier.fit(questions, targets)
        self._fitted = True
        return self

    def predict(self, nlq: str, database: Database) -> str:
        if not self._fitted:
            raise RuntimeError("TransformerModel.predict called before fit")
        signals = signals_from_sketch(self.classifier.predict(nlq))
        composer = QueryComposer(linker=self.linker)
        query = composer.compose(nlq, database.schema, signals=signals)
        return serialize_dvq(query)
