"""Shared interface and sketch utilities for the baseline models."""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.dvq.nodes import AggregateExpr, AggregateFunction, BinUnit, ChartType, DVQuery, SortDirection
from repro.dvq.normalize import try_parse
from repro.nvbench.example import NVBenchExample
from repro.nlu.question import QuestionSignals

#: Head names used by the sketch classifiers.
HEAD_CHART = "chart_type"
HEAD_AGGREGATE = "aggregate"
HEAD_ORDER = "order_direction"
HEAD_GROUP = "has_group"
HEAD_BIN = "bin_unit"

NONE_LABEL = "NONE"


def sketch_targets(dvq_text: str) -> Optional[Dict[str, str]]:
    """Extract the sketch labels of a gold DVQ (training targets for the heads)."""
    query = try_parse(dvq_text)
    if query is None:
        return None
    aggregate = NONE_LABEL
    if isinstance(query.y.expr, AggregateExpr):
        aggregate = query.y.expr.function.value
    order = NONE_LABEL
    if query.order_by is not None:
        order = query.order_by.direction.value
    bin_label = NONE_LABEL
    if query.bin is not None:
        bin_label = query.bin.unit.value
    return {
        HEAD_CHART: query.chart_type.value,
        HEAD_AGGREGATE: aggregate,
        HEAD_ORDER: order,
        HEAD_GROUP: "YES" if query.group_by else "NO",
        HEAD_BIN: bin_label,
    }


def signals_from_sketch(sketch: Dict[str, str]) -> QuestionSignals:
    """Convert predicted sketch labels into :class:`QuestionSignals`."""
    chart = sketch.get(HEAD_CHART)
    aggregate = sketch.get(HEAD_AGGREGATE, NONE_LABEL)
    order = sketch.get(HEAD_ORDER, NONE_LABEL)
    bin_label = sketch.get(HEAD_BIN, NONE_LABEL)
    return QuestionSignals(
        chart_type=ChartType.from_text(chart) if chart else None,
        aggregate=AggregateFunction(aggregate) if aggregate != NONE_LABEL else None,
        has_order=order != NONE_LABEL,
        order_direction=SortDirection(order) if order != NONE_LABEL else None,
        has_group=sketch.get(HEAD_GROUP, "NO") == "YES",
        bin_unit=BinUnit(bin_label) if bin_label != NONE_LABEL else None,
        mentions_count_of_rows=aggregate == AggregateFunction.COUNT.value,
    )


class TextToVisModel(abc.ABC):
    """The interface every model (baseline or GRED) implements."""

    name: str = "text-to-vis"

    @abc.abstractmethod
    def fit(self, examples: Sequence[NVBenchExample], catalog: Catalog) -> "TextToVisModel":
        """Train / prepare the model on the nvBench training split."""

    @abc.abstractmethod
    def predict(self, nlq: str, database: Database) -> str:
        """Translate a question over ``database`` into a DVQ string."""

    def predict_query(self, nlq: str, database: Database) -> Optional[DVQuery]:
        """Parsed form of :meth:`predict` (None when the output is malformed)."""
        return try_parse(self.predict(nlq, database))


def collect_training_columns(examples: Sequence[NVBenchExample]) -> List[str]:
    """Every column name appearing in the training DVQs (a decoder vocabulary)."""
    columns: Dict[str, None] = {}
    for example in examples:
        query = try_parse(example.dvq)
        if query is None:
            continue
        for column in query.referenced_columns():
            if column.column != "*":
                columns.setdefault(column.column, None)
    return list(columns)
