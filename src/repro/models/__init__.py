"""Baseline text-to-vis models evaluated in the paper.

* :class:`Seq2VisModel` — the seq2seq baseline (Luo et al., 2021): a trained
  sketch decoder plus an output vocabulary restricted to tokens seen during
  training, with exact lexical matching for schema tokens.
* :class:`TransformerModel` — the Transformer baseline (Vaswani et al., 2017):
  a trained sketch decoder with a sub-word copy mechanism (character-level
  lexical matching) over the input schema.
* :class:`RGVisNetModel` — the retrieval-generation hybrid and previous SOTA
  (Song et al., 2022): retrieves the most similar training DVQ as a prototype
  and revises it against the target schema with lexical matching.

All three share the property the paper identifies: schema linking is lexical,
so their accuracy collapses when questions and schemas stop sharing surface
forms.
"""

from repro.models.base import TextToVisModel, sketch_targets
from repro.models.seq2vis import Seq2VisModel
from repro.models.transformer_model import TransformerModel
from repro.models.rgvisnet import RGVisNetModel

__all__ = [
    "RGVisNetModel",
    "Seq2VisModel",
    "TextToVisModel",
    "TransformerModel",
    "sketch_targets",
]
