"""Schema linking: mapping natural-language phrases and foreign column names
onto a database schema.

Two configurations matter for the paper's story:

* **lexical linking** (exact / substring identifier matching) — what the
  baseline models rely on and what breaks under nvBench-Rob;
* **semantic linking** (synonym lexicon + character-level similarity) — what
  GRED's annotation-based debugger uses to repair column names.
"""

from repro.linking.linker import LinkCandidate, SchemaLinker

__all__ = ["LinkCandidate", "SchemaLinker"]
