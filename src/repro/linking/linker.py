"""The schema linker used by baselines (lexical mode) and GRED (semantic mode)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.database.schema import DatabaseSchema
from repro.embeddings.tokenization import char_ngrams, content_words, split_identifier
from repro.robustness.synonyms import SynonymLexicon, default_lexicon


@dataclass(frozen=True)
class LinkCandidate:
    """A scored (table, column) candidate for a phrase or foreign column name."""

    table: str
    column: str
    score: float


def _jaccard(left: Sequence[str], right: Sequence[str]) -> float:
    left_set, right_set = set(left), set(right)
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / len(left_set | right_set)


class SchemaLinker:
    """Scores how well a phrase refers to each column of a schema.

    Args:
        lexicon: synonym lexicon used in semantic mode.
        use_synonyms: enable synonym-aware matching (semantic mode).
        use_char_similarity: enable character n-gram similarity.
        min_score: candidates scoring below this are discarded.
    """

    def __init__(
        self,
        lexicon: Optional[SynonymLexicon] = None,
        use_synonyms: bool = True,
        use_char_similarity: bool = True,
        min_score: float = 0.2,
    ):
        self.lexicon = lexicon or default_lexicon()
        self.use_synonyms = use_synonyms
        self.use_char_similarity = use_char_similarity
        self.min_score = min_score

    # -- scoring -------------------------------------------------------------

    def _expand(self, words: Sequence[str]) -> List[str]:
        if not self.use_synonyms:
            return [word.lower() for word in words]
        expanded: List[str] = []
        for word in words:
            expanded.extend(self.lexicon.related_words(word))
        return expanded

    def column_words(self, column_name: str) -> List[str]:
        return [word.lower() for word in split_identifier(column_name)] or [column_name.lower()]

    def score_phrase(self, phrase_words: Sequence[str], column_name: str) -> float:
        """Similarity in [0, 1] between a phrase (already tokenised) and a column."""
        column_parts = self.column_words(column_name)
        phrase_lower = [word.lower() for word in phrase_words]
        if not phrase_lower:
            return 0.0
        # exact identifier mention (the nvBench shortcut)
        joined = "_".join(phrase_lower)
        if column_name.lower() == joined or column_name.lower() in phrase_lower:
            return 1.0
        word_score = _jaccard(self._expand(phrase_lower), self._expand(column_parts))
        char_score = 0.0
        if self.use_char_similarity:
            char_score = _jaccard(
                char_ngrams(" ".join(phrase_lower)), char_ngrams(" ".join(column_parts))
            )
        return max(word_score, 0.9 * char_score)

    # -- public linking APIs ---------------------------------------------------

    def link_phrase(
        self,
        phrase: str,
        schema: DatabaseSchema,
        preferred_table: Optional[str] = None,
        top_k: int = 3,
    ) -> List[LinkCandidate]:
        """Rank schema columns by how well they match ``phrase``."""
        words = content_words(phrase) or [phrase.lower()]
        candidates: List[LinkCandidate] = []
        for table_name, column in schema.all_columns():
            score = self.score_phrase(words, column.name)
            if preferred_table and table_name.lower() == preferred_table.lower():
                score += 0.05
            if score >= self.min_score:
                candidates.append(LinkCandidate(table=table_name, column=column.name, score=score))
        candidates.sort(key=lambda candidate: -candidate.score)
        return candidates[:top_k]

    def best_column(
        self, phrase: str, schema: DatabaseSchema, preferred_table: Optional[str] = None
    ) -> Optional[LinkCandidate]:
        """The single best column for ``phrase`` (None when nothing clears the threshold)."""
        candidates = self.link_phrase(phrase, schema, preferred_table=preferred_table, top_k=1)
        return candidates[0] if candidates else None

    def map_foreign_column(
        self,
        column_name: str,
        schema: DatabaseSchema,
        preferred_tables: Sequence[str] = (),
    ) -> Optional[LinkCandidate]:
        """Map a column name from *another* schema onto this schema.

        This is the operation behind GRED's annotation-based debugger: the
        generated DVQ mentions ``SALARY`` but the (renamed) schema only has
        ``wage``; semantic linking recovers the correspondence.
        """
        if any(
            column.name.lower() == column_name.lower()
            for _, column in schema.all_columns()
        ):
            for table_name, column in schema.all_columns():
                if column.name.lower() == column_name.lower():
                    return LinkCandidate(table=table_name, column=column.name, score=1.0)
        words = self.column_words(column_name)
        best: Optional[LinkCandidate] = None
        preferred = {table.lower() for table in preferred_tables}
        for table_name, column in schema.all_columns():
            score = self.score_phrase(words, column.name)
            if table_name.lower() in preferred:
                score += 0.1
            if score >= self.min_score and (best is None or score > best.score):
                best = LinkCandidate(table=table_name, column=column.name, score=score)
        return best

    def question_links(
        self, nlq: str, schema: DatabaseSchema, top_k: int = 6
    ) -> List[LinkCandidate]:
        """Columns mentioned (explicitly or semantically) anywhere in a question."""
        words = content_words(nlq)
        scored: dict = {}
        window_sizes = (1, 2, 3)
        for size in window_sizes:
            for start in range(0, max(0, len(words) - size + 1)):
                window = words[start : start + size]
                for table_name, column in schema.all_columns():
                    score = self.score_phrase(window, column.name)
                    key = (table_name, column.name)
                    if score > scored.get(key, 0.0):
                        scored[key] = score
        candidates = [
            LinkCandidate(table=table, column=column, score=score)
            for (table, column), score in scored.items()
            if score >= self.min_score
        ]
        candidates.sort(key=lambda candidate: -candidate.score)
        return candidates[:top_k]
