"""Evaluation of WHERE-clause predicates, per row and vectorized.

The per-value functions (:func:`evaluate_condition` and friends) define the
semantics; :func:`evaluate_condition_vector` is the NumPy kernel the columnar
engine uses on typed columns.  The kernel either returns a boolean mask that
is *bit-identical* to mapping :func:`evaluate_condition` over the column, or
``None`` to decline — any case whose semantics depend on per-value coercion
(e.g. a text column compared against a numeric literal, where each value's
float-parseability decides the comparison) falls back to the scalar path.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.database.typed import KIND_NUMBER, KIND_TEXT, TypedColumn
from repro.dvq.nodes import Condition, WhereClause


def _coerce_pair(left: object, right: object):
    """Coerce both operands so comparisons behave like SQLite's affinity rules."""
    if left is None or right is None:
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, str):
        try:
            return left, float(right)
        except ValueError:
            return str(left), right
    if isinstance(left, str) and isinstance(right, (int, float)):
        try:
            return float(left), right
        except ValueError:
            return left, str(right)
    return left, right


def _compare(left: object, operator: str, right: object) -> bool:
    left, right = _coerce_pair(left, right)
    if left is None or right is None:
        # SQL three-valued logic collapses to False for chart purposes,
        # except equality against an explicit "null" sentinel string.
        if operator in ("=", "!=") and isinstance(right, str) and right.lower() == "null":
            is_null = left is None
            return is_null if operator == "=" else not is_null
        return False
    if operator == "=":
        return _loose_equal(left, right)
    if operator == "!=":
        return not _loose_equal(left, right)
    try:
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
    except TypeError:
        return False
    raise ValueError(f"Unsupported comparison operator {operator!r}")


def _loose_equal(left: object, right: object) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    return left == right


def _like(value: object, pattern: object) -> bool:
    if value is None or pattern is None:
        return False
    text = str(value).lower()
    pattern_text = str(pattern).lower()
    if pattern_text.startswith("%") and pattern_text.endswith("%"):
        return pattern_text.strip("%") in text
    if pattern_text.startswith("%"):
        return text.endswith(pattern_text.lstrip("%"))
    if pattern_text.endswith("%"):
        return text.startswith(pattern_text.rstrip("%"))
    return text == pattern_text


def _vector_literal(column: TypedColumn, literal: object) -> Optional[object]:
    """``literal`` as a comparand for ``column``'s typed data, or None to decline.

    Mirrors :func:`_coerce_pair` for the case where the column side's type is
    uniform: a number column coerces string literals through ``float`` (a
    non-parseable string would compare per-value against ``str(value)`` —
    decline), a text column compares against string literals exactly (numeric
    literals would parse each value individually — decline).
    """
    if column.kind == KIND_NUMBER:
        if isinstance(literal, (bool, int, float)):
            return float(literal)
        if isinstance(literal, str):
            try:
                return float(literal)
            except ValueError:
                return None
        return None
    if isinstance(literal, str):
        return literal
    return None


def _vector_compare(column: TypedColumn, operator: str, literal: object) -> Optional[np.ndarray]:
    """Vectorized :func:`_compare` of a typed column against one literal."""
    valid = ~column.mask
    if literal is None:
        # comparisons against a NULL literal are uniformly False
        return np.zeros(len(column), dtype=bool)
    if (
        operator in ("=", "!=")
        and isinstance(literal, str)
        and literal.lower() == "null"
    ):
        # the explicit "null" sentinel: number columns can only match by
        # being NULL; text columns also match the literal text "null"
        if column.kind == KIND_NUMBER:
            matched = column.mask.copy()
        else:
            matched = column.mask | (column.lowered == "null")
        return ~matched if operator == "!=" else matched
    comparand = _vector_literal(column, literal)
    if comparand is None:
        return None
    if operator == "=":
        if column.kind == KIND_TEXT:
            return (column.lowered == comparand.lower()) & valid
        return (column.data == comparand) & valid
    if operator == "!=":
        if column.kind == KIND_TEXT:
            return (column.lowered != comparand.lower()) & valid
        return (column.data != comparand) & valid
    # ordering comparisons: numbers numerically, strings by exact code point
    # (matching Python's str ordering) — NULL slots are always False
    if operator == ">":
        return (column.data > comparand) & valid
    if operator == ">=":
        return (column.data >= comparand) & valid
    if operator == "<":
        return (column.data < comparand) & valid
    if operator == "<=":
        return (column.data <= comparand) & valid
    return None


def _vector_in(condition: Condition, column: TypedColumn) -> Optional[np.ndarray]:
    """Vectorized IN / NOT IN membership; NULL rows keep passing NOT IN."""
    comparands = []
    null_item = False
    for item in condition.value:
        if item is None:
            # a NULL list item loose-equals only a NULL value (None == None)
            null_item = True
            continue
        comparand = _vector_literal(column, item)
        if comparand is None:
            return None
        comparands.append(comparand.lower() if column.kind == KIND_TEXT else comparand)
    if comparands:
        haystack = column.lowered if column.kind == KIND_TEXT else column.data
        matched = np.isin(haystack, np.array(comparands))
    else:
        matched = np.zeros(len(column), dtype=bool)
    # NULL rows match iff the list itself contains NULL; when it does not,
    # negation brings them back True — exactly the scalar path
    matched[column.mask] = null_item
    return ~matched if condition.negated else matched


def _vector_like(condition: Condition, column: TypedColumn) -> Optional[np.ndarray]:
    """Vectorized LIKE / NOT LIKE over a text column's lowered shadow."""
    pattern = condition.value
    if pattern is None:
        matched = np.zeros(len(column), dtype=bool)
    else:
        pattern_text = str(pattern).lower()
        lowered = column.lowered
        if pattern_text.startswith("%") and pattern_text.endswith("%"):
            matched = np.char.find(lowered, pattern_text.strip("%")) >= 0
        elif pattern_text.startswith("%"):
            matched = np.char.endswith(lowered, pattern_text.lstrip("%"))
        elif pattern_text.endswith("%"):
            matched = np.char.startswith(lowered, pattern_text.rstrip("%"))
        else:
            matched = lowered == pattern_text
        matched[column.mask] = False  # NULL never matches ...
    # ... and therefore always passes NOT LIKE, matching the scalar path
    return ~matched if condition.negated else matched


def evaluate_condition_vector(
    condition: Condition, column: TypedColumn
) -> Optional[np.ndarray]:
    """Vectorized :func:`evaluate_condition` over a :class:`TypedColumn`.

    Returns the boolean keep-mask, or ``None`` when this condition/column
    combination is not exactly representable as array operations — the caller
    must then map :func:`evaluate_condition` over ``column.objects``.  The
    contract (pinned by the differential suite) is that a returned mask is
    always identical to that scalar map.
    """
    if column.kind not in (KIND_NUMBER, KIND_TEXT):
        return None
    if column.kind == KIND_NUMBER and column.has_nan:
        # NaN turns membership/range checks into per-value questions
        return None
    operator = condition.operator.upper()
    if operator == "IS NULL":
        return ~column.mask if condition.negated else column.mask.copy()
    if operator == "BETWEEN":
        low = _vector_compare(column, ">=", condition.value)
        high = _vector_compare(column, "<=", condition.value2)
        if low is None or high is None:
            return None
        return low & high
    if operator == "IN":
        return _vector_in(condition, column)
    if operator == "LIKE":
        if column.kind != KIND_TEXT:
            # str(value) of a float64 shadow differs from the Python object
            return None
        return _vector_like(condition, column)
    if operator in ("=", "!=", ">", ">=", "<", "<="):
        return _vector_compare(column, operator, condition.value)
    return None


def evaluate_condition(condition: Condition, value: object) -> bool:
    """Evaluate one condition against the value of its column in a row."""
    operator = condition.operator.upper()
    if operator == "BETWEEN":
        return _compare(value, ">=", condition.value) and _compare(value, "<=", condition.value2)
    if operator == "IN":
        matched = any(_loose_equal(*_coerce_pair(value, item)) for item in condition.value)
        return not matched if condition.negated else matched
    if operator == "IS NULL":
        is_null = value is None
        return not is_null if condition.negated else is_null
    if operator == "LIKE":
        matched = _like(value, condition.value)
        return not matched if condition.negated else matched
    return _compare(value, operator, condition.value)


def evaluate_where(
    where: WhereClause, row: Dict[str, object], column_values: Sequence[object]
) -> bool:
    """Evaluate a WHERE clause given per-condition column values.

    ``column_values[i]`` must be the row's value for ``where.conditions[i]``'s
    column (resolution is the executor's job).  Connectors are applied
    left-to-right without precedence, matching nvBench's flat DVQ semantics.
    """
    if not where.conditions:
        return True
    result = evaluate_condition(where.conditions[0], column_values[0])
    for index, connector in enumerate(where.connectors):
        next_value = evaluate_condition(where.conditions[index + 1], column_values[index + 1])
        if connector.upper() == "AND":
            result = result and next_value
        else:
            result = result or next_value
    return result
