"""Evaluation of WHERE-clause predicates over rows."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.dvq.nodes import Condition, WhereClause


def _coerce_pair(left: object, right: object):
    """Coerce both operands so comparisons behave like SQLite's affinity rules."""
    if left is None or right is None:
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, str):
        try:
            return left, float(right)
        except ValueError:
            return str(left), right
    if isinstance(left, str) and isinstance(right, (int, float)):
        try:
            return float(left), right
        except ValueError:
            return left, str(right)
    return left, right


def _compare(left: object, operator: str, right: object) -> bool:
    left, right = _coerce_pair(left, right)
    if left is None or right is None:
        # SQL three-valued logic collapses to False for chart purposes,
        # except equality against an explicit "null" sentinel string.
        if operator in ("=", "!=") and isinstance(right, str) and right.lower() == "null":
            is_null = left is None
            return is_null if operator == "=" else not is_null
        return False
    if operator == "=":
        return _loose_equal(left, right)
    if operator == "!=":
        return not _loose_equal(left, right)
    try:
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
    except TypeError:
        return False
    raise ValueError(f"Unsupported comparison operator {operator!r}")


def _loose_equal(left: object, right: object) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    return left == right


def _like(value: object, pattern: object) -> bool:
    if value is None or pattern is None:
        return False
    text = str(value).lower()
    pattern_text = str(pattern).lower()
    if pattern_text.startswith("%") and pattern_text.endswith("%"):
        return pattern_text.strip("%") in text
    if pattern_text.startswith("%"):
        return text.endswith(pattern_text.lstrip("%"))
    if pattern_text.endswith("%"):
        return text.startswith(pattern_text.rstrip("%"))
    return text == pattern_text


def evaluate_condition(condition: Condition, value: object) -> bool:
    """Evaluate one condition against the value of its column in a row."""
    operator = condition.operator.upper()
    if operator == "BETWEEN":
        return _compare(value, ">=", condition.value) and _compare(value, "<=", condition.value2)
    if operator == "IN":
        matched = any(_loose_equal(*_coerce_pair(value, item)) for item in condition.value)
        return not matched if condition.negated else matched
    if operator == "IS NULL":
        is_null = value is None
        return not is_null if condition.negated else is_null
    if operator == "LIKE":
        matched = _like(value, condition.value)
        return not matched if condition.negated else matched
    return _compare(value, operator, condition.value)


def evaluate_where(
    where: WhereClause, row: Dict[str, object], column_values: Sequence[object]
) -> bool:
    """Evaluate a WHERE clause given per-condition column values.

    ``column_values[i]`` must be the row's value for ``where.conditions[i]``'s
    column (resolution is the executor's job).  Connectors are applied
    left-to-right without precedence, matching nvBench's flat DVQ semantics.
    """
    if not where.conditions:
        return True
    result = evaluate_condition(where.conditions[0], column_values[0])
    for index, connector in enumerate(where.connectors):
        next_value = evaluate_condition(where.conditions[index + 1], column_values[index + 1])
        if connector.upper() == "AND":
            result = result and next_value
        else:
            result = result or next_value
    return result
