"""Aggregate functions used by the executor."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence


def _numeric(values: Sequence[object]) -> List[float]:
    numbers = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            numbers.append(1.0 if value else 0.0)
        elif isinstance(value, (int, float)):
            numbers.append(float(value))
        else:
            try:
                numbers.append(float(value))
            except (TypeError, ValueError):
                continue
    return numbers


def agg_count(values: Sequence[object], distinct: bool = False) -> int:
    present = [value for value in values if value is not None]
    if distinct:
        return len(set(present))
    return len(present)


def agg_sum(values: Sequence[object], distinct: bool = False) -> Optional[float]:
    numbers = _numeric(set(values) if distinct else values)
    if not numbers:
        return None
    return sum(numbers)


def agg_avg(values: Sequence[object], distinct: bool = False) -> Optional[float]:
    numbers = _numeric(set(values) if distinct else values)
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def agg_min(values: Sequence[object], distinct: bool = False) -> Optional[object]:
    present = [value for value in values if value is not None]
    if not present:
        return None
    return min(present)


def agg_max(values: Sequence[object], distinct: bool = False) -> Optional[object]:
    present = [value for value in values if value is not None]
    if not present:
        return None
    return max(present)


AGGREGATE_FUNCTIONS: Dict[str, Callable] = {
    "COUNT": agg_count,
    "SUM": agg_sum,
    "AVG": agg_avg,
    "MIN": agg_min,
    "MAX": agg_max,
}


def apply_aggregate(name: str, values: Sequence[object], distinct: bool = False) -> object:
    """Apply the aggregate ``name`` to ``values``.

    Raises:
        KeyError: for unknown aggregate names.
    """
    return AGGREGATE_FUNCTIONS[name.upper()](values, distinct=distinct)
