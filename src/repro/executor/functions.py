"""Aggregate functions used by the executor, per group and vectorized.

The scalar functions define the semantics; :func:`grouped_aggregate_vector`
computes one aggregate for *every* group at once from a typed column plus a
group-id array, or returns ``None`` to decline when array arithmetic cannot
reproduce the scalar path (mixed-type columns, NaN, text columns whose
values coerce through ``float`` individually).  Every vectorized aggregate
is bit-for-bit identical to its scalar counterpart except DISTINCT SUM/AVG,
which accumulates the same distinct-float multiset in ascending rather than
set-iteration order — identical after the cross-engine 9-decimal
normalisation every backend applies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.database.typed import KIND_NUMBER, KIND_TEXT, TypedColumn


def _numeric(values: Sequence[object]) -> List[float]:
    numbers = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            numbers.append(1.0 if value else 0.0)
        elif isinstance(value, (int, float)):
            numbers.append(float(value))
        else:
            try:
                numbers.append(float(value))
            except (TypeError, ValueError):
                continue
    return numbers


def agg_count(values: Sequence[object], distinct: bool = False) -> int:
    present = [value for value in values if value is not None]
    if distinct:
        return len(set(present))
    return len(present)


def agg_sum(values: Sequence[object], distinct: bool = False) -> Optional[float]:
    numbers = _numeric(set(values) if distinct else values)
    if not numbers:
        return None
    return sum(numbers)


def agg_avg(values: Sequence[object], distinct: bool = False) -> Optional[float]:
    numbers = _numeric(set(values) if distinct else values)
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def agg_min(values: Sequence[object], distinct: bool = False) -> Optional[object]:
    present = [value for value in values if value is not None]
    if not present:
        return None
    return min(present)


def agg_max(values: Sequence[object], distinct: bool = False) -> Optional[object]:
    present = [value for value in values if value is not None]
    if not present:
        return None
    return max(present)


AGGREGATE_FUNCTIONS: Dict[str, Callable] = {
    "COUNT": agg_count,
    "SUM": agg_sum,
    "AVG": agg_avg,
    "MIN": agg_min,
    "MAX": agg_max,
}


def apply_aggregate(name: str, values: Sequence[object], distinct: bool = False) -> object:
    """Apply the aggregate ``name`` to ``values``.

    Raises:
        KeyError: for unknown aggregate names.
    """
    return AGGREGATE_FUNCTIONS[name.upper()](values, distinct=distinct)


def _grouped_count(
    column: TypedColumn, gid: np.ndarray, group_count: int, distinct: bool
) -> List[int]:
    valid = ~column.mask
    if not distinct:
        counts = np.bincount(gid[valid], minlength=group_count)
        return [int(count) for count in counts]
    groups = gid[valid]
    if groups.size == 0:
        return [0] * group_count
    # count distinct (group, value) pairs: sort, keep the first of each run.
    # float64 / exact-text equality here matches the scalar path's set():
    # 5 == 5.0 == True dedupe together, text stays case-sensitive.
    order = np.lexsort((column.data[valid], groups))
    sorted_groups = groups[order]
    sorted_values = column.data[valid][order]
    keep = np.ones(sorted_groups.size, dtype=bool)
    keep[1:] = (sorted_groups[1:] != sorted_groups[:-1]) | (
        sorted_values[1:] != sorted_values[:-1]
    )
    counts = np.bincount(sorted_groups[keep], minlength=group_count)
    return [int(count) for count in counts]


def _grouped_sum_avg(
    name: str, column: TypedColumn, gid: np.ndarray, group_count: int
) -> List[Optional[float]]:
    # np.bincount accumulates weights in input order, so each group's float
    # sum is added in exactly the scalar path's (row) order; NULL slots hold
    # the 0.0 placeholder, which is accumulation-neutral
    sums = np.bincount(gid, weights=column.data, minlength=group_count)
    counts = np.bincount(gid[~column.mask], minlength=group_count)
    if name == "SUM":
        return [float(sums[g]) if counts[g] else None for g in range(group_count)]
    return [
        float(sums[g]) / int(counts[g]) if counts[g] else None
        for g in range(group_count)
    ]


def _grouped_distinct_sum_avg(
    name: str, column: TypedColumn, gid: np.ndarray, group_count: int
) -> List[Optional[float]]:
    # dedupe (group, value) pairs exactly like _grouped_count's distinct
    # branch, then accumulate the survivors.  The scalar path sums a Python
    # set in iteration order; here unique values add in ascending order —
    # the same float multiset, so the results agree after the cross-engine
    # 9-decimal normalisation (the one aggregate where "identical" is
    # post-normalisation rather than bit-for-bit)
    result: List[Optional[float]] = [None] * group_count
    valid = ~column.mask
    groups = gid[valid]
    if groups.size == 0:
        return result
    values = column.data[valid]
    order = np.lexsort((values, groups))
    sorted_groups = groups[order]
    sorted_values = values[order]
    keep = np.ones(sorted_groups.size, dtype=bool)
    keep[1:] = (sorted_groups[1:] != sorted_groups[:-1]) | (
        sorted_values[1:] != sorted_values[:-1]
    )
    distinct_groups = sorted_groups[keep]
    distinct_values = sorted_values[keep]
    sums = np.bincount(distinct_groups, weights=distinct_values, minlength=group_count)
    counts = np.bincount(distinct_groups, minlength=group_count)
    if name == "SUM":
        return [float(sums[g]) if counts[g] else None for g in range(group_count)]
    return [
        float(sums[g]) / int(counts[g]) if counts[g] else None
        for g in range(group_count)
    ]


def _grouped_min_max(
    name: str, column: TypedColumn, gid: np.ndarray, group_count: int
) -> List[Optional[object]]:
    valid_rows = np.flatnonzero(~column.mask)
    result: List[Optional[object]] = [None] * group_count
    if valid_rows.size == 0:
        return result
    groups = gid[valid_rows]
    values = column.data[valid_rows]
    # a stable sort on the group ids alone keeps each group's rows in row
    # order; reduceat then computes the per-group extreme in O(n), and the
    # first row whose value == its group's extreme is the exact object
    # Python's min()/max() would return (both keep the first of equals)
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    sorted_values = values[order]
    boundary = np.ones(sorted_groups.size, dtype=bool)
    boundary[1:] = sorted_groups[1:] != sorted_groups[:-1]
    starts = np.flatnonzero(boundary)
    if sorted_values.dtype.kind == "U":
        # the minimum/maximum ufuncs have no string loop; rank values inside
        # each segment instead (groups stay primary, so segment boundaries
        # are unchanged) and read each extreme off the segment edge
        ranked = sorted_values[np.lexsort((sorted_values, sorted_groups))]
        if name == "MIN":
            extremes = ranked[starts]
        else:
            extremes = ranked[np.append(starts[1:], sorted_groups.size) - 1]
    else:
        reducer = np.minimum if name == "MIN" else np.maximum
        extremes = reducer.reduceat(sorted_values, starts)
    lengths = np.diff(np.append(starts, sorted_groups.size))
    hits = np.flatnonzero(sorted_values == np.repeat(extremes, lengths))
    segment_ids = np.cumsum(boundary) - 1
    # segment ids ascend, so np.unique's return_index is the first hit per
    # segment
    first_hits = hits[np.unique(segment_ids[hits], return_index=True)[1]]
    picked_rows = valid_rows[order[first_hits]]
    for group, row in zip(sorted_groups[first_hits], picked_rows):
        result[int(group)] = column.objects[row]
    return result


def grouped_aggregate_vector(
    name: str,
    column: TypedColumn,
    gid: np.ndarray,
    group_count: int,
    distinct: bool = False,
) -> Optional[List[object]]:
    """One aggregate value per group, vectorized; ``None`` declines.

    ``gid[i]`` is row ``i``'s group id in ``[0, group_count)``.  A returned
    list is element-for-element identical (by object, not merely ``==``) to
    applying the scalar aggregate to each group's member values in row
    order — except DISTINCT SUM/AVG, whose float accumulation order differs
    (see the module docstring) and matches after 9-decimal normalisation.
    """
    name = name.upper()
    if name == "COUNT" and not distinct:
        # plain COUNT only consults the null mask — works for every kind
        counts = np.bincount(gid[~column.mask], minlength=group_count)
        return [int(count) for count in counts]
    if column.kind not in (KIND_NUMBER, KIND_TEXT):
        return None
    if column.kind == KIND_NUMBER and column.has_nan:
        # NaN: sums poison exactly but min/max/distinct become order-dependent
        return None
    if name == "COUNT":
        return _grouped_count(column, gid, group_count, distinct)
    if name in ("SUM", "AVG"):
        if column.kind != KIND_NUMBER:
            # text values coerce through float() one by one — scalar-path
            # territory
            return None
        if distinct:
            return _grouped_distinct_sum_avg(name, column, gid, group_count)
        return _grouped_sum_avg(name, column, gid, group_count)
    if name in ("MIN", "MAX"):
        return _grouped_min_max(name, column, gid, group_count)
    return None
