"""Aggregate functions used by the executor, per group and vectorized.

The scalar functions define the semantics; :func:`grouped_aggregate_vector`
computes one aggregate for *every* group at once from a typed column plus a
group-id array, or returns ``None`` to decline when array arithmetic cannot
reproduce the scalar path (mixed-type columns, text columns whose values
coerce through ``float`` individually).  Every vectorized aggregate is
bit-for-bit identical to its scalar counterpart except DISTINCT SUM/AVG,
which accumulates the same distinct-float multiset in ascending rather than
set-iteration order — identical after the cross-engine 9-decimal
normalisation every backend applies.

NaN-valued number columns stay on the vectorized path.  The scalar
semantics the kernels reproduce:

* SUM/AVG: one NaN poisons the whole group's accumulation — exactly what
  ``np.bincount`` computes, in any order.
* MIN/MAX: Python's fold keeps the current extreme unless the next value
  wins a ``<``/``>`` comparison, and every comparison involving NaN is
  False.  A group's result is therefore its *first* value when that value
  is NaN, and the extreme over the non-NaN values otherwise.
* COUNT DISTINCT: ``set()`` deduplicates NaN by object *identity* (NaN
  never equals anything, including itself), so the kernel counts distinct
  non-NaN values vectorized and adds the per-group identity-distinct NaN
  objects in one pass over only the NaN rows.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.database.typed import KIND_NUMBER, KIND_TEXT, TypedColumn


def _numeric(values: Sequence[object]) -> List[float]:
    numbers = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            numbers.append(1.0 if value else 0.0)
        elif isinstance(value, (int, float)):
            numbers.append(float(value))
        else:
            try:
                numbers.append(float(value))
            except (TypeError, ValueError):
                continue
    return numbers


def agg_count(values: Sequence[object], distinct: bool = False) -> int:
    present = [value for value in values if value is not None]
    if distinct:
        return len(set(present))
    return len(present)


def agg_sum(values: Sequence[object], distinct: bool = False) -> Optional[float]:
    numbers = _numeric(set(values) if distinct else values)
    if not numbers:
        return None
    return sum(numbers)


def agg_avg(values: Sequence[object], distinct: bool = False) -> Optional[float]:
    numbers = _numeric(set(values) if distinct else values)
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def agg_min(values: Sequence[object], distinct: bool = False) -> Optional[object]:
    present = [value for value in values if value is not None]
    if not present:
        return None
    return min(present)


def agg_max(values: Sequence[object], distinct: bool = False) -> Optional[object]:
    present = [value for value in values if value is not None]
    if not present:
        return None
    return max(present)


AGGREGATE_FUNCTIONS: Dict[str, Callable] = {
    "COUNT": agg_count,
    "SUM": agg_sum,
    "AVG": agg_avg,
    "MIN": agg_min,
    "MAX": agg_max,
}


def apply_aggregate(name: str, values: Sequence[object], distinct: bool = False) -> object:
    """Apply the aggregate ``name`` to ``values``.

    Raises:
        KeyError: for unknown aggregate names.
    """
    return AGGREGATE_FUNCTIONS[name.upper()](values, distinct=distinct)


def _identity_distinct_nan_counts(
    objects: np.ndarray, nan_rows: np.ndarray, gid: np.ndarray, group_count: int
) -> np.ndarray:
    """Per-group count of identity-distinct NaN objects, ``set()``-style.

    ``set`` membership short-circuits on identity before trying ``==``, and
    NaN equals nothing — so the scalar COUNT DISTINCT counts one per distinct
    NaN *object*.  Only the (rare) NaN rows take this Python loop.
    """
    seen: Dict[int, set] = {}
    for row in nan_rows.tolist():
        seen.setdefault(int(gid[row]), set()).add(id(objects[row]))
    counts = np.zeros(group_count, dtype=np.intp)
    for group, idents in seen.items():
        counts[group] = len(idents)
    return counts


def _grouped_count(
    column: TypedColumn, gid: np.ndarray, group_count: int, distinct: bool
) -> List[int]:
    valid = ~column.mask
    if not distinct:
        counts = np.bincount(gid[valid], minlength=group_count)
        return [int(count) for count in counts]
    groups = gid[valid]
    if groups.size == 0:
        return [0] * group_count
    values = column.data[valid]
    nan_counts = None
    if column.kind == KIND_NUMBER and column.has_nan:
        nan_mask = np.isnan(values)
        if nan_mask.any():
            nan_counts = _identity_distinct_nan_counts(
                column.objects, np.flatnonzero(valid)[nan_mask], gid, group_count
            )
            groups = groups[~nan_mask]
            values = values[~nan_mask]
    if groups.size == 0:
        counts = np.zeros(group_count, dtype=np.intp)
    else:
        # count distinct (group, value) pairs: sort, keep the first of each
        # run.  float64 / exact-text equality here matches the scalar path's
        # set(): 5 == 5.0 == True dedupe together, text stays case-sensitive.
        order = np.lexsort((values, groups))
        sorted_groups = groups[order]
        sorted_values = values[order]
        keep = np.ones(sorted_groups.size, dtype=bool)
        keep[1:] = (sorted_groups[1:] != sorted_groups[:-1]) | (
            sorted_values[1:] != sorted_values[:-1]
        )
        counts = np.bincount(sorted_groups[keep], minlength=group_count)
    if nan_counts is not None:
        counts = counts + nan_counts
    return [int(count) for count in counts]


def _grouped_sum_avg(
    name: str, column: TypedColumn, gid: np.ndarray, group_count: int
) -> List[Optional[float]]:
    # np.bincount accumulates weights in input order, so each group's float
    # sum is added in exactly the scalar path's (row) order; NULL slots hold
    # the 0.0 placeholder, which is accumulation-neutral
    sums = np.bincount(gid, weights=column.data, minlength=group_count)
    counts = np.bincount(gid[~column.mask], minlength=group_count)
    if name == "SUM":
        return [float(sums[g]) if counts[g] else None for g in range(group_count)]
    return [
        float(sums[g]) / int(counts[g]) if counts[g] else None
        for g in range(group_count)
    ]


def _grouped_distinct_sum_avg(
    name: str, column: TypedColumn, gid: np.ndarray, group_count: int
) -> List[Optional[float]]:
    # dedupe (group, value) pairs exactly like _grouped_count's distinct
    # branch, then accumulate the survivors.  The scalar path sums a Python
    # set in iteration order; here unique values add in ascending order —
    # the same float multiset, so the results agree after the cross-engine
    # 9-decimal normalisation (the one aggregate where "identical" is
    # post-normalisation rather than bit-for-bit)
    result: List[Optional[float]] = [None] * group_count
    valid = ~column.mask
    groups = gid[valid]
    if groups.size == 0:
        return result
    values = column.data[valid]
    order = np.lexsort((values, groups))
    sorted_groups = groups[order]
    sorted_values = values[order]
    keep = np.ones(sorted_groups.size, dtype=bool)
    keep[1:] = (sorted_groups[1:] != sorted_groups[:-1]) | (
        sorted_values[1:] != sorted_values[:-1]
    )
    distinct_groups = sorted_groups[keep]
    distinct_values = sorted_values[keep]
    sums = np.bincount(distinct_groups, weights=distinct_values, minlength=group_count)
    counts = np.bincount(distinct_groups, minlength=group_count)
    if name == "SUM":
        return [float(sums[g]) if counts[g] else None for g in range(group_count)]
    return [
        float(sums[g]) / int(counts[g]) if counts[g] else None
        for g in range(group_count)
    ]


def grouped_first_rows(
    mask: np.ndarray, gid: np.ndarray, group_count: int
) -> np.ndarray:
    """Each group's first non-NULL row index (``-1``: no values)."""
    result = np.full(group_count, -1, dtype=np.intp)
    valid_rows = np.flatnonzero(~mask)
    if valid_rows.size:
        uniques, first = np.unique(gid[valid_rows], return_index=True)
        result[uniques] = valid_rows[first]
    return result


def grouped_extreme_rows(
    name: str,
    data: np.ndarray,
    mask: np.ndarray,
    gid: np.ndarray,
    group_count: int,
    nan_first: bool = True,
) -> np.ndarray:
    """Per-group row index of the scalar min()/max() winner (``-1``: empty).

    Reproduces Python's fold over each group's values in row order: the
    running extreme is replaced only when a candidate wins a strict ``<`` /
    ``>`` comparison, so equal values keep the earliest row and NaN — which
    loses every comparison — wins only as a group's *first* value.  Shared
    by the serial MIN/MAX kernel and the morsel-parallel partials.

    With ``nan_first=False`` the NaN-leads-the-group override is skipped and
    the result is the pure non-NaN extreme (``-1`` when all values are NaN).
    The parallel merge needs that: whether NaN leads is a property of the
    *global* first row, which one morsel cannot know — it reconstructs the
    override from :func:`grouped_first_rows` after merging.
    """
    result = np.full(group_count, -1, dtype=np.intp)
    valid_rows = np.flatnonzero(~mask)
    if valid_rows.size == 0:
        return result
    groups = gid[valid_rows]
    values = data[valid_rows]
    # a stable sort on the group ids alone keeps each group's rows in row
    # order; reduceat then computes the per-group extreme in O(n), and the
    # first row whose value == its group's extreme is the exact row
    # Python's min()/max() would return (both keep the first of equals)
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    sorted_values = values[order]
    boundary = np.ones(sorted_groups.size, dtype=bool)
    boundary[1:] = sorted_groups[1:] != sorted_groups[:-1]
    starts = np.flatnonzero(boundary)
    nan_slots = None
    if sorted_values.dtype.kind == "U":
        # the minimum/maximum ufuncs have no string loop; rank values inside
        # each segment instead (groups stay primary, so segment boundaries
        # are unchanged) and read each extreme off the segment edge
        ranked = sorted_values[np.lexsort((sorted_values, sorted_groups))]
        if name == "MIN":
            extremes = ranked[starts]
        else:
            extremes = ranked[np.append(starts[1:], sorted_groups.size) - 1]
        masked_values = sorted_values
    else:
        nan_mask = np.isnan(sorted_values)
        if nan_mask.any():
            # NaN loses every fold comparison, so it can never be the reduced
            # extreme; substituting the identity element keeps reduceat exact
            nan_slots = nan_mask
            masked_values = np.where(
                nan_slots, np.inf if name == "MIN" else -np.inf, sorted_values
            )
        else:
            masked_values = sorted_values
        reducer = np.minimum if name == "MIN" else np.maximum
        extremes = reducer.reduceat(masked_values, starts)
    lengths = np.diff(np.append(starts, sorted_groups.size))
    hit_mask = masked_values == np.repeat(extremes, lengths)
    if nan_slots is not None:
        hit_mask &= ~nan_slots
    hits = np.flatnonzero(hit_mask)
    if hits.size:
        segment_ids = np.cumsum(boundary) - 1
        # segment ids ascend, so np.unique's return_index is the first hit
        # per segment
        first_hits = hits[np.unique(segment_ids[hits], return_index=True)[1]]
        result[sorted_groups[first_hits]] = valid_rows[order[first_hits]]
    if nan_first and nan_slots is not None:
        # a group whose first value is NaN keeps it: the fold starts there
        # and no later comparison can dethrone it
        nan_led = np.flatnonzero(nan_slots[starts])
        if nan_led.size:
            led_starts = starts[nan_led]
            result[sorted_groups[led_starts]] = valid_rows[order[led_starts]]
    return result


def _grouped_min_max(
    name: str, column: TypedColumn, gid: np.ndarray, group_count: int
) -> List[Optional[object]]:
    rows = grouped_extreme_rows(name, column.data, column.mask, gid, group_count)
    return [column.objects[row] if row >= 0 else None for row in rows.tolist()]


def grouped_aggregate_vector(
    name: str,
    column: TypedColumn,
    gid: np.ndarray,
    group_count: int,
    distinct: bool = False,
) -> Optional[List[object]]:
    """One aggregate value per group, vectorized; ``None`` declines.

    ``gid[i]`` is row ``i``'s group id in ``[0, group_count)``.  A returned
    list is element-for-element identical (by object, not merely ``==``) to
    applying the scalar aggregate to each group's member values in row
    order — except DISTINCT SUM/AVG, whose float accumulation order differs
    (see the module docstring) and matches after 9-decimal normalisation,
    and NaN-poisoned SUM/AVG results, which match the scalar NaN by value
    (``isnan``) rather than object identity.
    """
    name = name.upper()
    if name == "COUNT" and not distinct:
        # plain COUNT only consults the null mask — works for every kind
        counts = np.bincount(gid[~column.mask], minlength=group_count)
        return [int(count) for count in counts]
    if column.kind not in (KIND_NUMBER, KIND_TEXT):
        return None
    if name == "COUNT":
        return _grouped_count(column, gid, group_count, distinct)
    if name in ("SUM", "AVG"):
        if column.kind != KIND_NUMBER:
            # text values coerce through float() one by one — scalar-path
            # territory
            return None
        if distinct:
            return _grouped_distinct_sum_avg(name, column, gid, group_count)
        return _grouped_sum_avg(name, column, gid, group_count)
    if name in ("MIN", "MAX"):
        return _grouped_min_max(name, column, gid, group_count)
    return None
