"""The DVQ executor: turns a parsed DVQ plus a database into chart data rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.dvq.nodes import (
    AggregateExpr,
    ColumnRef,
    DVQuery,
    SortDirection,
)
from repro.executor.binning import bin_value
from repro.executor.errors import ExecutionError
from repro.executor.functions import apply_aggregate
from repro.executor.ordering import (
    canonical_top_k,
    legacy_order_key,
    order_index,
)
from repro.executor.predicates import evaluate_where


@dataclass
class ExecutionResult:
    """The materialised data series behind a chart.

    Attributes:
        columns: output column labels (x label first, then y, then colour).
        rows: list of tuples aligned with ``columns``.
        chart_type: the chart type of the executed query.
        approximation: ``None`` for exact results; an
            :class:`~repro.plan.sampling.ApproximationInfo` (typed loosely to
            avoid an executor->plan import cycle) when the columnar backend
            answered from a sample, carrying the error bounds.
    """

    columns: List[str]
    rows: List[Tuple[object, ...]] = field(default_factory=list)
    chart_type: str = ""
    approximation: Optional[object] = None

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def x_values(self) -> List[object]:
        return [row[0] for row in self.rows]

    def y_values(self) -> List[object]:
        """Values of the y column (the second output column).

        Raises:
            ValueError: when the result has fewer than two columns — a
                single-channel result has no y series, and silently yielding
                ``None`` hid axis mistakes from callers.
        """
        if len(self.columns) < 2:
            raise ValueError(
                f"Result has no y column (columns: {self.columns!r}); "
                "y_values requires at least two output columns"
            )
        return [row[1] for row in self.rows]


class _RowContext:
    """A joined row with per-source-table sub-rows for qualified lookups.

    ``parts`` is keyed by *lowercase* table name and ``maps`` carries each
    part's cached lowercase -> exact-casing column map
    (:meth:`~repro.database.schema.TableSchema.lower_map`), so a lookup is two
    dict probes instead of an O(columns) scan with repeated ``.lower()`` calls.
    """

    __slots__ = ("parts", "aliases", "maps")

    def __init__(
        self,
        parts: Dict[str, Dict[str, object]],
        aliases: Dict[str, str],
        maps: Dict[str, Dict[str, str]],
    ):
        self.parts = parts
        self.aliases = aliases
        self.maps = maps

    def lookup(self, column: ColumnRef) -> object:
        if column.table:
            table_name = self.aliases.get(column.table.lower(), column.table).lower()
            part = self.parts.get(table_name)
            if part is None:
                raise ExecutionError(f"Unknown table or alias {column.table!r}")
            return _lookup_in_row(part, column.column, self.maps[table_name])
        key = column.column.lower()
        for part_name, part in self.parts.items():
            canonical = self.maps[part_name].get(key)
            if canonical is not None:
                return part[canonical]
        raise ExecutionError(f"Unknown column {column.column!r}")


def _lookup_in_row(
    row: Dict[str, object], column_name: str, lower_map: Dict[str, str]
) -> object:
    canonical = lower_map.get(column_name.lower())
    if canonical is None:
        raise KeyError(column_name)
    return row[canonical]


class DVQExecutor:
    """Execute DVQs against in-memory databases."""

    def __init__(self, bin_interval: int = 100):
        self.bin_interval = bin_interval

    def execute(self, query: DVQuery, database: Database) -> ExecutionResult:
        """Execute ``query`` against ``database``.

        Raises:
            ExecutionError: when the query references missing tables or columns
                — the "no chart" failure mode of non-robust models.
        """
        contexts = self._build_contexts(query, database)
        contexts = self._apply_where(query, contexts)
        if self._needs_grouping(query):
            rows = self._execute_grouped(query, contexts)
        else:
            rows = self._execute_flat(query, contexts)
        if query.limit is not None:
            # a top-k cut must be engine-independent: the bounded selection
            # returns canonical_order(rows, query)[:limit] without paying a
            # full O(n log n) sort for a LIMIT 10 (see repro.executor.ordering)
            if query.order_by is None:
                rows = canonical_top_k(rows, query.limit)
            else:
                rows = canonical_top_k(
                    rows,
                    query.limit,
                    index=order_index(query),
                    descending=query.order_by.direction is SortDirection.DESC,
                )
        else:
            rows = self._apply_order(query, rows)
        columns = [item.render() for item in query.select]
        return ExecutionResult(columns=columns, rows=rows, chart_type=query.chart_type.value)

    def can_execute(self, query: DVQuery, database: Database) -> bool:
        """True when the query executes without error (used by benches)."""
        try:
            self.execute(query, database)
        except ExecutionError:
            return False
        return True

    # -- pipeline stages -------------------------------------------------

    def _build_contexts(self, query: DVQuery, database: Database) -> List[_RowContext]:
        if not database.has_table(query.table):
            raise ExecutionError(
                f"Database {database.name!r} has no table {query.table!r}",
                query=query,
                database=database.name,
            )
        aliases: Dict[str, str] = {}
        if query.table_alias:
            aliases[query.table_alias.lower()] = query.table
        primary = database.table(query.table)
        maps = {primary.name.lower(): primary.schema.lower_map()}
        contexts = [
            _RowContext({primary.name.lower(): row}, aliases, maps) for row in primary.rows
        ]
        for join in query.joins:
            if not database.has_table(join.table):
                raise ExecutionError(
                    f"Database {database.name!r} has no table {join.table!r}",
                    query=query,
                    database=database.name,
                )
            if join.alias:
                aliases[join.alias.lower()] = join.table
            joined = database.table(join.table)
            maps = dict(maps)
            maps[joined.name.lower()] = joined.schema.lower_map()
            contexts = self._join(
                contexts, joined.rows, joined.name.lower(), join.left, join.right, aliases, maps
            )
        self._validate_columns(query, contexts, database)
        return contexts

    def _join(
        self,
        contexts: List[_RowContext],
        right_rows: Sequence[Dict[str, object]],
        right_name: str,
        left_key: ColumnRef,
        right_key: ColumnRef,
        aliases: Dict[str, str],
        maps: Dict[str, Dict[str, str]],
    ) -> List[_RowContext]:
        """Hash-based equi-join of the accumulated contexts with a new table.

        Key resolution mirrors the historical nested-loop join: the probe key
        is whichever ON side resolves against the already-joined relation, the
        build key is matched by bare column name in the new table (falling
        back to the probe key's own name), and when neither resolves the join
        is empty.  Resolution is structural — identical for every context — so
        it is decided once, the new table is hashed on its key, and each
        context probes the hash; output order (context order, then right-row
        order) and match semantics (``==`` with NULL keys never matching, per
        SQL) are exactly those of the nested loop, which :meth:`_join_nested`
        preserves as the fallback for unhashable key values.
        """
        right_map = maps[right_name]
        if not contexts:
            return []
        for context in contexts:
            context.aliases = aliases
        probe = contexts[0]
        try:
            probe.lookup(left_key)
            use_left_on_context = True
        except ExecutionError:
            use_left_on_context = False
        if use_left_on_context:
            build_name = right_map.get(right_key.column.lower()) or right_map.get(
                left_key.column.lower()
            )
            probe_key = left_key
        else:
            # the "left" side of the ON clause actually names the new table
            build_name = right_map.get(left_key.column.lower())
            probe_key = right_key
        if build_name is None:
            return []
        try:
            buckets: Dict[object, List[Dict[str, object]]] = {}
            for row in right_rows:
                value = row[build_name]
                if value is None:  # SQL semantics: NULL keys never join
                    continue
                bucket = buckets.get(value)
                if bucket is None:
                    buckets[value] = [row]
                else:
                    bucket.append(row)
        except TypeError:  # unhashable key value: fall back to the O(n*m) scan
            return self._join_nested(
                contexts, right_rows, right_name, left_key, right_key, aliases, maps
            )
        joined: List[_RowContext] = []
        for context in contexts:
            try:
                left_value = context.lookup(probe_key)
            except ExecutionError:
                continue
            if left_value is None:  # a NULL probe key matches nothing
                continue
            try:
                matches = buckets.get(left_value)
            except TypeError:
                matches = [
                    row
                    for row in right_rows
                    if row[build_name] is not None and left_value == row[build_name]
                ]
            for row in matches or ():
                parts = dict(context.parts)
                parts[right_name] = row
                joined.append(_RowContext(parts, aliases, maps))
        return joined

    def _join_nested(
        self,
        contexts: List[_RowContext],
        right_rows: Sequence[Dict[str, object]],
        right_name: str,
        left_key: ColumnRef,
        right_key: ColumnRef,
        aliases: Dict[str, str],
        maps: Dict[str, Dict[str, str]],
    ) -> List[_RowContext]:
        """The historical nested-loop join (kept for unhashable key values)."""
        right_map = maps[right_name]
        joined: List[_RowContext] = []
        for context in contexts:
            context.aliases = aliases
            try:
                left_value = context.lookup(left_key)
                use_left_on_context = True
            except ExecutionError:
                use_left_on_context = False
            for row in right_rows:
                if use_left_on_context:
                    try:
                        right_value = _lookup_in_row(row, right_key.column, right_map)
                    except KeyError:
                        try:
                            right_value = _lookup_in_row(row, left_key.column, right_map)
                        except KeyError:
                            continue
                else:
                    try:
                        right_value = _lookup_in_row(row, left_key.column, right_map)
                        left_value = context.lookup(right_key)
                    except (KeyError, ExecutionError):
                        continue
                # SQL semantics: a NULL key on either side never matches
                if left_value is not None and right_value is not None and left_value == right_value:
                    parts = dict(context.parts)
                    parts[right_name] = row
                    joined.append(_RowContext(parts, aliases, maps))
        return joined

    def _validate_columns(
        self, query: DVQuery, contexts: List[_RowContext], database: Database
    ) -> None:
        available: List[str] = []
        for table_name in query.referenced_tables():
            if database.has_table(table_name):
                available.extend(
                    column.lower() for column in database.table(table_name).schema.column_names()
                )
        for column in query.referenced_columns():
            if column.column == "*":
                continue
            if column.column.lower() not in available:
                raise ExecutionError(
                    f"Column {column.column!r} does not exist in tables {query.referenced_tables()}",
                    query=query,
                    database=database.name,
                )

    def _apply_where(self, query: DVQuery, contexts: List[_RowContext]) -> List[_RowContext]:
        if query.where is None or not query.where.conditions:
            return contexts
        filtered = []
        for context in contexts:
            values = [context.lookup(condition.column) for condition in query.where.conditions]
            if evaluate_where(query.where, {}, values):
                filtered.append(context)
        return filtered

    def _needs_grouping(self, query: DVQuery) -> bool:
        return query.needs_grouping()

    def _group_key(self, query: DVQuery, context: _RowContext) -> Tuple[object, ...]:
        keys: List[object] = []
        if query.bin is not None:
            keys.append(
                bin_value(context.lookup(query.bin.column), query.bin.unit, self.bin_interval)
            )
        for column in query.group_by:
            keys.append(context.lookup(column))
        if not keys:
            # implicit grouping by the non-aggregated select columns
            for item in query.select:
                if not item.is_aggregate and item.column.column != "*":
                    keys.append(context.lookup(item.column))
        if not keys:
            keys.append("__all__")
        return tuple(keys)

    def _execute_grouped(self, query: DVQuery, contexts: List[_RowContext]) -> List[Tuple[object, ...]]:
        groups: Dict[Tuple[object, ...], List[_RowContext]] = {}
        order: List[Tuple[object, ...]] = []
        for context in contexts:
            key = self._group_key(query, context)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(context)
        rows: List[Tuple[object, ...]] = []
        for key in order:
            members = groups[key]
            row = tuple(
                self._evaluate_select_item(item, members, query, key) for item in query.select
            )
            rows.append(row)
        return rows

    def _evaluate_select_item(
        self,
        item,
        members: List[_RowContext],
        query: DVQuery,
        group_key: Tuple[object, ...],
    ) -> object:
        if isinstance(item.expr, AggregateExpr):
            argument = item.expr.argument
            if argument.column == "*":
                values: List[object] = [1] * len(members)
            else:
                values = [member.lookup(argument) for member in members]
            return apply_aggregate(item.expr.function.value, values, distinct=item.expr.distinct)
        # non-aggregated column: binned x axis takes the bin label
        if query.bin is not None and item.column.lower_key() == query.bin.column.lower_key():
            return group_key[0]
        return members[0].lookup(item.expr)

    def _execute_flat(self, query: DVQuery, contexts: List[_RowContext]) -> List[Tuple[object, ...]]:
        rows = []
        for context in contexts:
            rows.append(tuple(context.lookup(item.column) for item in query.select))
        return rows

    def _apply_order(self, query: DVQuery, rows: List[Tuple[object, ...]]) -> List[Tuple[object, ...]]:
        if query.order_by is None:
            return rows
        order = query.order_by
        index = self._order_index(query)

        def sort_key(row: Tuple[object, ...]):
            # Nones last, mixed types by string form (shared with the
            # columnar engine's Sort node)
            return legacy_order_key(row[index] if index < len(row) else None)

        reverse = order.direction is SortDirection.DESC
        return sorted(rows, key=sort_key, reverse=reverse)

    def _order_index(self, query: DVQuery) -> int:
        return order_index(query)
