"""Execution engines for DVQs over the in-memory relational substrate.

The executor materialises the data series behind a chart: it evaluates the
FROM/JOIN/WHERE/GROUP BY/ORDER BY/BIN/LIMIT parts of a DVQ against a
:class:`repro.database.Database` and returns the projected rows.  It is the
substrate behind chart rendering (Table 5 / Figure 5 case study), the
execution-guided repair loop and the evaluation harness's execution checks.

Execution is pluggable: :class:`ExecutionBackend` is the engine contract,
implemented three times —

* :class:`ColumnarBackend` (``"columnar"``), the default: lowers the DVQ to a
  logical plan (:mod:`repro.plan`), optimizes it, and executes it over
  column batches with hash joins and hash grouping;
* :class:`InterpreterBackend` (``"interpreter"``): the legacy row-at-a-time
  reference engine, kept as the differential-testing oracle;
* :class:`repro.sql.SQLiteBackend` (``"sqlite"``): compiles the same logical
  plan to SQL and runs it on SQLite.

``resolve_backend("columnar" | "interpreter" | "sqlite")`` is the factory
used by the configuration knobs; :func:`normalize_result` is the
cross-engine normalisation making every backend return identical results.
"""

from repro.executor.backend import (
    ExecutionBackend,
    ExecutionOutcome,
    InterpreterBackend,
    canonical_value,
    classify_failure,
    explain_execution,
    normalize_result,
    parse_failure_outcome,
    resolve_backend,
)
from repro.executor.errors import ExecutionError
from repro.executor.executor import DVQExecutor, ExecutionResult
from repro.executor.functions import AGGREGATE_FUNCTIONS, apply_aggregate
from repro.executor.ordering import canonical_order, order_index

# imported last: repro.executor.columnar pulls in repro.plan, which imports
# the submodules above while this package is still initialising
from repro.executor.columnar import ColumnarBackend, ColumnarEngine

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "ColumnarBackend",
    "ColumnarEngine",
    "DVQExecutor",
    "ExecutionBackend",
    "ExecutionError",
    "ExecutionOutcome",
    "ExecutionResult",
    "InterpreterBackend",
    "apply_aggregate",
    "canonical_order",
    "canonical_value",
    "classify_failure",
    "explain_execution",
    "normalize_result",
    "order_index",
    "parse_failure_outcome",
    "resolve_backend",
]
