"""Execution engine for DVQs over the in-memory relational substrate.

The executor materialises the data series behind a chart: it evaluates the
FROM/JOIN/WHERE/GROUP BY/ORDER BY/BIN/LIMIT parts of a DVQ against a
:class:`repro.database.Database` and returns the projected rows.  It is the
substrate behind chart rendering (Table 5 / Figure 5 case study) and behind
execution-based sanity checks in the benchmark suite.

Execution is pluggable: :class:`ExecutionBackend` is the engine contract,
implemented by the row-at-a-time :class:`InterpreterBackend` here and by
:class:`repro.sql.SQLiteBackend`, which compiles DVQs to SQL and runs them on
SQLite.  ``resolve_backend("interpreter" | "sqlite")`` is the factory used by
the configuration knobs; :func:`normalize_result` is the cross-engine
normalisation making both backends return identical results.
"""

from repro.executor.backend import (
    ExecutionBackend,
    ExecutionOutcome,
    InterpreterBackend,
    canonical_value,
    classify_failure,
    explain_execution,
    normalize_result,
    parse_failure_outcome,
    resolve_backend,
)
from repro.executor.errors import ExecutionError
from repro.executor.executor import DVQExecutor, ExecutionResult
from repro.executor.functions import AGGREGATE_FUNCTIONS, apply_aggregate
from repro.executor.ordering import canonical_order, order_index

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "DVQExecutor",
    "ExecutionBackend",
    "ExecutionError",
    "ExecutionOutcome",
    "ExecutionResult",
    "InterpreterBackend",
    "apply_aggregate",
    "canonical_order",
    "canonical_value",
    "classify_failure",
    "explain_execution",
    "normalize_result",
    "order_index",
    "parse_failure_outcome",
    "resolve_backend",
]
