"""Execution engine for DVQs over the in-memory relational substrate.

The executor materialises the data series behind a chart: it evaluates the
FROM/JOIN/WHERE/GROUP BY/ORDER BY/BIN parts of a DVQ against a
:class:`repro.database.Database` and returns the projected rows.  It is the
substrate behind chart rendering (Table 5 / Figure 5 case study) and behind
execution-based sanity checks in the benchmark suite.
"""

from repro.executor.errors import ExecutionError
from repro.executor.executor import DVQExecutor, ExecutionResult
from repro.executor.functions import AGGREGATE_FUNCTIONS, apply_aggregate

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "DVQExecutor",
    "ExecutionError",
    "ExecutionResult",
    "apply_aggregate",
]
