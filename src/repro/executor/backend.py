"""Pluggable execution backends and cross-engine result normalisation.

A DVQ can be materialised by more than one engine: the pure-Python
row-at-a-time interpreter (:class:`~repro.executor.executor.DVQExecutor`) or
the SQL compiler + SQLite engine in :mod:`repro.sql`.  This module defines the
contract they share (:class:`ExecutionBackend`), the normalisation that makes
their results comparable value-for-value (:func:`normalize_result`), and a
small factory (:func:`resolve_backend`) that configuration layers use to turn
a backend name into an instance.

Two normalised results from different engines are identical for every query in
the *portable* DVQ subset — the differential suite
(``tests/test_sql_differential.py``) enforces this.  The subset excludes only
constructs whose semantics SQL itself leaves unspecified (bare select columns
outside the grouping key, ORDER BY expressions absent from the select list)
or that compare values across incompatible types.
"""

from __future__ import annotations

from typing import List, Tuple, Union

try:  # Protocol is 3.8+, runtime_checkable decorates it for isinstance checks
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient pythons
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.database.database import Database
from repro.dvq.nodes import DVQuery
from repro.executor.errors import ExecutionError
from repro.executor.executor import DVQExecutor, ExecutionResult
from repro.executor.ordering import canonical_order


@runtime_checkable
class ExecutionBackend(Protocol):
    """The execution-engine contract shared by the interpreter and SQLite.

    Implementations materialise a parsed :class:`~repro.dvq.nodes.DVQuery`
    against a :class:`~repro.database.database.Database` into a normalised
    :class:`~repro.executor.executor.ExecutionResult`, raising
    :class:`~repro.executor.errors.ExecutionError` for queries that reference
    missing tables or columns (the paper's "no chart" failure mode).
    """

    name: str

    def execute(self, query: DVQuery, database: Database) -> ExecutionResult:
        ...  # pragma: no cover - protocol stub

    def can_execute(self, query: DVQuery, database: Database) -> bool:
        ...  # pragma: no cover - protocol stub


def canonical_value(value: object) -> object:
    """Coerce ``value`` to its canonical cross-engine form.

    SQLite has no boolean storage class (``True`` comes back as ``1``) and
    keeps integer sums integral where the interpreter's float-based aggregates
    produce ``6.0``; rounding to 9 decimal places absorbs any accumulation
    order difference in float aggregates.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return round(value, 9)
    return value


def normalize_result(result: ExecutionResult, query: DVQuery) -> ExecutionResult:
    """Return ``result`` with canonical values and canonical row order.

    Both backends funnel their raw output through this function, so results
    compare equal across engines: values are coerced via
    :func:`canonical_value` and rows are re-sorted into the deterministic
    order of :func:`repro.executor.ordering.canonical_order` (which respects
    the query's ORDER BY while fixing tie order).
    """
    rows: List[Tuple[object, ...]] = [
        tuple(canonical_value(value) for value in row) for row in result.rows
    ]
    rows = canonical_order(rows, query)
    return ExecutionResult(
        columns=list(result.columns), rows=rows, chart_type=result.chart_type
    )


class InterpreterBackend:
    """The seed row-at-a-time interpreter behind the backend protocol.

    Wraps a :class:`~repro.executor.executor.DVQExecutor` and normalises its
    output; it is the reference oracle the SQLite backend is differentially
    tested against.
    """

    name = "interpreter"

    def __init__(self, bin_interval: int = 100, normalize: bool = True):
        self._executor = DVQExecutor(bin_interval=bin_interval)
        self.normalize = normalize

    def execute(self, query: DVQuery, database: Database) -> ExecutionResult:
        result = self._executor.execute(query, database)
        if self.normalize:
            result = normalize_result(result, query)
        return result

    def can_execute(self, query: DVQuery, database: Database) -> bool:
        try:
            self.execute(query, database)
        except ExecutionError:
            return False
        return True


#: Accepted by every ``execution_backend`` knob: a backend name or an instance.
BackendSpec = Union[str, ExecutionBackend]


def resolve_backend(spec: BackendSpec) -> ExecutionBackend:
    """Turn a backend name (``"interpreter"`` / ``"sqlite"``) into an instance.

    Backend instances pass through unchanged, so callers can hand in a
    pre-configured (and pre-warmed) backend.  The SQLite backend is imported
    lazily to keep :mod:`repro.executor` free of a hard dependency on
    :mod:`repro.sql`.
    """
    if not isinstance(spec, str):
        return spec
    name = spec.strip().lower()
    if name == "interpreter":
        return InterpreterBackend()
    if name == "sqlite":
        from repro.sql.backend import SQLiteBackend

        return SQLiteBackend()
    raise ValueError(
        f"Unknown execution backend {spec!r}; expected 'interpreter' or 'sqlite'"
    )
