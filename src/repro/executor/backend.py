"""Pluggable execution backends and cross-engine result normalisation.

A DVQ can be materialised by more than one engine: the pure-Python
row-at-a-time interpreter (:class:`~repro.executor.executor.DVQExecutor`) or
the SQL compiler + SQLite engine in :mod:`repro.sql`.  This module defines the
contract they share (:class:`ExecutionBackend`), the normalisation that makes
their results comparable value-for-value (:func:`normalize_result`), and a
small factory (:func:`resolve_backend`) that configuration layers use to turn
a backend name into an instance.

Two normalised results from different engines are identical for every query in
the *portable* DVQ subset — the differential suite
(``tests/test_sql_differential.py``) enforces this.  The subset excludes only
constructs whose semantics SQL itself leaves unspecified (bare select columns
outside the grouping key, ORDER BY expressions absent from the select list)
or that compare values across incompatible types.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple, Union, runtime_checkable

from repro.database.database import Database
from repro.dvq.nodes import DVQuery
from repro.executor.errors import ExecutionError
from repro.executor.executor import DVQExecutor, ExecutionResult
from repro.executor.ordering import canonical_order


#: Stable failure categories shared by every backend.  The differential suite
#: asserts that the interpreter and SQLite classify the same broken query into
#: the same category (``tests/test_sql_differential.py``).
CATEGORY_OK = "ok"
CATEGORY_PARSE_ERROR = "parse_error"
CATEGORY_MISSING_TABLE = "missing_table"
CATEGORY_MISSING_COLUMN = "missing_column"
CATEGORY_UNSUPPORTED = "unsupported"
CATEGORY_ENGINE_ERROR = "engine_error"


@dataclass(frozen=True)
class ExecutionOutcome:
    """The structured verdict of one execution attempt.

    Replaces the bare ``can_execute`` boolean wherever the *cause* of a
    failure matters — most importantly the execution-guided repair loop
    (:class:`repro.pipeline.stages.ExecutionGuidedRepairStage`), which feeds
    ``category`` and ``missing`` back into the debugging LLM.

    Attributes:
        category: one of the ``CATEGORY_*`` constants above.
        message: the human-readable error (empty on success).
        missing: identifiers (tables or columns) the error names as absent
            from the target database, when the category is
            ``missing_table`` / ``missing_column``.
    """

    category: str = CATEGORY_OK
    message: str = ""
    missing: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.category == CATEGORY_OK

    def diagnosis(self) -> str:
        """One line suitable for a repair prompt or a log."""
        if self.ok:
            return "the query executed and produced a chart"
        parts = [self.category.replace("_", " ")]
        if self.missing:
            parts.append("missing: " + ", ".join(self.missing))
        if self.message:
            parts.append(self.message)
        return " — ".join(parts)


#: ``(regex, category)`` in match priority order; the first group of each
#: pattern captures the missing identifier.  The messages are raised by both
#: the interpreter (``executor/executor.py``) and the SQL compiler
#: (``sql/compiler.py``), which is what keeps the categories engine-agnostic.
_FAILURE_PATTERNS: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"has no column '([^']+)'"), CATEGORY_MISSING_COLUMN),
    (re.compile(r"Unknown column '([^']+)'"), CATEGORY_MISSING_COLUMN),
    (re.compile(r"Column '([^']+)' does not exist"), CATEGORY_MISSING_COLUMN),
    (re.compile(r"has no table '([^']+)'"), CATEGORY_MISSING_TABLE),
    (re.compile(r"Unknown table or alias '([^']+)'"), CATEGORY_MISSING_TABLE),
    (re.compile(r"Unsupported \w+ '?([^']*)'?"), CATEGORY_UNSUPPORTED),
]


def classify_failure(error: ExecutionError) -> ExecutionOutcome:
    """Map an :class:`~repro.executor.errors.ExecutionError` to an outcome.

    Classification is by message shape, so the two engines — which raise
    their own errors at different points (the compiler at compile time, the
    interpreter mid-execution) — land in the same category for the same
    broken query.
    """
    message = str(error)
    for pattern, category in _FAILURE_PATTERNS:
        match = pattern.search(message)
        if match:
            missing: Tuple[str, ...] = ()
            if category in (CATEGORY_MISSING_TABLE, CATEGORY_MISSING_COLUMN):
                missing = tuple(name for name in (match.group(1),) if name)
            return ExecutionOutcome(category=category, message=message, missing=missing)
    return ExecutionOutcome(category=CATEGORY_ENGINE_ERROR, message=message)


def parse_failure_outcome(text: str) -> ExecutionOutcome:
    """The outcome for a candidate that does not even parse as a DVQ."""
    snippet = " ".join(text.split())[:120]
    return ExecutionOutcome(
        category=CATEGORY_PARSE_ERROR,
        message=f"not a parseable DVQ: {snippet!r}" if snippet else "empty candidate",
    )


def explain_execution(
    backend: "ExecutionBackend", query: DVQuery, database: Database
) -> ExecutionOutcome:
    """Run ``query`` on ``backend`` and classify the result.

    The shared implementation behind ``explain_failure`` on both backends —
    kept module-level so any object satisfying the protocol gets structured
    outcomes for free.
    """
    try:
        backend.execute(query, database)
    except ExecutionError as error:
        return classify_failure(error)
    return ExecutionOutcome()


@runtime_checkable
class ExecutionBackend(Protocol):
    """The execution-engine contract shared by the interpreter and SQLite.

    Implementations materialise a parsed :class:`~repro.dvq.nodes.DVQuery`
    against a :class:`~repro.database.database.Database` into a normalised
    :class:`~repro.executor.executor.ExecutionResult`, raising
    :class:`~repro.executor.errors.ExecutionError` for queries that reference
    missing tables or columns (the paper's "no chart" failure mode).
    """

    name: str

    def execute(self, query: DVQuery, database: Database) -> ExecutionResult:
        ...  # pragma: no cover - protocol stub

    def can_execute(self, query: DVQuery, database: Database) -> bool:
        ...  # pragma: no cover - protocol stub

    def explain_failure(self, query: DVQuery, database: Database) -> ExecutionOutcome:
        ...  # pragma: no cover - protocol stub


def canonical_value(value: object) -> object:
    """Coerce ``value`` to its canonical cross-engine form.

    SQLite has no boolean storage class (``True`` comes back as ``1``) and
    keeps integer sums integral where the interpreter's float-based aggregates
    produce ``6.0``; rounding to 9 decimal places absorbs any accumulation
    order difference in float aggregates.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return round(value, 9)
    return value


def normalize_result(result: ExecutionResult, query: DVQuery) -> ExecutionResult:
    """Return ``result`` with canonical values and canonical row order.

    Both backends funnel their raw output through this function, so results
    compare equal across engines: values are coerced via
    :func:`canonical_value` and rows are re-sorted into the deterministic
    order of :func:`repro.executor.ordering.canonical_order` (which respects
    the query's ORDER BY while fixing tie order).
    """
    rows: List[Tuple[object, ...]] = [
        tuple(canonical_value(value) for value in row) for row in result.rows
    ]
    rows = canonical_order(rows, query)
    return ExecutionResult(
        columns=list(result.columns),
        rows=rows,
        chart_type=result.chart_type,
        approximation=result.approximation,
    )


class InterpreterBackend:
    """The seed row-at-a-time interpreter behind the backend protocol.

    Wraps a :class:`~repro.executor.executor.DVQExecutor` and normalises its
    output; it is the reference oracle the SQLite backend is differentially
    tested against.
    """

    name = "interpreter"

    def __init__(self, bin_interval: int = 100, normalize: bool = True):
        self._executor = DVQExecutor(bin_interval=bin_interval)
        self.normalize = normalize

    def execute(self, query: DVQuery, database: Database) -> ExecutionResult:
        result = self._executor.execute(query, database)
        if self.normalize:
            result = normalize_result(result, query)
        return result

    def can_execute(self, query: DVQuery, database: Database) -> bool:
        try:
            self.execute(query, database)
        except ExecutionError:
            return False
        return True

    def explain_failure(self, query: DVQuery, database: Database) -> ExecutionOutcome:
        """Like :meth:`can_execute`, but keeping the failure cause structured."""
        return explain_execution(self, query, database)


#: Accepted by every ``execution_backend`` knob: a backend name or an instance.
BackendSpec = Union[str, ExecutionBackend]


def default_parallel_workers() -> int:
    """The thread-pool width ``"columnar-parallel"`` defaults to: the core
    count clamped to [2, 8] — enough to saturate the partitioned kernels
    without oversubscribing small machines."""
    import os

    return max(2, min(8, os.cpu_count() or 1))


def resolve_backend(
    spec: BackendSpec,
    optimize: bool = True,
    approximate: bool = False,
    max_workers: Optional[int] = None,
    morsel_size: Optional[int] = None,
) -> ExecutionBackend:
    """Turn a backend name into an instance.

    Accepted names: ``"columnar"`` (the plan-driven columnar engine with
    cost-based optimization — the default everywhere), ``"columnar-parallel"``
    (the same engine with the parallel pipeline on — partitioned joins,
    partial grouped aggregation, morsel scans — defaulting to
    :func:`default_parallel_workers` threads; results are identical to the
    serial engine for every worker count), ``"columnar-rules"`` (the columnar
    engine with only the rule-based rewrites, no statistics),
    ``"columnar-python"`` (columnar with the vectorized kernels disabled),
    ``"columnar-approx"`` (columnar with the sampling-based approximate path
    enabled), ``"interpreter"`` (the legacy row-at-a-time reference engine)
    and ``"sqlite"`` (the DVQ->SQL compiler over SQLite).  ``optimize``
    toggles the plan optimizer and ``approximate`` the AQP rewrite;
    ``max_workers`` / ``morsel_size`` override the engine's parallelism knobs
    (``None`` keeps each name's default) — all four only affect the columnar
    backends.  Backend instances pass through unchanged, so callers can hand
    in a pre-configured (and pre-warmed) backend.  The SQLite and columnar
    backends are imported lazily to keep this module light.
    """
    if not isinstance(spec, str):
        return spec
    name = spec.strip().lower()
    engine_kwargs = {}
    if max_workers is not None:
        engine_kwargs["max_workers"] = max_workers
    if morsel_size is not None:
        engine_kwargs["morsel_size"] = morsel_size
    if name in ("columnar", "columnar-cbo"):
        from repro.executor.columnar import ColumnarBackend

        return ColumnarBackend(
            optimize=optimize, approximate=approximate, **engine_kwargs
        )
    if name == "columnar-parallel":
        from repro.executor.columnar import ColumnarBackend

        engine_kwargs.setdefault("max_workers", default_parallel_workers())
        return ColumnarBackend(
            optimize=optimize, approximate=approximate, **engine_kwargs
        )
    if name == "columnar-rules":
        from repro.executor.columnar import ColumnarBackend

        return ColumnarBackend(
            optimize=optimize, cost_based=False, approximate=approximate,
            **engine_kwargs,
        )
    if name == "columnar-python":
        from repro.executor.columnar import ColumnarBackend

        return ColumnarBackend(
            optimize=optimize, vectorize=False, approximate=approximate,
            **engine_kwargs,
        )
    if name == "columnar-approx":
        from repro.executor.columnar import ColumnarBackend

        return ColumnarBackend(optimize=optimize, approximate=True, **engine_kwargs)
    if name == "interpreter":
        return InterpreterBackend()
    if name == "sqlite":
        from repro.sql.backend import SQLiteBackend

        return SQLiteBackend()
    raise ValueError(
        f"Unknown execution backend {spec!r}; expected 'columnar', "
        "'columnar-cbo', 'columnar-parallel', 'columnar-rules', "
        "'columnar-python', 'columnar-approx', 'interpreter' or 'sqlite'"
    )
