"""Partitioned parallel kernels: equi-joins and grouped aggregation.

Morsel-parallel scans left joins and grouping single-threaded; this module
shards them across the engine's :class:`~repro.runtime.runner.BatchRunner`
under a strict *determinism contract*: every kernel either returns exactly
what its serial counterpart would — independent of worker count and morsel
split — or declines with ``None`` so the engine runs the serial kernel.

How each kernel keeps the contract:

* **Group encode** (:func:`parallel_group_ids`): each morsel
  dictionary-encodes its slice with ``np.unique``; the merge unions the
  per-morsel dictionaries, takes each value's earliest absolute row, and
  ranks values by that first occurrence.  "Rank by first occurrence" does
  not depend on how rows were split, so the dense codes equal the serial
  first-seen encode.  Multi-key grouping mirrors the serial pairwise
  ``combined * k + code`` re-encode.
* **COUNT** / **COUNT DISTINCT**: partial bincounts sum exactly (small
  integers); per-morsel distinct (group, value) pairs re-dedupe globally —
  set cardinality has no accumulation order.  NaN rows are counted by
  object identity in one pass over only those rows, matching ``set()``.
* **SUM / AVG**: per-morsel partial sums merge only when provably exact —
  every value integral (and finite) with total magnitude below 2**53,
  where float64 addition is associative.  Otherwise the merge is one
  full-array ``np.bincount`` over the parallel-computed group ids: the
  serial kernel's own row-order accumulation, bit for bit.
* **MIN / MAX**: per-morsel fold states (winner row per group, via
  :func:`~repro.executor.functions.grouped_extreme_rows`) merge in morsel
  order with the scalar fold itself: a later winner dethrones only by a
  strict comparison win, so ties keep the earlier row and NaN — which
  loses every comparison — survives only as a group's first value.
* **Join** (:func:`partitioned_join_indices`): both sides split into the
  same key ranges (pivots from a deterministic strided build-side sample;
  comparison-based, not hashed, so ``-0.0 == 0.0`` and float/text equality
  behave exactly like the sort kernel); each partition runs the serial
  sort/searchsorted join; results scatter into the canonical probe-major,
  build-row-ascending layout at positions computed from global per-probe
  match counts — the same pairs in the same order for any partitioning.
* **Sort** (:func:`partitioned_sort`): rows range-partition on the primary
  sort code (pivots from a strided sample, ``searchsorted`` left like the
  join, so tied codes share a partition); each partition runs the serial
  stable lexsort over ascending row positions; partitions concatenate in
  pivot order.  Tied codes never straddle a partition and stay in row
  order inside one, so the permutation equals the global stable sort.
* **Top-k** (:func:`parallel_topk`): each morsel keeps its own pivot-tied
  ``argpartition`` candidate superset; since the k-th order statistic of a
  morsel is never below the global one, the union of morsel candidates
  contains every row of the serial candidate set, and running the serial
  selection kernel over that union (indices ascending) yields the serial
  cut bit for bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.database.typed import KIND_NUMBER, KIND_TEXT, TypedColumn
from repro.executor.functions import (
    _identity_distinct_nan_counts,
    grouped_extreme_rows,
    grouped_first_rows,
)
from repro.executor.ordering import topk_order
from repro.runtime.runner import BatchRunner

_EMPTY_INDICES = np.empty(0, dtype=np.intp)

#: Integer magnitudes below 2**53 are exact in float64, making partial sums
#: associative — the precondition for merging per-morsel sums bit-exactly.
_EXACT_SUM_BOUND = float(2**53)

#: Upper bound on join partitions: enough to feed any sane worker count
#: while keeping per-partition scheduling overhead negligible.
MAX_JOIN_PARTITIONS = 64

#: Upper bound on sort partitions, for the same reason.
MAX_SORT_PARTITIONS = 64


def morsel_ranges(length: int, morsel_size: int) -> List[Tuple[int, int]]:
    """Row ranges of at most ``morsel_size`` rows covering ``[0, length)``."""
    size = max(int(morsel_size), 1)
    return [(start, min(start + size, length)) for start in range(0, length, size)]


# -- group-id encode ---------------------------------------------------------


def _encode_morsel(
    data: np.ndarray, mask: Optional[np.ndarray], start: int, stop: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Dictionary-encode one slice: (uniques, codes, first_rows, null_first).

    ``codes`` are morsel-local dense codes with ``-1`` on NULL rows;
    ``first_rows`` holds the *absolute* first row of each local unique;
    ``null_first`` is the absolute first NULL row, or ``-1``.
    """
    values = data[start:stop]
    length = stop - start
    valid_rows: Optional[np.ndarray] = None
    null_first = -1
    if mask is not None:
        segment_mask = mask[start:stop]
        null_rows = np.flatnonzero(segment_mask)
        if null_rows.size:
            null_first = int(null_rows[0]) + start
            valid_rows = np.flatnonzero(~segment_mask)
            values = values[valid_rows]
    if values.size == 0:
        return values, np.full(length, -1, dtype=np.intp), _EMPTY_INDICES, null_first
    uniques, first_pos, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    if valid_rows is None:
        codes = inverse.astype(np.intp, copy=False)
        first_rows = first_pos.astype(np.intp) + start
    else:
        codes = np.full(length, -1, dtype=np.intp)
        codes[valid_rows] = inverse
        first_rows = valid_rows[first_pos] + start
    return uniques, codes, first_rows, null_first


def parallel_encode(
    data: np.ndarray,
    mask: Optional[np.ndarray],
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
    """First-seen dense codes for one key array, computed morsel-parallel.

    Returns ``(gid, first_rows, group_count)`` identical to the serial
    first-seen encode (NULL is one group like any other, ranked by its first
    row), or ``None`` when a morsel task failed.
    """
    report = runner.run(
        ranges, lambda rng: _encode_morsel(data, mask, rng[0], rng[1])
    )
    if report.failure_count:
        return None
    parts = report.values()
    global_uniques = np.unique(np.concatenate([part[0] for part in parts]))
    length = ranges[-1][1]
    # earliest absolute row per unique: morsels are visited in row order, so
    # the first morsel naming a value wins and later morsels never override
    unique_first = np.full(global_uniques.size, length, dtype=np.intp)
    positions: List[np.ndarray] = []
    for uniques, _, first_rows, _ in parts:
        if uniques.size == 0:
            positions.append(_EMPTY_INDICES)
            continue
        pos = np.searchsorted(global_uniques, uniques)
        positions.append(pos)
        unseen = unique_first[pos] == length
        unique_first[pos[unseen]] = first_rows[unseen]
    null_firsts = [part[3] for part in parts if part[3] >= 0]
    if null_firsts:
        all_first = np.append(unique_first, null_firsts[0])
    else:
        all_first = unique_first
    order = np.argsort(all_first, kind="stable")
    rank = np.empty(order.size, dtype=np.intp)
    rank[order] = np.arange(order.size)
    null_rank = int(rank[global_uniques.size]) if null_firsts else -1

    def remap(index: int) -> np.ndarray:
        codes = parts[index][1]
        segment = np.empty(codes.size, dtype=np.intp)
        valid = codes >= 0
        if positions[index].size:
            segment[valid] = rank[positions[index]][codes[valid]]
        segment[~valid] = null_rank
        return segment

    remapped = runner.run(range(len(parts)), remap)
    if remapped.failure_count:
        return None
    gid = np.concatenate(remapped.values())
    return gid, all_first[order], order.size


def parallel_group_ids(
    sources: Sequence[Tuple[np.ndarray, Optional[np.ndarray]]],
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
    """Combine one or more ``(data, mask-or-None)`` keys into group ids.

    Mirrors the serial pairwise combine: encode each key, then re-encode
    ``combined * k + code`` so the final ids rank by first occurrence of the
    full key tuple — dense-code relabeling never changes which rows group
    together, and the last first-seen re-rank fixes the order.
    """
    result: Optional[Tuple[np.ndarray, np.ndarray, int]] = None
    combined: Optional[np.ndarray] = None
    for data, mask in sources:
        encoded = parallel_encode(data, mask, ranges, runner)
        if encoded is None:
            return None
        gid, _, count = encoded
        if combined is None:
            combined = gid.astype(np.int64, copy=False)
            result = encoded
            continue
        # both factors are dense codes < row count, so the product fits int64
        merged = combined * np.int64(count) + gid
        encoded = parallel_encode(merged, None, ranges, runner)
        if encoded is None:
            return None
        combined = encoded[0].astype(np.int64, copy=False)
        result = encoded
    return result


# -- partial grouped aggregates ----------------------------------------------


def _dedupe_pairs(
    groups: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct (group, value) pairs, sorted by (group, value)."""
    order = np.lexsort((values, groups))
    groups = groups[order]
    values = values[order]
    keep = np.ones(groups.size, dtype=bool)
    keep[1:] = (groups[1:] != groups[:-1]) | (values[1:] != values[:-1])
    return groups[keep], values[keep]


def _distinct_pairs(
    column: TypedColumn, gid: np.ndarray, start: int, stop: int, drop_nan: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One morsel's distinct (group, value) pairs plus its NaN rows.

    With ``drop_nan`` the NaN rows come back separately (absolute indices,
    for identity-distinct counting); otherwise they stay in the pairs, where
    ``NaN != NaN`` keeps every one — matching the serial dedupe.
    """
    segment_mask = column.mask[start:stop]
    valid = ~segment_mask
    groups = gid[start:stop][valid]
    values = column.data[start:stop][valid]
    nan_rows = _EMPTY_INDICES
    if drop_nan and column.kind == KIND_NUMBER and groups.size:
        nan_mask = np.isnan(values)
        if nan_mask.any():
            nan_rows = np.flatnonzero(valid)[nan_mask] + start
            groups = groups[~nan_mask]
            values = values[~nan_mask]
    if groups.size:
        groups, values = _dedupe_pairs(groups, values)
    return groups, values, nan_rows


def _parallel_count(
    column: TypedColumn,
    gid: np.ndarray,
    group_count: int,
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[List[int]]:
    mask = column.mask
    report = runner.run(
        ranges,
        lambda rng: np.bincount(
            gid[rng[0] : rng[1]][~mask[rng[0] : rng[1]]], minlength=group_count
        ),
    )
    if report.failure_count:
        return None
    counts = np.sum(report.values(), axis=0)
    return [int(count) for count in counts]


def _parallel_count_distinct(
    column: TypedColumn,
    gid: np.ndarray,
    group_count: int,
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[List[int]]:
    report = runner.run(
        ranges, lambda rng: _distinct_pairs(column, gid, rng[0], rng[1], True)
    )
    if report.failure_count:
        return None
    parts = report.values()
    groups = np.concatenate([part[0] for part in parts])
    values = np.concatenate([part[1] for part in parts])
    if groups.size:
        groups, _ = _dedupe_pairs(groups, values)
        counts = np.bincount(groups, minlength=group_count)
    else:
        counts = np.zeros(group_count, dtype=np.intp)
    nan_rows = np.concatenate([part[2] for part in parts])
    if nan_rows.size:
        counts = counts + _identity_distinct_nan_counts(
            column.objects, nan_rows, gid, group_count
        )
    return [int(count) for count in counts]


def _morsel_sums(
    column: TypedColumn, gid: np.ndarray, group_count: int, start: int, stop: int
) -> Tuple[np.ndarray, np.ndarray, bool, float]:
    values = column.data[start:stop]
    segment_gid = gid[start:stop]
    sums = np.bincount(segment_gid, weights=values, minlength=group_count)
    counts = np.bincount(
        segment_gid[~column.mask[start:stop]], minlength=group_count
    )
    # NULL placeholders are 0.0 — integral and accumulation-neutral; NaN and
    # infinities fail the finite check, forcing the order-exact merge path
    exact = bool(np.isfinite(values).all()) and bool(
        (values == np.trunc(values)).all()
    )
    magnitude = float(np.abs(values).sum()) if exact else 0.0
    return sums, counts, exact, magnitude


def _parallel_sum_avg(
    name: str,
    column: TypedColumn,
    gid: np.ndarray,
    group_count: int,
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[List[Optional[float]]]:
    report = runner.run(
        ranges, lambda rng: _morsel_sums(column, gid, group_count, rng[0], rng[1])
    )
    if report.failure_count:
        return None
    parts = report.values()
    counts = np.sum([part[1] for part in parts], axis=0)
    if all(part[2] for part in parts) and (
        sum(part[3] for part in parts) < _EXACT_SUM_BOUND
    ):
        # integer-valued and small enough: float64 addition is exact here, so
        # the partial sums merge associatively — bit-identical to the serial
        # row-order fold
        sums = np.sum([part[0] for part in parts], axis=0)
    else:
        # accumulation order matters: one full-array bincount in row order
        # *is* the serial kernel's fold, reusing the parallel group ids
        sums = np.bincount(gid, weights=column.data, minlength=group_count)
    if name == "SUM":
        return [float(sums[g]) if counts[g] else None for g in range(group_count)]
    return [
        float(sums[g]) / int(counts[g]) if counts[g] else None
        for g in range(group_count)
    ]


def _parallel_distinct_sum_avg(
    name: str,
    column: TypedColumn,
    gid: np.ndarray,
    group_count: int,
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[List[Optional[float]]]:
    report = runner.run(
        ranges, lambda rng: _distinct_pairs(column, gid, rng[0], rng[1], False)
    )
    if report.failure_count:
        return None
    parts = report.values()
    groups = np.concatenate([part[0] for part in parts])
    values = np.concatenate([part[1] for part in parts])
    result: List[Optional[float]] = [None] * group_count
    if groups.size == 0:
        return result
    # re-deduping the concatenated morsel dedups yields the same sorted
    # distinct multiset as the serial kernel's single global dedupe, so the
    # bincount accumulates the identical sequence
    groups, values = _dedupe_pairs(groups, values)
    sums = np.bincount(groups, weights=values, minlength=group_count)
    counts = np.bincount(groups, minlength=group_count)
    if name == "SUM":
        return [float(sums[g]) if counts[g] else None for g in range(group_count)]
    return [
        float(sums[g]) / int(counts[g]) if counts[g] else None
        for g in range(group_count)
    ]


def _parallel_min_max(
    name: str,
    column: TypedColumn,
    gid: np.ndarray,
    group_count: int,
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[List[Optional[object]]]:
    # one morsel cannot decide whether NaN leads a group globally, so each
    # partial carries the pure non-NaN extreme plus (for NaN-bearing number
    # columns) the group's first valid row in that morsel
    track_first = column.kind == KIND_NUMBER and column.has_nan

    def partial_state(rng: Tuple[int, int]) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        start, stop = rng
        mask_slice = column.mask[start:stop]
        gid_slice = gid[start:stop]
        extreme = grouped_extreme_rows(
            name,
            column.data[start:stop],
            mask_slice,
            gid_slice,
            group_count,
            nan_first=False,
        )
        extreme[extreme >= 0] += start
        first = None
        if track_first:
            first = grouped_first_rows(mask_slice, gid_slice, group_count)
            first[first >= 0] += start
        return extreme, first

    report = runner.run(ranges, partial_state)
    if report.failure_count:
        return None
    data = column.data
    best: Optional[np.ndarray] = None
    global_first: Optional[np.ndarray] = None
    for extreme, first in report.values():
        if best is None:
            best = extreme
            global_first = first
            continue
        # merge two fold states with the fold itself: the later morsel's
        # extreme dethrones only by a strict comparison win, so equal values
        # keep the earlier morsel (= the earlier row)
        cand_valid = extreme >= 0
        best_valid = best >= 0
        cand_values = data[np.where(cand_valid, extreme, 0)]
        best_values = data[np.where(best_valid, best, 0)]
        if name == "MIN":
            wins = cand_values < best_values
        else:
            wins = cand_values > best_values
        best = np.where(cand_valid & (~best_valid | wins), extreme, best)
        if global_first is not None:
            global_first = np.where(global_first >= 0, global_first, first)
    assert best is not None
    if global_first is not None:
        # a group whose global first value is NaN keeps it — the fold starts
        # there and NaN never loses a comparison it is already winning by
        # default (every comparison is False)
        present = global_first >= 0
        first_is_nan = present & np.isnan(
            data[np.where(present, global_first, 0)]
        )
        best = np.where(first_is_nan, global_first, best)
    objects = column.objects
    return [objects[row] if row >= 0 else None for row in best.tolist()]


def parallel_grouped_aggregate(
    name: str,
    column: TypedColumn,
    gid: np.ndarray,
    group_count: int,
    distinct: bool,
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[List[object]]:
    """Morsel-parallel grouped aggregate, or ``None`` to decline.

    Declines mirror :func:`~repro.executor.functions.grouped_aggregate_vector`
    (plus any morsel-task failure); every returned list equals that serial
    kernel's output for any worker count.
    """
    name = name.upper()
    if name == "COUNT" and not distinct:
        return _parallel_count(column, gid, group_count, ranges, runner)
    if column.kind not in (KIND_NUMBER, KIND_TEXT):
        return None
    if name == "COUNT":
        return _parallel_count_distinct(column, gid, group_count, ranges, runner)
    if name in ("SUM", "AVG"):
        if column.kind != KIND_NUMBER:
            return None
        if distinct:
            return _parallel_distinct_sum_avg(
                name, column, gid, group_count, ranges, runner
            )
        return _parallel_sum_avg(name, column, gid, group_count, ranges, runner)
    if name in ("MIN", "MAX"):
        return _parallel_min_max(name, column, gid, group_count, ranges, runner)
    return None


# -- partitioned parallel join -----------------------------------------------


def partitioned_join_indices(
    probe: TypedColumn,
    build: TypedColumn,
    runner: BatchRunner,
    morsel_size: int,
    max_partitions: int = MAX_JOIN_PARTITIONS,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Range-partitioned parallel equi-join in canonical order, or ``None``.

    Declines exactly when the serial sort kernel would (object/NaN keys;
    mixed kinds are the empty join), plus when the inputs are too small to
    be worth partitioning or every sampled key is equal.
    """
    for column in (probe, build):
        if column.kind not in (KIND_NUMBER, KIND_TEXT):
            return None
        if column.kind == KIND_NUMBER and column.has_nan:
            return None
    if probe.kind != build.kind:
        # a number never ``==`` a string: every pair misses
        return _EMPTY_INDICES, _EMPTY_INDICES
    build_rows = np.flatnonzero(~build.mask)
    probe_rows = np.flatnonzero(~probe.mask)
    if build_rows.size == 0 or probe_rows.size == 0:
        return _EMPTY_INDICES, _EMPTY_INDICES
    partitions = min(
        int(max_partitions),
        max(probe_rows.size, build_rows.size) // max(int(morsel_size), 1),
    )
    if partitions < 2:
        return None
    build_values = build.data[build_rows]
    probe_values = probe.data[probe_rows]
    # pivots: a deterministic strided sample of the build side cut into
    # equal-frequency ranges; comparison-based partitioning (not hashing)
    # keeps equality semantics identical to the sort kernel
    stride = max(1, build_values.size // 4096)
    sample = np.sort(build_values[::stride])
    cuts = np.linspace(0, sample.size - 1, num=partitions + 1)[1:-1].astype(np.intp)
    pivots = np.unique(sample[cuts])
    if pivots.size == 0:
        # every sampled key equal: partitioning cannot spread this join
        return None
    # partition id = number of pivots strictly below the value, so equal
    # values land in the same partition regardless of side
    count = pivots.size + 1
    build_pid = np.searchsorted(pivots, build_values, side="left").astype(np.uint16)
    probe_pid = np.searchsorted(pivots, probe_values, side="left").astype(np.uint16)
    build_order = np.argsort(build_pid, kind="stable")
    build_bounds = np.searchsorted(build_pid[build_order], np.arange(count + 1))
    probe_order = np.argsort(probe_pid, kind="stable")
    probe_bounds = np.searchsorted(probe_pid[probe_order], np.arange(count + 1))

    def join_partition(
        partition: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        # positions into probe_values/build_values, each ascending (stable
        # sort over ascending input positions)
        probe_sel = probe_order[probe_bounds[partition] : probe_bounds[partition + 1]]
        build_sel = build_order[build_bounds[partition] : build_bounds[partition + 1]]
        empty = (
            probe_sel,
            np.zeros(probe_sel.size, dtype=np.intp),
            _EMPTY_INDICES,
            _EMPTY_INDICES,
        )
        if probe_sel.size == 0 or build_sel.size == 0:
            return empty
        partition_build = build_values[build_sel]
        sorter = np.argsort(partition_build, kind="stable")
        sorted_values = partition_build[sorter]
        partition_probe = probe_values[probe_sel]
        lo = np.searchsorted(sorted_values, partition_probe, side="left")
        hi = np.searchsorted(sorted_values, partition_probe, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return probe_sel, counts, _EMPTY_INDICES, _EMPTY_INDICES
        # per probe row, enumerate its run [lo, hi) of the sorted build side;
        # the stable sorter keeps equal keys in ascending build-row order
        run_starts = np.repeat(np.cumsum(counts) - counts, counts)
        run_offsets = np.arange(total) - run_starts
        matches = build_rows[build_sel[sorter[run_offsets + np.repeat(lo, counts)]]]
        return probe_sel, counts, matches, run_offsets

    report = runner.run(range(count), join_partition)
    if report.failure_count:
        return None
    parts = report.values()
    # global per-probe-row match counts fix each row's output slot range —
    # the canonical probe-major layout, independent of the partitioning
    match_counts = np.zeros(probe_rows.size, dtype=np.intp)
    for probe_sel, counts, _, _ in parts:
        if probe_sel.size:
            match_counts[probe_sel] = counts
    total = int(match_counts.sum())
    if total == 0:
        return _EMPTY_INDICES, _EMPTY_INDICES
    starts = np.cumsum(match_counts) - match_counts
    left_indices = np.repeat(probe_rows, match_counts)
    right_indices = np.empty(total, dtype=np.intp)
    for probe_sel, counts, matches, run_offsets in parts:
        if matches.size == 0:
            continue
        right_indices[np.repeat(starts[probe_sel], counts) + run_offsets] = matches
    return left_indices, right_indices


# -- partitioned parallel sort / top-k ---------------------------------------


def partitioned_sort(
    primary: np.ndarray,
    secondaries: Sequence[np.ndarray],
    runner: BatchRunner,
    morsel_size: int,
    max_partitions: int = MAX_SORT_PARTITIONS,
) -> Optional[np.ndarray]:
    """Stable ascending permutation by sort codes, partition-parallel.

    Equals :func:`repro.executor.ordering.sort_order` on the same keys for
    any worker count, or declines with ``None``: rows range-partition on the
    ``primary`` code (pivots from a deterministic strided sample; tied codes
    always share a partition), each partition lexsorts its rows — whose
    positions are ascending, so the stable per-partition sort breaks full-key
    ties by global row order — and the permutations concatenate in pivot
    order.  Declines when the input is too small to partition, every sampled
    code is equal, or a partition task fails.
    """
    size = primary.size
    partitions = min(int(max_partitions), size // max(int(morsel_size), 1))
    if partitions < 2:
        return None
    stride = max(1, size // 4096)
    sample = np.sort(primary[::stride])
    cuts = np.linspace(0, sample.size - 1, num=partitions + 1)[1:-1].astype(np.intp)
    pivots = np.unique(sample[cuts])
    if pivots.size == 0:
        # every sampled code equal: partitioning cannot spread this sort
        return None
    # partition id = number of pivots strictly below the code, so tied codes
    # land in the same partition and partitions concatenate in code order
    count = pivots.size + 1
    pid = np.searchsorted(pivots, primary, side="left")
    order = np.argsort(pid, kind="stable")
    bounds = np.searchsorted(pid[order], np.arange(count + 1))
    secondaries = list(secondaries)

    def sort_partition(partition: int) -> np.ndarray:
        # rows of one partition, positions ascending (stable argsort)
        rows = order[bounds[partition] : bounds[partition + 1]]
        if rows.size == 0:
            return rows
        keys = tuple(key[rows] for key in reversed(secondaries)) + (primary[rows],)
        return rows[np.lexsort(keys)]

    report = runner.run(range(count), sort_partition)
    if report.failure_count:
        return None
    return np.concatenate(report.values())


def parallel_topk(
    primary: np.ndarray,
    secondaries: Sequence[np.ndarray],
    count: int,
    ranges: Sequence[Tuple[int, int]],
    runner: BatchRunner,
) -> Optional[np.ndarray]:
    """The ``count`` smallest rows in final order, morsel-parallel.

    Equals :func:`repro.executor.ordering.topk_order` on the same keys for
    any morsel split, or declines with ``None``.  Each morsel keeps the rows
    at or below its own ``argpartition`` pivot — its k-th smallest code is
    never below the global one, so the union of morsel candidate sets is a
    superset of the serial kernel's candidate set.  The union's indices are
    ascending (morsels in row order, candidates ascending within one), so
    running the serial selection over the union reproduces the serial cut —
    same pivot, same candidates, same stable tiebreak — bit for bit.
    """
    if count <= 0 or len(ranges) < 2:
        return None

    def morsel_candidates(rng: Tuple[int, int]) -> np.ndarray:
        start, stop = rng
        segment = primary[start:stop]
        if segment.size <= count:
            return np.arange(start, stop, dtype=np.intp)
        partition = np.argpartition(segment, count - 1)[:count]
        pivot = segment[partition].max()
        return np.flatnonzero(segment <= pivot) + start

    report = runner.run(ranges, morsel_candidates)
    if report.failure_count:
        return None
    union = np.concatenate(report.values())
    selected = topk_order(
        primary[union], [key[union] for key in secondaries], count
    )
    return union[selected]
