"""The columnar physical engine: vectorized logical plans over column batches.

This is the fast execution path of the reproduction.  Where the legacy row
interpreter (:class:`~repro.executor.executor.DVQExecutor`) builds a dict
``_RowContext`` per joined row, :class:`ColumnarEngine` executes a logical
plan (:mod:`repro.plan`) over :class:`_Batch`\\ es — aligned
:class:`~repro.database.typed.TypedColumn` arrays pulled from
:meth:`repro.database.table.Table.typed_store` — with sort-based equi-joins
and code-based grouping computed as NumPy kernels.

Value semantics are shared with the interpreter by construction.  Every
vector kernel either reproduces its scalar counterpart bit-for-bit or
*declines*, dropping that one operator to the per-value path:

* predicates: :func:`repro.executor.predicates.evaluate_condition_vector`,
  falling back to :func:`~repro.executor.predicates.evaluate_condition`;
* binning: :func:`repro.executor.binning.bin_encode`, falling back to
  :func:`~repro.executor.binning.bin_value`;
* aggregates: :func:`repro.executor.functions.grouped_aggregate_vector`,
  falling back to :func:`~repro.executor.functions.apply_aggregate`;
* joins: a sort/searchsorted kernel (NULL keys never match, per SQL),
  falling back to the scalar hash/nested loop;
* the top-k cut: the canonical value order of :mod:`repro.executor.ordering`.

That decline-don't-approximate contract is what keeps the engine row-for-row
identical to the interpreter, SQLite, and its own unvectorized mode
(``vectorize=False``) in the differential suite.  With ``max_workers > 1``
the whole pipeline parallelises over a :class:`~repro.runtime.runner.
BatchRunner` thread pool under the same contract (see
:mod:`repro.executor.parallel`): predicate scans shard into row-range
morsels whose masks concatenate in range order; grouping and grouped
aggregates compute per-morsel partials merged by worker-count-independent
combines; equi-joins range-partition both sides on the key and re-emit in
the canonical probe-major order.  Every parallel kernel either reproduces
the serial kernel bit-for-bit or declines to it, so results never depend on
worker count or morsel size.  The cost-based optimizer pins each
join/aggregate serial or parallel from estimated cardinality
(:attr:`~repro.plan.nodes.Join.parallel`) so small inputs skip the
partitioning overhead; unhinted plans decide by input size at runtime.

:class:`ColumnarBackend` wraps the engine behind the
:class:`~repro.executor.backend.ExecutionBackend` protocol: plan, optimize
(toggleable), execute, normalise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.database.database import Database
from repro.database.typed import (
    KIND_NUMBER,
    KIND_TEXT,
    TypedColumn,
    as_object_column,
    object_array,
)
from repro.dvq.nodes import DVQuery
from repro.executor.backend import (
    ExecutionOutcome,
    explain_execution,
    normalize_result,
)
from repro.executor.binning import bin_encode, bin_value
from repro.executor.errors import ExecutionError
from repro.executor.executor import ExecutionResult
from repro.executor.functions import apply_aggregate, grouped_aggregate_vector
from repro.executor.ordering import (
    canonical_top_k,
    encode_sort_key,
    legacy_order_key,
    sort_order,
    topk_order,
)
from repro.executor.parallel import (
    morsel_ranges,
    parallel_group_ids,
    parallel_grouped_aggregate,
    parallel_topk,
    partitioned_join_indices,
    partitioned_sort,
)
from repro.executor.predicates import evaluate_condition, evaluate_condition_vector
from repro.plan.nodes import (
    HASH,
    Aggregate,
    AggregateOutput,
    Bin,
    BinKey,
    BinOutput,
    Comparison,
    ConstPredicate,
    Filter,
    Join,
    Limit,
    PlanNode,
    Predicate,
    Project,
    Sample,
    Scan,
    Sort,
    output_labels,
)
from repro.plan.optimizer import OptimizerConfig, optimize
from repro.runtime.runner import BatchRunner

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.plan.sampling import SamplingConfig

#: Batch key of the derived bin-label column (cannot collide with a scan key,
#: whose first element is a table's effective name).
BIN_COLUMN = ("", "__bin__")

#: Default number of rows per morsel when scans shard across workers.
DEFAULT_MORSEL_SIZE = 65536

_EMPTY_INDICES = np.empty(0, dtype=np.intp)


class _LazyColumn:
    """A batch column that may not have been gathered yet.

    ``base`` is the source :class:`TypedColumn` and ``indices`` the row
    indices selecting from it (``None`` = identity).  :meth:`get` gathers on
    first read and caches, so a column that no operator ever reads — e.g. a
    join key after the join, or every non-aggregated column under
    ``COUNT(*)`` — is never materialised at all.
    """

    __slots__ = ("base", "indices", "_value")

    def __init__(
        self,
        base: TypedColumn,
        indices: Optional[np.ndarray] = None,
    ):
        self.base = base
        self.indices = indices
        self._value: Optional[TypedColumn] = base if indices is None else None

    def get(self) -> TypedColumn:
        value = self._value
        if value is None:
            value = self.base.take(self.indices)
            self._value = value
        return value


class _Batch:
    """Aligned typed columns: the unit of data flowing between plan operators.

    Columns are held as :class:`_LazyColumn` selections over the scan-level
    base columns: :meth:`take` and :meth:`slice` only compose index arrays
    (once per distinct selection, not once per column), deferring the
    expensive object/typed/mask gathers until an operator reads the column
    through :meth:`column`.

    ``bin_codes`` dictionary-encodes the ``BIN_COLUMN`` labels when the Bin
    node was vectorized (code 0 = NULL), letting Aggregate group on codes
    without re-encoding the label objects.
    """

    __slots__ = ("length", "columns", "bin_codes")

    def __init__(
        self,
        length: int,
        columns: Dict[Tuple[str, str], _LazyColumn],
        bin_codes: Optional[np.ndarray] = None,
    ):
        self.length = length
        self.columns = columns
        self.bin_codes = bin_codes

    def column(self, key: Tuple[str, str]) -> TypedColumn:
        """Materialise and return the column ``key`` (cached per batch)."""
        return self.columns[key].get()

    def take(self, indices: np.ndarray) -> "_Batch":
        # columns from one join side share one indices array; compose it once
        composed: Dict[int, np.ndarray] = {}
        columns: Dict[Tuple[str, str], _LazyColumn] = {}
        for key, holder in self.columns.items():
            if holder.indices is None:
                columns[key] = _LazyColumn(holder.base, indices)
            else:
                selection = composed.get(id(holder.indices))
                if selection is None:
                    selection = holder.indices[indices]
                    composed[id(holder.indices)] = selection
                columns[key] = _LazyColumn(holder.base, selection)
        return _Batch(
            len(indices),
            columns,
            None if self.bin_codes is None else self.bin_codes[indices],
        )

    def slice(self, start: int, stop: int) -> "_Batch":
        composed = {}
        columns: Dict[Tuple[str, str], _LazyColumn] = {}
        for key, holder in self.columns.items():
            if holder.indices is None:
                # a row-range of an ungathered base is a zero-copy view
                columns[key] = _LazyColumn(holder.base.slice(start, stop))
            else:
                selection = composed.get(id(holder.indices))
                if selection is None:
                    selection = holder.indices[start:stop]
                    composed[id(holder.indices)] = selection
                columns[key] = _LazyColumn(holder.base, selection)
        return _Batch(
            stop - start,
            columns,
            None if self.bin_codes is None else self.bin_codes[start:stop],
        )


def _scan_of(node: PlanNode) -> Scan:
    """The base scan under a join input (skipping filters and samples)."""
    while isinstance(node, (Filter, Sample)):
        node = node.child
    assert isinstance(node, Scan), f"join input is not a scan: {type(node).__name__}"
    return node


class ColumnarEngine:
    """Execute logical plans over typed column batches.

    Args:
        bin_interval: the fixed width of ``BIN ... BY INTERVAL`` buckets,
            matching the interpreter's parameter.
        vectorize: run the NumPy kernels (with per-value fallback).  Off, the
            engine evaluates every value through the scalar functions — the
            reference mode the differential suite compares against.
        max_workers: thread-pool width for the parallel pipeline — morsel
            scans, partitioned joins, partial grouped aggregation; ``1``
            stays serial.  Results are identical for every width.
        morsel_size: rows per morsel when sharding work across workers (also
            the per-partition row target of partitioned joins).
    """

    def __init__(
        self,
        bin_interval: int = 100,
        vectorize: bool = True,
        max_workers: int = 1,
        morsel_size: int = DEFAULT_MORSEL_SIZE,
    ):
        self.bin_interval = bin_interval
        self.vectorize = vectorize
        self.morsel_size = max(int(morsel_size), 1)
        self.max_workers = max_workers
        self._runner = BatchRunner(max_workers=max_workers) if max_workers > 1 else None

    # -- row-producing nodes -------------------------------------------------

    def run(self, plan: PlanNode, database: Database) -> List[Tuple[object, ...]]:
        """Materialise ``plan`` against ``database`` into output rows."""
        return self._rows(plan, database)

    def _rows(self, node: PlanNode, database: Database) -> List[Tuple[object, ...]]:
        if isinstance(node, Limit):
            return self._limit(node, database)
        if isinstance(node, Sort):
            if self.vectorize and isinstance(node.child, Project):
                rows = self._sort_project(node, node.child, database)
                if rows is not None:
                    return rows
            rows = self._rows(node.child, database)
            index = node.index

            def sort_key(row: Tuple[object, ...]):
                return legacy_order_key(row[index] if index < len(row) else None)

            return sorted(rows, key=sort_key, reverse=node.descending)
        if isinstance(node, Aggregate):
            return self._aggregate(node, database)
        if isinstance(node, Project):
            batch = self._batch(node.child, database)
            return self._gather_project(batch, node)
        raise ExecutionError(f"Unsupported plan root {type(node).__name__}")

    def _limit(self, node: Limit, database: Database) -> List[Tuple[object, ...]]:
        child = node.child
        sort = child if isinstance(child, Sort) else None
        producer = sort.child if sort is not None else child
        if self.vectorize and isinstance(producer, Project):
            rows = self._topk_project(node, sort, producer, database)
            if rows is not None:
                return rows
        rows = self._rows(producer, database)
        # the deterministic cross-engine top-k cut, shared with
        # normalize_result via executor.ordering (bounded selection)
        return canonical_top_k(
            rows,
            node.count,
            index=sort.index if sort is not None else None,
            descending=sort.descending if sort is not None else False,
        )

    # -- vectorized ordering -------------------------------------------------

    @staticmethod
    def _gather_project(batch: _Batch, project: Project) -> List[Tuple[object, ...]]:
        columns = [
            batch.column(output.column.key()).objects for output in project.outputs
        ]
        return [
            tuple(column[index] for column in columns) for index in range(batch.length)
        ]

    def _sort_project(
        self, node: Sort, project: Project, database: Database
    ) -> Optional[List[Tuple[object, ...]]]:
        """ORDER BY as an index permutation over the batch, or ``None``.

        Encodes the sort column's legacy order into ``uint64`` codes
        (:func:`~repro.executor.ordering.encode_sort_key`), argsorts stably —
        ``~codes`` for DESC is the exact reversed key, so ties keep input
        order just like ``sorted(reverse=True)`` — and only then gathers the
        output columns through the permuted batch: late materialization now
        covers the ordering stage.  Declines (to the scalar sort) when the
        sort column cannot be encoded exactly.
        """
        if node.index >= len(project.outputs):
            return None
        batch = self._batch(project.child, database)
        if batch.length == 0:
            return []
        column = batch.column(project.outputs[node.index].column.key())
        codes = encode_sort_key(column, legacy=True)
        if codes is None:
            return None
        if node.descending:
            codes = ~codes
        permutation: Optional[np.ndarray] = None
        if self._runner is not None and node.parallel is not False:
            permutation = partitioned_sort(codes, (), self._runner, self.morsel_size)
        if permutation is None:
            permutation = np.argsort(codes, kind="stable")
        return self._gather_project(batch.take(permutation), project)

    def _topk_project(
        self,
        node: Limit,
        sort: Optional[Sort],
        project: Project,
        database: Database,
    ) -> Optional[List[Tuple[object, ...]]]:
        """The canonical top-k cut as an index selection, or ``None``.

        The composite key of :func:`~repro.executor.ordering.canonical_sorted`
        — direction-adjusted primary first, then every output column's
        canonical code (stable, so full ties keep input order) — feeds
        :func:`~repro.executor.ordering.topk_order`: an ``argpartition``
        pivot cut on the primary, then the exact multi-key sort over the
        pivot-tied candidates only.  Output columns are gathered after the
        cut, so a ``LIMIT 10`` touches 10 rows of objects, not a million.
        Declines when any output column cannot be encoded exactly.
        """
        batch = self._batch(project.child, database)
        if batch.length == 0:
            return []
        encoded: Dict[Tuple[str, str], np.ndarray] = {}
        keys: List[np.ndarray] = []
        for output in project.outputs:
            key = output.column.key()
            codes = encoded.get(key)
            if codes is None:
                codes = encode_sort_key(batch.column(key))
                if codes is None:
                    return None
                encoded[key] = codes
            keys.append(codes)
        if not keys:
            return None
        if sort is not None:
            if sort.index >= len(keys):
                return None
            primary = ~keys[sort.index] if sort.descending else keys[sort.index]
            secondaries = keys
            hint = sort.parallel
        else:
            primary = keys[0]
            secondaries = keys[1:]
            hint = node.parallel
        count = min(node.count, batch.length)
        indices: Optional[np.ndarray] = None
        if self._runner is not None and hint is not False:
            ranges = morsel_ranges(batch.length, self.morsel_size)
            if len(ranges) >= 2:
                indices = parallel_topk(
                    primary, secondaries, count, ranges, self._runner
                )
        if indices is None:
            indices = topk_order(primary, secondaries, count)
        return self._gather_project(batch.take(indices), project)

    # -- aggregation ---------------------------------------------------------

    def _aggregate(self, node: Aggregate, database: Database) -> List[Tuple[object, ...]]:
        batch = self._batch(node.child, database)
        if self.vectorize:
            return self._aggregate_grouped(node, batch, *self._group_ids(node, batch))
        return self._aggregate_scalar(node, batch)

    def _group_ids(
        self, node: Aggregate, batch: _Batch
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Group rows: ``(gid, first_rows, group_count)`` in first-seen order.

        An unhashable key value raises TypeError — the same exception the
        scalar path's dict group keys would raise.
        """
        if not node.keys:
            # aggregates-only query: one implicit group, absent on empty input
            if batch.length == 0:
                return np.zeros(0, dtype=np.intp), np.zeros(0, dtype=np.intp), 0
            gid = np.zeros(batch.length, dtype=np.intp)
            return gid, np.zeros(1, dtype=np.intp), 1
        if batch.length == 0:
            return np.zeros(0, dtype=np.intp), np.zeros(0, dtype=np.intp), 0
        if self._runner is not None and node.parallel is not False:
            encoded = self._group_ids_parallel(node, batch)
            if encoded is not None:
                return encoded
        combined: Optional[np.ndarray] = None
        for key in node.keys:
            if isinstance(key, BinKey):
                codes = batch.bin_codes
                if codes is None:
                    codes = _encode_objects(batch.column(BIN_COLUMN).objects)
            else:
                codes = _encode_key(batch.column(key.key()))
            if combined is None:
                combined = codes.astype(np.int64)
            else:
                # pairwise re-encode keeps the combined code < row count, so
                # the product below never overflows int64
                combined = combined * (np.int64(codes.max()) + 1) + codes
                _, combined = np.unique(combined, return_inverse=True)
        assert combined is not None
        _, first_idx, inverse = np.unique(combined, return_index=True, return_inverse=True)
        order = np.argsort(first_idx, kind="stable")
        rank = np.empty(order.size, dtype=np.intp)
        rank[order] = np.arange(order.size)
        return rank[inverse], first_idx[order], order.size

    def _group_ids_parallel(
        self, node: Aggregate, batch: _Batch
    ) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
        """Morsel-parallel first-seen group encode, or ``None`` to decline.

        Declines on inputs below two morsels, on keys whose serial encode
        goes through the Python dict (mixed/NaN columns — dict equality is
        not ``np.unique`` equality there), and on any morsel-task failure.
        When it returns, the ids equal the serial encode exactly.
        """
        assert self._runner is not None
        ranges = morsel_ranges(batch.length, self.morsel_size)
        if len(ranges) < 2:
            return None
        sources: List[Tuple[np.ndarray, Optional[np.ndarray]]] = []
        for key in node.keys:
            if isinstance(key, BinKey):
                codes = batch.bin_codes
                if codes is None:
                    return None  # unvectorized bin labels: arbitrary objects
                sources.append((codes, None))
                continue
            column = batch.column(key.key())
            if column.kind == KIND_NUMBER and not column.has_nan:
                sources.append((column.data, column.mask))
            elif column.kind == KIND_TEXT:
                # all-string columns: np.unique equality == dict key equality
                sources.append((column.data, column.mask))
            else:
                return None
        return parallel_group_ids(sources, ranges, self._runner)

    def _aggregate_grouped(
        self,
        node: Aggregate,
        batch: _Batch,
        gid: np.ndarray,
        first_rows: np.ndarray,
        group_count: int,
    ) -> List[Tuple[object, ...]]:
        parallel_ranges: Optional[List[Tuple[int, int]]] = None
        if self._runner is not None and node.parallel is not False:
            ranges = morsel_ranges(batch.length, self.morsel_size)
            if len(ranges) >= 2:
                parallel_ranges = ranges
        members_bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None

        def members(group: int) -> List[int]:
            # lazy: row indices per group, only built when a kernel declines
            nonlocal members_bounds
            if members_bounds is None:
                order = np.argsort(gid, kind="stable")
                bounds = np.searchsorted(gid[order], np.arange(group_count + 1))
                members_bounds = (order, bounds)
            order, bounds = members_bounds
            return order[bounds[group] : bounds[group + 1]].tolist()

        columns_out: List[List[object]] = []
        for output in node.outputs:
            if isinstance(output, AggregateOutput):
                if output.argument is None:  # COUNT(*)
                    counts = np.bincount(gid, minlength=group_count)
                    columns_out.append([int(count) for count in counts])
                    continue
                column = batch.column(output.argument.key())
                values = None
                if parallel_ranges is not None:
                    values = parallel_grouped_aggregate(
                        output.function,
                        column,
                        gid,
                        group_count,
                        output.distinct,
                        parallel_ranges,
                        self._runner,
                    )
                if values is None:
                    values = grouped_aggregate_vector(
                        output.function, column, gid, group_count, distinct=output.distinct
                    )
                if values is None:
                    objects = column.objects
                    values = [
                        apply_aggregate(
                            output.function,
                            [objects[index] for index in members(group)],
                            distinct=output.distinct,
                        )
                        for group in range(group_count)
                    ]
                columns_out.append(values)
            elif isinstance(output, BinOutput):
                labels = batch.column(BIN_COLUMN).objects
                columns_out.append([labels[row] for row in first_rows])
            else:
                objects = batch.column(output.column.key()).objects
                columns_out.append([objects[row] for row in first_rows])
        return [
            tuple(column[group] for column in columns_out) for group in range(group_count)
        ]

    def _aggregate_scalar(self, node: Aggregate, batch: _Batch) -> List[Tuple[object, ...]]:
        key_columns: List[np.ndarray] = []
        for key in node.keys:
            if isinstance(key, BinKey):
                key_columns.append(batch.column(BIN_COLUMN).objects)
            else:
                key_columns.append(batch.column(key.key()).objects)
        groups: Dict[Tuple[object, ...], List[int]] = {}
        if key_columns:
            for index in range(batch.length):
                group = tuple(column[index] for column in key_columns)
                members = groups.get(group)
                if members is None:
                    groups[group] = [index]
                else:
                    members.append(index)
        elif batch.length:
            # aggregates-only query: one implicit group, absent on empty input
            groups[()] = list(range(batch.length))
        rows: List[Tuple[object, ...]] = []
        for members in groups.values():  # dict order == first-seen group order
            row: List[object] = []
            for output in node.outputs:
                if isinstance(output, AggregateOutput):
                    if output.argument is None:  # COUNT(*)
                        values: List[object] = [1] * len(members)
                    else:
                        column = batch.column(output.argument.key()).objects
                        values = [column[index] for index in members]
                    row.append(
                        apply_aggregate(output.function, values, distinct=output.distinct)
                    )
                elif isinstance(output, BinOutput):
                    row.append(batch.column(BIN_COLUMN).objects[members[0]])
                else:
                    row.append(batch.column(output.column.key()).objects[members[0]])
            rows.append(tuple(row))
        return rows

    # -- batch-producing nodes -----------------------------------------------

    def _batch(self, node: PlanNode, database: Database) -> _Batch:
        if isinstance(node, Scan):
            return self._scan(node, database)
        if isinstance(node, Sample):
            return self._sample(node, database)
        if isinstance(node, Filter):
            return self._filter(node, database)
        if isinstance(node, Join):
            return self._join(node, database)
        if isinstance(node, Bin):
            return self._bin(node, database)
        raise ExecutionError(f"Unsupported plan node {type(node).__name__}")

    def _scan(self, node: Scan, database: Database) -> _Batch:
        table = database.table(node.table)
        store = table.typed_store()
        effective = node.effective.lower()
        columns = {
            (effective, name.lower()): _LazyColumn(store[name])
            for name in node.columns
        }
        return _Batch(len(table), columns)

    def _sample(self, node: Sample, database: Database) -> _Batch:
        """Restrict the child scan to the table's precomputed row sample.

        The sorted sample row ids become the batch's (lazy) selection, so no
        column is gathered until an operator reads it.  A keyed sample that
        declined at build time degrades to the full scan — the AQP rewriter
        checks buildability up front, so this is a correctness backstop, not
        an expected path.
        """
        batch = self._batch(node.child, database)
        sample = database.table(node.table).sample(
            kind=node.kind, key=node.key, fraction=node.fraction, seed=node.seed
        )
        if sample is None:
            return batch
        return batch.take(sample.indices)

    def _bin(self, node: Bin, database: Database) -> _Batch:
        batch = self._batch(node.child, database)
        column = batch.column(node.column.key())
        columns = dict(batch.columns)
        if self.vectorize:
            encoded = bin_encode(column, node.unit, self.bin_interval)
            if encoded is not None:
                labels, codes = encoded
                columns[BIN_COLUMN] = _LazyColumn(as_object_column(labels[codes]))
                return _Batch(batch.length, columns, bin_codes=codes)
        labels = object_array(
            [bin_value(value, node.unit, self.bin_interval) for value in column.objects]
        )
        columns[BIN_COLUMN] = _LazyColumn(as_object_column(labels))
        return _Batch(batch.length, columns)

    # -- filtering -----------------------------------------------------------

    def _filter(self, node: Filter, database: Database) -> _Batch:
        batch = self._batch(node.child, database)
        mask = self._predicate_mask(node.predicate, batch)
        indices = np.flatnonzero(mask)
        if indices.size == batch.length:
            return batch
        return batch.take(indices)

    def _predicate_mask(self, predicate: Predicate, batch: _Batch) -> np.ndarray:
        runner = self._runner
        if runner is None or batch.length <= self.morsel_size:
            return self._mask(predicate, batch)
        ranges = [
            (start, min(start + self.morsel_size, batch.length))
            for start in range(0, batch.length, self.morsel_size)
        ]
        report = runner.run(
            ranges, lambda rng: self._mask(predicate, batch.slice(rng[0], rng[1]))
        )
        if report.failure_count:
            # re-run serially so the original exception type propagates
            return self._mask(predicate, batch)
        # concatenation in range order makes the result worker-count-independent
        return np.concatenate(report.values())

    def _mask(self, predicate: Predicate, batch: _Batch) -> np.ndarray:
        if isinstance(predicate, Comparison):
            column = batch.column(predicate.column.key())
            if self.vectorize:
                mask = evaluate_condition_vector(predicate.condition, column)
                if mask is not None:
                    return mask
            condition = predicate.condition
            return np.fromiter(
                (evaluate_condition(condition, value) for value in column.objects),
                np.bool_,
                count=len(column),
            )
        if isinstance(predicate, ConstPredicate):
            return np.full(batch.length, predicate.value, dtype=bool)
        left = self._mask(predicate.left, batch)
        right = self._mask(predicate.right, batch)
        if predicate.op == "AND":
            return left & right
        return left | right

    # -- joins ---------------------------------------------------------------

    def _join(self, node: Join, database: Database) -> _Batch:
        left = self._batch(node.left, database)
        right = self._batch(node.right, database)
        # mirror the interpreter's side resolution: probe with whichever ON
        # key lives in the already-joined relation, then match it by *bare
        # column name* in the new table (falling back to the probe key's own
        # name); when neither step resolves, the interpreter skips every row
        # pair, i.e. the join is empty
        if node.left_key.key() in left.columns:
            probe_column = left.column(node.left_key.key())
            candidates = (node.right_key.column, node.left_key.column)
        elif node.right_key.key() in left.columns:
            probe_column = left.column(node.right_key.key())
            candidates = (node.left_key.column,)
        else:
            return self._empty_join(left, right)
        right_effective = _scan_of(node.right).effective.lower()
        build_holder: Optional[_LazyColumn] = None
        for name in candidates:
            build_holder = right.columns.get((right_effective, name.lower()))
            if build_holder is not None:
                break
        if build_holder is None:
            return self._empty_join(left, right)
        build_column = build_holder.get()
        indices: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # the partitioned kernel emits the same pairs in the same canonical
        # order as the sort kernel, so trying it first never changes results
        use_parallel = (
            self.vectorize and self._runner is not None and node.parallel is not False
        )
        if node.build_side == "left":
            # cost-based flip: build on the (estimated smaller) left input and
            # probe with the right.  The kernels emit probe-major pairs, so a
            # flipped build comes back right-major; the stable argsort below
            # restores the canonical order — left-major with build rows
            # ascending within each probe row — making the flip invisible in
            # results (each probe row's matches were already ascending).
            if use_parallel:
                indices = partitioned_join_indices(
                    build_column, probe_column, self._runner, self.morsel_size
                )
            if indices is None and self.vectorize:
                indices = _vector_join_indices(build_column, probe_column)
            if indices is None:
                indices = _scalar_join_indices(
                    build_column.objects, probe_column.objects, node.strategy == HASH
                )
            right_indices, left_indices = indices
            order = np.argsort(left_indices, kind="stable")
            indices = (left_indices[order], right_indices[order])
        else:
            if use_parallel:
                indices = partitioned_join_indices(
                    probe_column, build_column, self._runner, self.morsel_size
                )
            if indices is None and self.vectorize:
                indices = _vector_join_indices(probe_column, build_column)
            if indices is None:
                indices = _scalar_join_indices(
                    probe_column.objects, build_column.objects, node.strategy == HASH
                )
        left_indices, right_indices = indices
        left = left.take(left_indices)
        right = right.take(right_indices)
        columns = dict(left.columns)
        columns.update(right.columns)
        return _Batch(len(left_indices), columns)

    @staticmethod
    def _empty_join(left: _Batch, right: _Batch) -> _Batch:
        columns = dict(left.take(_EMPTY_INDICES).columns)
        columns.update(right.take(_EMPTY_INDICES).columns)
        return _Batch(0, columns)


# -- grouping / join kernels (module level so they are unit-testable) --------


def _encode_key(column: TypedColumn) -> np.ndarray:
    """Dictionary-encode one grouping column; NULL rows get code 0.

    Number columns encode through ``np.unique`` on the float64 shadow
    (equality there — ``5 == 5.0 == True`` — matches dict key equality in
    the scalar path).  Text and mixed/NaN columns go through a Python dict,
    whose identity-or-equality semantics are exactly the interpreter's tuple
    group keys: for strings, ``np.unique``'s O(n log n) comparison sort
    dominates the whole group-by, while the dict scan is several times
    faster with identical (exact, case-sensitive) equality.
    """
    if column.kind == KIND_NUMBER and not column.has_nan:
        codes = np.zeros(len(column), dtype=np.intp)
        valid = np.flatnonzero(~column.mask)
        if valid.size:
            _, inverse = np.unique(column.data[valid], return_inverse=True)
            codes[valid] = inverse + 1
        return codes
    return _encode_objects(column.objects)


def _encode_objects(objects: np.ndarray) -> np.ndarray:
    """Dict-encode arbitrary objects (raises TypeError on unhashable values,
    like the scalar path's tuple group keys)."""
    values = objects.tolist()
    # dict.fromkeys is a C-level, insertion-ordered dedup with exactly dict
    # key equality; only the (few) distinct values loop in Python
    codes = dict.fromkeys(values)
    for code, value in enumerate(codes):
        codes[value] = code
    return np.fromiter(
        map(codes.__getitem__, values), dtype=np.intp, count=len(values)
    )


def _vector_join_indices(
    probe: TypedColumn, build: TypedColumn
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Matching (probe_row, build_row) pairs of an equi-join, vectorized.

    NULL keys never match (SQL semantics, shared with the scalar path).
    Pairs come back probe-major with build rows ascending within a probe row
    — the exact emit order of both the scalar hash join and the nested loop.
    Returns ``None`` for mixed-type or NaN key columns.
    """
    for column in (probe, build):
        if column.kind not in (KIND_NUMBER, KIND_TEXT):
            return None
        if column.kind == KIND_NUMBER and column.has_nan:
            return None
    if probe.kind != build.kind:
        # a number never ``==`` a string: every pair misses
        return _EMPTY_INDICES, _EMPTY_INDICES
    build_rows = np.flatnonzero(~build.mask)
    probe_rows = np.flatnonzero(~probe.mask)
    if build_rows.size == 0 or probe_rows.size == 0:
        return _EMPTY_INDICES, _EMPTY_INDICES
    build_values = build.data[build_rows]
    sorter = np.argsort(build_values, kind="stable")
    sorted_values = build_values[sorter]
    probe_values = probe.data[probe_rows]
    lo = np.searchsorted(sorted_values, probe_values, side="left")
    hi = np.searchsorted(sorted_values, probe_values, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_INDICES, _EMPTY_INDICES
    left_indices = np.repeat(probe_rows, counts)
    # per probe row, enumerate its run [lo, hi) of the sorted build side
    segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
    positions = np.arange(total) - segment_starts + np.repeat(lo, counts)
    # the stable sorter keeps equal build keys in row order, so this is
    # ascending build-row order within each probe row
    right_indices = build_rows[sorter[positions]]
    return left_indices, right_indices


def _scalar_join_indices(
    probe_column: np.ndarray, build_column: np.ndarray, hashed: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """The per-value join fallback; NULL keys never match (SQL semantics)."""
    left_indices: List[int] = []
    right_indices: List[int] = []
    if hashed:
        buckets: Dict[object, List[int]] = {}
        for index, value in enumerate(build_column):
            if value is None:
                continue
            bucket = buckets.get(value)
            if bucket is None:
                buckets[value] = [index]
            else:
                bucket.append(index)
        for index, value in enumerate(probe_column):
            if value is None:
                continue
            matches = buckets.get(value)
            if matches:
                left_indices.extend([index] * len(matches))
                right_indices.extend(matches)
    else:
        for index, probe_value in enumerate(probe_column):
            if probe_value is None:
                continue
            for build_index, build_value in enumerate(build_column):
                if build_value is not None and probe_value == build_value:
                    left_indices.append(index)
                    right_indices.append(build_index)
    return (
        np.asarray(left_indices, dtype=np.intp),
        np.asarray(right_indices, dtype=np.intp),
    )


class ColumnarBackend:
    """Plan-driven execution backend: the default engine of the repo.

    Args:
        bin_interval: width of ``BIN ... BY INTERVAL`` buckets.
        normalize: apply the cross-engine result normalisation (on by
            default, like every backend).
        optimize: run the plan optimizer before execution.  Turning it off
            executes the canonical plan (nested-loop joins, unpruned scans) —
            useful for optimizer ablations and differential testing; results
            are identical either way.
        optimizer_config: which optimizer rules apply when ``optimize`` is on.
        vectorize: run the NumPy kernels; off = the per-value reference mode
            (the ``"columnar-python"`` entry of the differential matrix).
        max_workers: thread-pool width for the parallel pipeline — scans,
            joins, aggregation (1 = serial; results identical either way).
        morsel_size: rows per morsel / join partition for parallel work.
        cost_based: feed table statistics into the optimizer so the
            cost-based rules (join-order enumeration, build-side selection,
            filter-cascade ordering, parallel-operator choice) apply.  Off =
            the rule-based-only rewrites of the pre-statistics engine;
            results are identical either way.
        approximate: try the sampling-based AQP rewrite
            (:mod:`repro.plan.sampling`) first for eligible aggregate
            queries, answering from a precomputed sample with scale-up and
            error bounds; ineligible queries silently run exact.
        sampling_config: AQP knobs (sample fraction, seed, decline
            thresholds) when ``approximate`` is on.
    """

    name = "columnar"

    def __init__(
        self,
        bin_interval: int = 100,
        normalize: bool = True,
        optimize: bool = True,
        optimizer_config: Optional[OptimizerConfig] = None,
        vectorize: bool = True,
        max_workers: int = 1,
        morsel_size: int = DEFAULT_MORSEL_SIZE,
        cost_based: bool = True,
        approximate: bool = False,
        sampling_config: Optional["SamplingConfig"] = None,
    ):
        self._engine = ColumnarEngine(
            bin_interval=bin_interval,
            vectorize=vectorize,
            max_workers=max_workers,
            morsel_size=morsel_size,
        )
        self.normalize = normalize
        self.optimize = optimize
        self.optimizer_config = optimizer_config or OptimizerConfig()
        self.cost_based = cost_based
        self.approximate = approximate
        self.sampling_config = sampling_config

    @property
    def vectorize(self) -> bool:
        return self._engine.vectorize

    def plan(self, query: DVQuery, database: Database) -> PlanNode:
        """The plan this backend would execute (optimized when enabled)."""
        # deferred: repro.plan.planner transitively initialises repro.executor,
        # so a module-level import would be circular
        from repro.plan.planner import plan_query

        plan = plan_query(query, database.schema)
        if self.optimize:
            statistics = None
            if self.cost_based:
                from repro.plan.cost import CostModel

                statistics = CostModel(database)
            plan = optimize(plan, self.optimizer_config, statistics=statistics)
        return plan

    def execute(self, query: DVQuery, database: Database) -> ExecutionResult:
        """Execute ``query`` against ``database`` on the columnar engine.

        Raises:
            ExecutionError: when the query references missing tables or
                columns (raised at plan time) — the same failure mode and
                categories as every backend.
        """
        plan = self.plan(query, database)
        if self.approximate:
            result = self._execute_approximate(plan, query, database)
            if result is not None:
                return result
        rows = self._engine.run(plan, database)
        result = ExecutionResult(
            columns=list(output_labels(plan)),
            rows=rows,
            chart_type=query.chart_type.value,
        )
        if self.normalize:
            result = normalize_result(result, query)
        return result

    def _execute_approximate(
        self, plan: PlanNode, query: DVQuery, database: Database
    ) -> Optional[ExecutionResult]:
        """Run the AQP path, or ``None`` when the rewrite declines to exact."""
        from repro.plan.sampling import DEFAULT_SAMPLING, rewrite_with_sampling

        rewrite = rewrite_with_sampling(
            plan, database, self.sampling_config or DEFAULT_SAMPLING
        )
        if rewrite is None:
            return None
        raw = self._engine.run(rewrite.plan, database)
        rows, approximation = rewrite.finish(raw)
        result = ExecutionResult(
            columns=list(rewrite.labels),
            rows=rows,
            chart_type=query.chart_type.value,
            approximation=approximation,
        )
        if self.normalize:
            result = normalize_result(result, query)
        return result

    def can_execute(self, query: DVQuery, database: Database) -> bool:
        """True when the query executes without error (used by benches)."""
        try:
            self.execute(query, database)
        except ExecutionError:
            return False
        return True

    def explain_failure(self, query: DVQuery, database: Database) -> ExecutionOutcome:
        """Execute and classify: same categories as the other backends."""
        return explain_execution(self, query, database)
