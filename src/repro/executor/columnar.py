"""The columnar physical engine: logical plans over column batches.

This is the fast execution path of the reproduction.  Where the legacy row
interpreter (:class:`~repro.executor.executor.DVQExecutor`) builds a dict
``_RowContext`` per joined row, :class:`ColumnarEngine` executes a logical
plan (:mod:`repro.plan`) over :class:`_Batch`\\ es — aligned column lists
pulled straight from :meth:`repro.database.table.Table.column_store` — with
hash-based joins and grouping.  Value semantics are shared with the
interpreter by construction: predicates evaluate through
:func:`repro.executor.predicates.evaluate_condition`, binning through
:func:`repro.executor.binning.bin_value`, aggregates through
:func:`repro.executor.functions.apply_aggregate`, and the top-k cut through
the canonical value order of :mod:`repro.executor.ordering` — which is what
keeps the engine row-for-row identical to the interpreter and SQLite in the
differential suite.

:class:`ColumnarBackend` wraps the engine behind the
:class:`~repro.executor.backend.ExecutionBackend` protocol: plan, optimize
(toggleable), execute, normalise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.database.database import Database
from repro.dvq.nodes import DVQuery
from repro.executor.backend import (
    ExecutionOutcome,
    explain_execution,
    normalize_result,
)
from repro.executor.binning import bin_value
from repro.executor.errors import ExecutionError
from repro.executor.executor import ExecutionResult
from repro.executor.functions import apply_aggregate
from repro.executor.ordering import canonical_sorted, legacy_order_key
from repro.executor.predicates import evaluate_condition
from repro.plan.nodes import (
    HASH,
    Aggregate,
    AggregateOutput,
    Bin,
    BinKey,
    BinOutput,
    Comparison,
    ConstPredicate,
    Filter,
    Join,
    Limit,
    PlanNode,
    Predicate,
    Project,
    Scan,
    Sort,
    output_labels,
)
from repro.plan.optimizer import OptimizerConfig, optimize

#: Batch key of the derived bin-label column (cannot collide with a scan key,
#: whose first element is a table's effective name).
BIN_COLUMN = ("", "__bin__")


class _Batch:
    """Aligned column lists: the unit of data flowing between plan operators."""

    __slots__ = ("length", "columns")

    def __init__(self, length: int, columns: Dict[Tuple[str, str], List[object]]):
        self.length = length
        self.columns = columns

    def gather(self, indices: List[int]) -> Dict[Tuple[str, str], List[object]]:
        return {
            key: [column[index] for index in indices]
            for key, column in self.columns.items()
        }


def _scan_of(node: PlanNode) -> Scan:
    """The base scan under a join input (skipping pushed-down filters)."""
    while isinstance(node, Filter):
        node = node.child
    assert isinstance(node, Scan), f"join input is not a scan: {type(node).__name__}"
    return node


class ColumnarEngine:
    """Execute logical plans over column batches.

    ``bin_interval`` is the fixed width of ``BIN ... BY INTERVAL`` buckets,
    matching the interpreter's parameter.
    """

    def __init__(self, bin_interval: int = 100):
        self.bin_interval = bin_interval

    # -- row-producing nodes -------------------------------------------------

    def run(self, plan: PlanNode, database: Database) -> List[Tuple[object, ...]]:
        """Materialise ``plan`` against ``database`` into output rows."""
        return self._rows(plan, database)

    def _rows(self, node: PlanNode, database: Database) -> List[Tuple[object, ...]]:
        if isinstance(node, Limit):
            return self._limit(node, database)
        if isinstance(node, Sort):
            rows = self._rows(node.child, database)
            index = node.index

            def sort_key(row: Tuple[object, ...]):
                return legacy_order_key(row[index] if index < len(row) else None)

            return sorted(rows, key=sort_key, reverse=node.descending)
        if isinstance(node, Aggregate):
            return self._aggregate(node, database)
        if isinstance(node, Project):
            batch = self._batch(node.child, database)
            columns = [batch.columns[output.column.key()] for output in node.outputs]
            return [
                tuple(column[index] for column in columns) for index in range(batch.length)
            ]
        raise ExecutionError(f"Unsupported plan root {type(node).__name__}")

    def _limit(self, node: Limit, database: Database) -> List[Tuple[object, ...]]:
        child = node.child
        sort = child if isinstance(child, Sort) else None
        rows = self._rows(sort.child if sort is not None else child, database)
        # the deterministic cross-engine top-k cut, shared with
        # normalize_result via executor.ordering.canonical_sorted
        rows = canonical_sorted(
            rows,
            index=sort.index if sort is not None else None,
            descending=sort.descending if sort is not None else False,
        )
        return rows[: node.count]

    def _aggregate(self, node: Aggregate, database: Database) -> List[Tuple[object, ...]]:
        batch = self._batch(node.child, database)
        key_columns: List[List[object]] = []
        for key in node.keys:
            if isinstance(key, BinKey):
                key_columns.append(batch.columns[BIN_COLUMN])
            else:
                key_columns.append(batch.columns[key.key()])
        groups: Dict[Tuple[object, ...], List[int]] = {}
        if key_columns:
            for index in range(batch.length):
                group = tuple(column[index] for column in key_columns)
                members = groups.get(group)
                if members is None:
                    groups[group] = [index]
                else:
                    members.append(index)
        elif batch.length:
            # aggregates-only query: one implicit group, absent on empty input
            groups[()] = list(range(batch.length))
        rows: List[Tuple[object, ...]] = []
        for members in groups.values():  # dict order == first-seen group order
            row: List[object] = []
            for output in node.outputs:
                if isinstance(output, AggregateOutput):
                    if output.argument is None:  # COUNT(*)
                        values: List[object] = [1] * len(members)
                    else:
                        column = batch.columns[output.argument.key()]
                        values = [column[index] for index in members]
                    row.append(
                        apply_aggregate(output.function, values, distinct=output.distinct)
                    )
                elif isinstance(output, BinOutput):
                    row.append(batch.columns[BIN_COLUMN][members[0]])
                else:
                    row.append(batch.columns[output.column.key()][members[0]])
            rows.append(tuple(row))
        return rows

    # -- batch-producing nodes -----------------------------------------------

    def _batch(self, node: PlanNode, database: Database) -> _Batch:
        if isinstance(node, Scan):
            return self._scan(node, database)
        if isinstance(node, Filter):
            return self._filter(node, database)
        if isinstance(node, Join):
            return self._join(node, database)
        if isinstance(node, Bin):
            batch = self._batch(node.child, database)
            values = batch.columns[node.column.key()]
            columns = dict(batch.columns)
            columns[BIN_COLUMN] = [
                bin_value(value, node.unit, self.bin_interval) for value in values
            ]
            return _Batch(batch.length, columns)
        raise ExecutionError(f"Unsupported plan node {type(node).__name__}")

    def _scan(self, node: Scan, database: Database) -> _Batch:
        table = database.table(node.table)
        store = table.column_store()
        effective = node.effective.lower()
        columns = {
            (effective, name.lower()): store[name] for name in node.columns
        }
        return _Batch(len(table), columns)

    def _filter(self, node: Filter, database: Database) -> _Batch:
        batch = self._batch(node.child, database)
        mask = self._mask(node.predicate, batch)
        indices = [index for index, keep in enumerate(mask) if keep]
        if len(indices) == batch.length:
            return batch
        return _Batch(len(indices), batch.gather(indices))

    def _mask(self, predicate: Predicate, batch: _Batch) -> List[bool]:
        if isinstance(predicate, Comparison):
            condition = predicate.condition
            values = batch.columns[predicate.column.key()]
            return [evaluate_condition(condition, value) for value in values]
        if isinstance(predicate, ConstPredicate):
            return [predicate.value] * batch.length
        left = self._mask(predicate.left, batch)
        right = self._mask(predicate.right, batch)
        if predicate.op == "AND":
            return [a and b for a, b in zip(left, right)]
        return [a or b for a, b in zip(left, right)]

    def _join(self, node: Join, database: Database) -> _Batch:
        left = self._batch(node.left, database)
        right = self._batch(node.right, database)
        # mirror the interpreter's side resolution: probe with whichever ON
        # key lives in the already-joined relation, then match it by *bare
        # column name* in the new table (falling back to the probe key's own
        # name); when neither step resolves, the interpreter skips every row
        # pair, i.e. the join is empty
        if node.left_key.key() in left.columns:
            probe_column = left.columns[node.left_key.key()]
            candidates = (node.right_key.column, node.left_key.column)
        elif node.right_key.key() in left.columns:
            probe_column = left.columns[node.right_key.key()]
            candidates = (node.left_key.column,)
        else:
            return self._empty_join(left, right)
        right_effective = _scan_of(node.right).effective.lower()
        build_column: Optional[List[object]] = None
        for name in candidates:
            build_column = right.columns.get((right_effective, name.lower()))
            if build_column is not None:
                break
        if build_column is None:
            return self._empty_join(left, right)
        left_indices: List[int] = []
        right_indices: List[int] = []
        if node.strategy == HASH:
            buckets: Dict[object, List[int]] = {}
            for index, value in enumerate(build_column):
                bucket = buckets.get(value)
                if bucket is None:
                    buckets[value] = [index]
                else:
                    bucket.append(index)
            for index, value in enumerate(probe_column):
                matches = buckets.get(value)
                if matches:
                    left_indices.extend([index] * len(matches))
                    right_indices.extend(matches)
        else:
            for index, probe_value in enumerate(probe_column):
                for build_index, build_value in enumerate(build_column):
                    if probe_value == build_value:
                        left_indices.append(index)
                        right_indices.append(build_index)
        columns = left.gather(left_indices)
        columns.update(right.gather(right_indices))
        return _Batch(len(left_indices), columns)

    @staticmethod
    def _empty_join(left: _Batch, right: _Batch) -> _Batch:
        columns = left.gather([])
        columns.update(right.gather([]))
        return _Batch(0, columns)


class ColumnarBackend:
    """Plan-driven execution backend: the default engine of the repo.

    Args:
        bin_interval: width of ``BIN ... BY INTERVAL`` buckets.
        normalize: apply the cross-engine result normalisation (on by
            default, like every backend).
        optimize: run the plan optimizer before execution.  Turning it off
            executes the canonical plan (nested-loop joins, unpruned scans) —
            useful for optimizer ablations and differential testing; results
            are identical either way.
        optimizer_config: which optimizer rules apply when ``optimize`` is on.
    """

    name = "columnar"

    def __init__(
        self,
        bin_interval: int = 100,
        normalize: bool = True,
        optimize: bool = True,
        optimizer_config: Optional[OptimizerConfig] = None,
    ):
        self._engine = ColumnarEngine(bin_interval=bin_interval)
        self.normalize = normalize
        self.optimize = optimize
        self.optimizer_config = optimizer_config or OptimizerConfig()

    def plan(self, query: DVQuery, database: Database) -> PlanNode:
        """The plan this backend would execute (optimized when enabled)."""
        # deferred: repro.plan.planner transitively initialises repro.executor,
        # so a module-level import would be circular
        from repro.plan.planner import plan_query

        plan = plan_query(query, database.schema)
        if self.optimize:
            plan = optimize(plan, self.optimizer_config)
        return plan

    def execute(self, query: DVQuery, database: Database) -> ExecutionResult:
        """Execute ``query`` against ``database`` on the columnar engine.

        Raises:
            ExecutionError: when the query references missing tables or
                columns (raised at plan time) — the same failure mode and
                categories as every backend.
        """
        plan = self.plan(query, database)
        rows = self._engine.run(plan, database)
        result = ExecutionResult(
            columns=list(output_labels(plan)),
            rows=rows,
            chart_type=query.chart_type.value,
        )
        if self.normalize:
            result = normalize_result(result, query)
        return result

    def can_execute(self, query: DVQuery, database: Database) -> bool:
        """True when the query executes without error (used by benches)."""
        try:
            self.execute(query, database)
        except ExecutionError:
            return False
        return True

    def explain_failure(self, query: DVQuery, database: Database) -> ExecutionOutcome:
        """Execute and classify: same categories as the other backends."""
        return explain_execution(self, query, database)
