"""Canonical row ordering shared by every execution backend.

Two engines that compute the same result set can still disagree on row order:
the interpreter's stable sort preserves first-seen group order on ties while
SQLite's ORDER BY leaves tie order unspecified, and rows without any ORDER BY
come back in engine-dependent order.  This module defines one total order over
output rows so that

* :func:`repro.executor.backend.normalize_result` can bring both engines to an
  identical row sequence, and
* a ``LIMIT`` cut selects the same top-k rows on every engine.

The per-value key mirrors the interpreter's historical sort semantics: numbers
sort before strings (case-insensitively) before ``NULL``, so ``NULL`` lands
last ascending and first descending.  ``NaN`` gets its own rank between the
finite numbers and the strings: a NaN inside a sort-key tuple would otherwise
break the total order (every ``<`` involving NaN is False), making
``canonical_sorted`` and the LIMIT cut depend on input order.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.dvq.nodes import AggregateExpr, DVQuery, SortDirection

#: Type ranks of the canonical value order: numbers < NaN < strings < NULL.
_RANK_NUMBER = 0
_RANK_NAN = 1
_RANK_TEXT = 2
_RANK_NULL = 3


def value_sort_key(value: object) -> Tuple[int, object, str]:
    """Total-order key for a single output value.

    Numbers (including bools) compare numerically, NaN ranks after every
    finite number, strings compare case-insensitively with the exact text as
    a tiebreak, and ``None`` sorts after everything.  Values of other types
    fall back to their string form.
    """
    if value is None:
        return (_RANK_NULL, 0.0, "")
    if isinstance(value, bool):
        return (_RANK_NUMBER, float(value), "")
    if isinstance(value, (int, float)):
        number = float(value)
        if math.isnan(number):
            return (_RANK_NAN, 0.0, "")
        return (_RANK_NUMBER, number, "")
    text = value if isinstance(value, str) else str(value)
    return (_RANK_TEXT, text.lower(), text)


def row_sort_key(row: Sequence[object]) -> Tuple[Tuple[int, object, str], ...]:
    """Canonical key for a whole output row (left-to-right value keys)."""
    return tuple(value_sort_key(value) for value in row)


def legacy_order_key(value: object) -> Tuple[int, float, str]:
    """The interpreter's historical ORDER BY key (pre-normalisation order).

    Like :func:`value_sort_key` — Nones last, numbers before NaN before
    strings, strings case-insensitively — but without the exact-text tiebreak,
    preserving the seed interpreter's exact sort for results that are not
    normalised.  Both row engines (the legacy interpreter and the columnar
    engine's Sort node) share this one definition.
    """
    if value is None:
        return (3, 0.0, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        number = float(value)
        if math.isnan(number):
            return (1, 0.0, "")
        return (0, number, "")
    return (2, 0.0, str(value).lower())


def order_index(query: DVQuery) -> int:
    """The output-column index an ORDER BY clause refers to.

    An aggregate ORDER BY matches the select item aggregating the same column
    (falling back to the y column); a bare column matches the select item with
    the same case-insensitive column name (falling back to x).
    """
    order = query.order_by
    assert order is not None
    if isinstance(order.expr, AggregateExpr):
        target_column = order.expr.argument.column.lower()
        for index, item in enumerate(query.select):
            if (
                isinstance(item.expr, AggregateExpr)
                and item.expr.argument.column.lower() == target_column
            ):
                return index
        return 1 if len(query.select) > 1 else 0
    target = order.expr.column.lower()
    for index, item in enumerate(query.select):
        if item.column.column.lower() == target:
            return index
    return 0


def canonical_sorted(
    rows: Sequence[Tuple[object, ...]],
    index: Optional[int] = None,
    descending: bool = False,
) -> List[Tuple[object, ...]]:
    """Rows in canonical deterministic order, optionally ORDER-BY-aware.

    Rows are first sorted by their full canonical key; when ``index`` names a
    sort column, a stable second pass sorts by it so that ties keep the
    ascending canonical order regardless of direction.  This is the single
    definition of the cross-engine order: :func:`canonical_order` feeds it
    from a query's ORDER BY clause, the columnar engine from a plan's
    :class:`~repro.plan.nodes.Sort` node.
    """
    ordered = sorted(rows, key=row_sort_key)
    if index is not None:

        def primary_key(row: Tuple[object, ...]):
            return value_sort_key(row[index] if index < len(row) else None)

        ordered.sort(key=primary_key, reverse=descending)
    return ordered


def canonical_order(
    rows: Sequence[Tuple[object, ...]], query: DVQuery
) -> List[Tuple[object, ...]]:
    """Return ``rows`` in the canonical deterministic order for ``query``."""
    if query.order_by is None:
        return canonical_sorted(rows)
    return canonical_sorted(
        rows,
        index=order_index(query),
        descending=query.order_by.direction is SortDirection.DESC,
    )
