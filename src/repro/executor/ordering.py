"""Canonical row ordering shared by every execution backend.

Two engines that compute the same result set can still disagree on row order:
the interpreter's stable sort preserves first-seen group order on ties while
SQLite's ORDER BY leaves tie order unspecified, and rows without any ORDER BY
come back in engine-dependent order.  This module defines one total order over
output rows so that

* :func:`repro.executor.backend.normalize_result` can bring both engines to an
  identical row sequence, and
* a ``LIMIT`` cut selects the same top-k rows on every engine.

The per-value key mirrors the interpreter's historical sort semantics: numbers
sort before strings (case-insensitively) before ``NULL``, so ``NULL`` lands
last ascending and first descending.  ``NaN`` gets its own rank between the
finite numbers and the strings: a NaN inside a sort-key tuple would otherwise
break the total order (every ``<`` involving NaN is False), making
``canonical_sorted`` and the LIMIT cut depend on input order.

The same contract exists twice, deliberately:

* **scalar** — :func:`value_sort_key` / :func:`legacy_order_key` tuples, used
  by the interpreter and as the universal fallback, with
  :func:`canonical_top_k` as the bounded O(n log k) LIMIT cut;
* **vectorized** — :func:`encode_sort_key` folds each column's
  *(rank, value, text)* key into one order-isomorphic ``uint64`` code over
  the typed shadows of :mod:`repro.database.typed` (kind rank + IEEE-754
  bit-flipped float64, or dictionary codes of the ``<U`` text shadow), so the
  columnar engine can sort and cut as index permutations
  (:func:`sort_order` / :func:`topk_order`).  A column the codes cannot
  represent exactly (object kind; bools under the legacy order) declines to
  the scalar key — never approximates it.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.database.typed import KIND_NUMBER, KIND_TEXT, TypedColumn
from repro.dvq.nodes import AggregateExpr, DVQuery, SortDirection

#: Type ranks of the canonical value order: numbers < NaN < strings < NULL.
_RANK_NUMBER = 0
_RANK_NAN = 1
_RANK_TEXT = 2
_RANK_NULL = 3


def value_sort_key(value: object) -> Tuple[int, object, str]:
    """Total-order key for a single output value.

    Numbers (including bools) compare numerically, NaN ranks after every
    finite number, strings compare case-insensitively with the exact text as
    a tiebreak, and ``None`` sorts after everything.  Values of other types
    fall back to their string form.
    """
    if value is None:
        return (_RANK_NULL, 0.0, "")
    if isinstance(value, bool):
        return (_RANK_NUMBER, float(value), "")
    if isinstance(value, (int, float)):
        number = float(value)
        if math.isnan(number):
            return (_RANK_NAN, 0.0, "")
        return (_RANK_NUMBER, number, "")
    text = value if isinstance(value, str) else str(value)
    return (_RANK_TEXT, text.lower(), text)


def row_sort_key(row: Sequence[object]) -> Tuple[Tuple[int, object, str], ...]:
    """Canonical key for a whole output row (left-to-right value keys)."""
    return tuple(value_sort_key(value) for value in row)


def legacy_order_key(value: object) -> Tuple[int, float, str]:
    """The interpreter's historical ORDER BY key (pre-normalisation order).

    Like :func:`value_sort_key` — Nones last, numbers before NaN before
    strings, strings case-insensitively — but without the exact-text tiebreak,
    preserving the seed interpreter's exact sort for results that are not
    normalised.  Both row engines (the legacy interpreter and the columnar
    engine's Sort node) share this one definition.
    """
    if value is None:
        return (3, 0.0, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        number = float(value)
        if math.isnan(number):
            return (1, 0.0, "")
        return (0, number, "")
    return (2, 0.0, str(value).lower())


def order_index(query: DVQuery) -> int:
    """The output-column index an ORDER BY clause refers to.

    An aggregate ORDER BY matches the select item aggregating the same column
    (falling back to the y column); a bare column matches the select item with
    the same case-insensitive column name (falling back to x).
    """
    order = query.order_by
    assert order is not None
    if isinstance(order.expr, AggregateExpr):
        target_column = order.expr.argument.column.lower()
        for index, item in enumerate(query.select):
            if (
                isinstance(item.expr, AggregateExpr)
                and item.expr.argument.column.lower() == target_column
            ):
                return index
        return 1 if len(query.select) > 1 else 0
    target = order.expr.column.lower()
    for index, item in enumerate(query.select):
        if item.column.column.lower() == target:
            return index
    return 0


def canonical_sorted(
    rows: Sequence[Tuple[object, ...]],
    index: Optional[int] = None,
    descending: bool = False,
) -> List[Tuple[object, ...]]:
    """Rows in canonical deterministic order, optionally ORDER-BY-aware.

    Rows are first sorted by their full canonical key; when ``index`` names a
    sort column, a stable second pass sorts by it so that ties keep the
    ascending canonical order regardless of direction.  This is the single
    definition of the cross-engine order: :func:`canonical_order` feeds it
    from a query's ORDER BY clause, the columnar engine from a plan's
    :class:`~repro.plan.nodes.Sort` node.
    """
    ordered = sorted(rows, key=row_sort_key)
    if index is not None:

        def primary_key(row: Tuple[object, ...]):
            return value_sort_key(row[index] if index < len(row) else None)

        ordered.sort(key=primary_key, reverse=descending)
    return ordered


def canonical_order(
    rows: Sequence[Tuple[object, ...]], query: DVQuery
) -> List[Tuple[object, ...]]:
    """Return ``rows`` in the canonical deterministic order for ``query``."""
    if query.order_by is None:
        return canonical_sorted(rows)
    return canonical_sorted(
        rows,
        index=order_index(query),
        descending=query.order_by.direction is SortDirection.DESC,
    )


# -- bounded top-k selection (scalar) ----------------------------------------


class _ReversedKey:
    """Wrap a sort key so ``<`` means the key's ``>`` (for DESC primaries).

    ``heapq.nsmallest`` only needs ``<`` and ``==`` on key-tuple elements, so
    this is enough to express "primary descending, everything else ascending"
    as a single smallest-first key.
    """

    __slots__ = ("key",)

    def __init__(self, key: Tuple[int, object, str]):
        self.key = key

    def __lt__(self, other: "_ReversedKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReversedKey) and other.key == self.key


def canonical_top_k(
    rows: Sequence[Tuple[object, ...]],
    count: int,
    index: Optional[int] = None,
    descending: bool = False,
) -> List[Tuple[object, ...]]:
    """``canonical_sorted(rows, index, descending)[:count]`` without the sort.

    The two-pass stable sort of :func:`canonical_sorted` is equivalent to one
    stable sort by the composite key *(direction-adjusted primary, full row
    key)* — ties of the primary keep ascending canonical order either way —
    and ``heapq.nsmallest`` is documented equivalent to
    ``sorted(iterable, key=key)[:n]``, so this bounded selection returns the
    identical cut at O(n log k) instead of O(n log n).
    """
    if count >= len(rows):
        return canonical_sorted(rows, index=index, descending=descending)
    if count <= 0:
        return []
    if index is None:
        return heapq.nsmallest(count, rows, key=row_sort_key)

    def cut_key(row: Tuple[object, ...]):
        primary = value_sort_key(row[index] if index < len(row) else None)
        if descending:
            return (_ReversedKey(primary), row_sort_key(row))
        return (primary, row_sort_key(row))

    return heapq.nsmallest(count, rows, key=cut_key)


# -- vectorized sort-key encoding --------------------------------------------
#
# The columnar engine sorts index permutations, not rows, so it needs the
# canonical value order above as something NumPy can sort.  Per column,
# :func:`encode_sort_key` folds the (rank, value, text) key into a single
# ``uint64`` code that is *order-isomorphic* to the scalar key — code(a) <
# code(b) exactly when key(a) < key(b), equal exactly when the keys tie.
# Exact isomorphism (not mere monotonicity) is what makes the downstream
# kernels correct: a stable argsort over codes equals the stable scalar sort,
# ``~code`` is the exact descending key (stable argsort over it equals
# ``sorted(..., reverse=True)``), and the top-k cut's pivot-tie candidate set
# ``code <= pivot`` contains exactly the rows the scalar cut would consider.

#: IEEE-754 float64 sign bit; flipping it (non-negatives) or the whole word
#: (negatives) makes float bit patterns sort as the floats do.
_SIGN_BIT = np.uint64(0x8000000000000000)
#: Codes of the two ranks above every finite number and every text: NaN sorts
#: after all numbers (rank 1), NULL after everything (rank 3).  ``+inf``
#: encodes to 0xFFF0... < _NAN_CODE, so no finite/infinite value collides.
_NAN_CODE = np.uint64(0xFFFFFFFFFFFFFFFE)
_NULL_CODE = np.uint64(0xFFFFFFFFFFFFFFFF)


def _encode_number(column: TypedColumn) -> np.ndarray:
    # +0.0 collapses -0.0 onto 0.0 first: the scalar key ties them, so their
    # codes must too (the raw bit patterns would order them strictly)
    values = column.data + 0.0
    bits = values.view(np.uint64)
    negative = (bits & _SIGN_BIT) != 0
    codes = np.where(negative, ~bits, bits | _SIGN_BIT)
    nan_mask = np.isnan(values)
    if nan_mask.any():
        # every NaN payload (and sign) collapses to the one rank-1 code,
        # mirroring the scalar key's single (1, 0.0, "") bucket
        codes[nan_mask] = _NAN_CODE
    codes[column.mask] = _NULL_CODE
    return codes


def _encode_text(column: TypedColumn, exact_tiebreak: bool) -> np.ndarray:
    lowered = column.lowered
    if not exact_tiebreak:
        # legacy key: case-insensitive only — ranks of the lowered shadow
        uniques, inverse = np.unique(lowered, return_inverse=True)
        codes = inverse.astype(np.uint64)
        codes[column.mask] = np.uint64(uniques.size)
        return codes
    # canonical key: (lowered, exact) — rank the pairs lexicographically by
    # stable lexsort, then assign consecutive codes wherever a pair differs
    exact = column.data
    order = np.lexsort((exact, lowered))
    sorted_lowered = lowered[order]
    sorted_exact = exact[order]
    new_pair = np.empty(order.size, dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (sorted_lowered[1:] != sorted_lowered[:-1]) | (
        sorted_exact[1:] != sorted_exact[:-1]
    )
    ranks = np.cumsum(new_pair) - 1
    codes = np.empty(order.size, dtype=np.uint64)
    codes[order] = ranks
    codes[column.mask] = np.uint64(ranks[-1] + 1)
    return codes


def encode_sort_key(column: TypedColumn, legacy: bool = False) -> Optional[np.ndarray]:
    """Ascending ``uint64`` sort codes for one column, or ``None`` to decline.

    Codes are order-isomorphic to :func:`value_sort_key` per value (or to
    :func:`legacy_order_key` with ``legacy=True``); ``~codes`` is the exact
    descending key.  Declines on object-kind columns — the typed shadows
    cannot represent them — and, under the legacy order, on number columns
    that may contain bools: the float64 shadow stores ``True`` as ``1.0``
    while :func:`legacy_order_key` sorts bools as the text ``"true"``.
    """
    if len(column) == 0:
        return np.empty(0, dtype=np.uint64)
    if column.kind == KIND_NUMBER:
        if legacy and column.has_bool:
            return None
        return _encode_number(column)
    if column.kind == KIND_TEXT:
        return _encode_text(column, exact_tiebreak=not legacy)
    return None


def sort_order(primary: np.ndarray, secondaries: Sequence[np.ndarray]) -> np.ndarray:
    """Stable ascending permutation by *(primary, secondaries...)* codes.

    ``np.lexsort`` is stable and keys from its *last* argument first, so ties
    across every key column keep input order — exactly the scalar stable
    sort's tiebreak.
    """
    keys = tuple(reversed(list(secondaries))) + (primary,)
    return np.lexsort(keys)


def topk_order(
    primary: np.ndarray, secondaries: Sequence[np.ndarray], count: int
) -> np.ndarray:
    """Positions of the ``count`` smallest rows, in final sorted order.

    Equals ``sort_order(primary, secondaries)[:count]`` by construction: the
    ``np.argpartition`` pivot is the ``count``-th smallest primary code, and
    because codes are order-isomorphic to the scalar keys, the candidate set
    ``primary <= pivot`` is a superset of every row the full sort would place
    in the cut (fewer than ``count`` rows compare strictly below any cut row).
    Only the candidates pay the exact multi-key sort.
    """
    if count <= 0:
        return np.empty(0, dtype=np.intp)
    if count >= primary.size:
        return sort_order(primary, secondaries)
    partition = np.argpartition(primary, count - 1)[:count]
    pivot = primary[partition].max()
    candidates = np.flatnonzero(primary <= pivot)
    keys = tuple(key[candidates] for key in reversed(list(secondaries))) + (
        primary[candidates],
    )
    return candidates[np.lexsort(keys)][:count]
