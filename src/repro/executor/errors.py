"""Execution-time errors."""


class ExecutionError(Exception):
    """Raised when a DVQ cannot be executed against a database.

    Typical causes are references to columns or tables that do not exist in the
    target database — exactly the failure mode the paper's Figure 1 illustrates
    ("No Chart due to the error in specification").
    """

    def __init__(self, message, query=None, database=None):
        super().__init__(message)
        self.query = query
        self.database = database
