"""Binning of temporal and numeric values for the DVQ ``BIN ... BY ...`` clause.

:func:`bin_value` is the per-value definition; :func:`bin_encode` is the
vectorized kernel the columnar engine uses on typed columns.  It exploits
that binning is a pure function of the value: compute :func:`bin_value` once
per *distinct* value and broadcast the labels back through the unique-inverse
— O(distinct) scalar work instead of O(rows).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.database.typed import KIND_NUMBER, KIND_TEXT, TypedColumn, object_array
from repro.dvq.nodes import BinUnit

_WEEKDAY_NAMES = [
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday",
]


def _parse_date(value: object) -> Optional[tuple]:
    """Parse a YYYY-MM-DD string into (year, month, day); None if not a date."""
    if not isinstance(value, str):
        return None
    parts = value.split("-")
    if len(parts) != 3:
        return None
    try:
        year, month, day = (int(part) for part in parts)
    except ValueError:
        return None
    if not (1 <= month <= 12 and 1 <= day <= 31):
        return None
    return year, month, day


def _day_of_week(year: int, month: int, day: int) -> int:
    """Zeller's congruence, returning 0=Monday ... 6=Sunday."""
    if month < 3:
        month += 12
        year -= 1
    century, year_of_century = divmod(year, 100)
    weekday = (
        day
        + (13 * (month + 1)) // 5
        + year_of_century
        + year_of_century // 4
        + century // 4
        + 5 * century
    ) % 7
    # Zeller: 0=Saturday ... convert to 0=Monday
    return (weekday + 5) % 7


def bin_value(value: object, unit: BinUnit, interval: int = 100) -> object:
    """Assign ``value`` to a bin according to ``unit``.

    * ``YEAR`` / ``MONTH`` / ``WEEKDAY`` apply to date strings (``YYYY-MM-DD``)
      and to plain integer years for the YEAR unit.
    * ``INTERVAL`` buckets numeric values into fixed-width ranges.
    * ``None`` values map to ``None`` so they can be filtered by callers.
    * NaN maps to the text label ``"NaN"`` for every unit: no year or
      interval contains it, and a stable label keeps grouping (and the
      canonical text-rank sort position) deterministic across engines.
    """
    if value is None:
        return None
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    parsed = _parse_date(value)
    if unit is BinUnit.YEAR:
        if parsed is not None:
            return parsed[0]
        if isinstance(value, (int, float)):
            return int(value)
        return value
    if unit is BinUnit.MONTH:
        if parsed is not None:
            return parsed[1]
        return value
    if unit is BinUnit.WEEKDAY:
        if parsed is not None:
            return _WEEKDAY_NAMES[_day_of_week(*parsed)]
        return value
    if unit is BinUnit.INTERVAL:
        if isinstance(value, (int, float)):
            width = max(int(interval), 1)
            low = int(value // width) * width
            return f"[{low}, {low + width})"
        return value
    raise ValueError(f"Unsupported bin unit {unit!r}")


def bin_encode(
    column: TypedColumn, unit: BinUnit, interval: int = 100
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Dictionary-encode the bins of a typed column: ``(labels, codes)``.

    ``codes[i]`` indexes ``labels`` (an object array); code 0 is reserved for
    NULL rows (``labels[0] is None``), matching ``bin_value(None) -> None``.
    Distinct column values whose bins coincide (e.g. two dates in the same
    year) share one code, and that code's label object is the one
    :func:`bin_value` produces for the group's *first* row — exactly the
    label the per-row scalar path would emit for the group.

    Returns ``None`` to decline (mixed-type columns, NaN) — the caller then
    maps :func:`bin_value` per value.
    """
    if column.kind not in (KIND_NUMBER, KIND_TEXT):
        return None
    if column.kind == KIND_NUMBER and column.has_nan:
        # NaN needs its dedicated scalar label and np.unique's NaN handling
        # is version-sensitive; decline so the caller maps bin_value per row
        return None
    length = len(column)
    codes = np.zeros(length, dtype=np.intp)
    labels: list = [None]
    valid_rows = np.flatnonzero(~column.mask)
    if valid_rows.size:
        uniques, first_sub, inverse = np.unique(
            column.data[valid_rows], return_index=True, return_inverse=True
        )
        first_rows = valid_rows[first_sub]
        unique_codes = np.empty(len(uniques), dtype=np.intp)
        label_codes: dict = {}
        # walk uniques by first occurrence so equal-label collisions keep the
        # earliest row's label object (what the scalar path emits for a group)
        for position in np.argsort(first_rows, kind="stable"):
            label = bin_value(column.objects[first_rows[position]], unit, interval)
            code = label_codes.get(label)
            if code is None:
                code = len(labels)
                label_codes[label] = code
                labels.append(label)
            unique_codes[position] = code
        codes[valid_rows] = unique_codes[inverse]
    return object_array(labels), codes
