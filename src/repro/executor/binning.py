"""Binning of temporal and numeric values for the DVQ ``BIN ... BY ...`` clause."""

from __future__ import annotations

from typing import Optional

from repro.dvq.nodes import BinUnit

_WEEKDAY_NAMES = [
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday",
]


def _parse_date(value: object) -> Optional[tuple]:
    """Parse a YYYY-MM-DD string into (year, month, day); None if not a date."""
    if not isinstance(value, str):
        return None
    parts = value.split("-")
    if len(parts) != 3:
        return None
    try:
        year, month, day = (int(part) for part in parts)
    except ValueError:
        return None
    if not (1 <= month <= 12 and 1 <= day <= 31):
        return None
    return year, month, day


def _day_of_week(year: int, month: int, day: int) -> int:
    """Zeller's congruence, returning 0=Monday ... 6=Sunday."""
    if month < 3:
        month += 12
        year -= 1
    century, year_of_century = divmod(year, 100)
    weekday = (
        day
        + (13 * (month + 1)) // 5
        + year_of_century
        + year_of_century // 4
        + century // 4
        + 5 * century
    ) % 7
    # Zeller: 0=Saturday ... convert to 0=Monday
    return (weekday + 5) % 7


def bin_value(value: object, unit: BinUnit, interval: int = 100) -> object:
    """Assign ``value`` to a bin according to ``unit``.

    * ``YEAR`` / ``MONTH`` / ``WEEKDAY`` apply to date strings (``YYYY-MM-DD``)
      and to plain integer years for the YEAR unit.
    * ``INTERVAL`` buckets numeric values into fixed-width ranges.
    * ``None`` values map to ``None`` so they can be filtered by callers.
    """
    if value is None:
        return None
    parsed = _parse_date(value)
    if unit is BinUnit.YEAR:
        if parsed is not None:
            return parsed[0]
        if isinstance(value, (int, float)):
            return int(value)
        return value
    if unit is BinUnit.MONTH:
        if parsed is not None:
            return parsed[1]
        return value
    if unit is BinUnit.WEEKDAY:
        if parsed is not None:
            return _WEEKDAY_NAMES[_day_of_week(*parsed)]
        return value
    if unit is BinUnit.INTERVAL:
        if isinstance(value, (int, float)):
            width = max(int(interval), 1)
            low = int(value // width) * width
            return f"[{low}, {low + width})"
        return value
    raise ValueError(f"Unsupported bin unit {unit!r}")
