"""Text embeddings and vector retrieval.

GRED's preparatory phase converts every training NLQ and DVQ into an embedding
vector with OpenAI's ``text-embedding-3-large`` and retrieves the top-K most
similar examples by cosine similarity.  This package provides the offline
substitute: a deterministic hashed word/character n-gram TF-IDF embedder and a
NumPy-backed vector store exposing cosine top-K search.
"""

from repro.embeddings.tokenization import char_ngrams, word_tokens
from repro.embeddings.embedder import EmbedderConfig, TextEmbedder
from repro.embeddings.store import SearchHit, VectorStore

__all__ = [
    "EmbedderConfig",
    "SearchHit",
    "TextEmbedder",
    "VectorStore",
    "char_ngrams",
    "word_tokens",
]
