"""Text embeddings and vector retrieval.

GRED's preparatory phase converts every training NLQ and DVQ into an embedding
vector with OpenAI's ``text-embedding-3-large`` and retrieves the top-K most
similar examples by cosine similarity.  This package provides the offline
substitute: a deterministic hashed word/character n-gram TF-IDF embedder and a
:class:`VectorStore` facade that embeds lazily in batches and searches through
a pluggable :mod:`repro.index` backend (exact or IVF-style partitioned), with
disk persistence for prepared libraries.
"""

from repro.embeddings.tokenization import char_ngrams, word_tokens
from repro.embeddings.embedder import EmbedderConfig, TextEmbedder
from repro.embeddings.store import SearchHit, VectorStore
from repro.index import IndexConfig

__all__ = [
    "EmbedderConfig",
    "IndexConfig",
    "SearchHit",
    "TextEmbedder",
    "VectorStore",
    "char_ngrams",
    "word_tokens",
]
