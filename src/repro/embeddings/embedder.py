"""A hashed word/character n-gram TF-IDF text embedder.

This is the offline stand-in for ``text-embedding-3-large``: it maps arbitrary
text to a fixed-size dense vector such that lexically and morphologically
similar sentences are close in cosine space.  The embedder can optionally be
fitted on a corpus to learn IDF weights; without fitting it falls back to
uniform term weights, so it is usable both for the preparatory phase (fit on
the training NLQs/DVQs) and for ad-hoc similarity scoring.
"""

from __future__ import annotations

import hashlib
import math
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.embeddings.tokenization import char_ngrams, word_tokens


@dataclass(frozen=True)
class EmbedderConfig:
    """Configuration of the :class:`TextEmbedder`.

    Attributes:
        dimensions: size of the output vector.
        char_n: character n-gram length (0 disables character features).
        use_words: include word-level features.
        seed: hashing seed, giving different but deterministic projections.
    """

    dimensions: int = 512
    char_n: int = 3
    use_words: bool = True
    seed: int = 13


def _stable_hash(token: str, seed: int) -> int:
    digest = hashlib.blake2b(f"{seed}:{token}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class TextEmbedder:
    """Deterministic lexical embedder with optional IDF fitting."""

    def __init__(self, config: EmbedderConfig = EmbedderConfig()):
        self.config = config
        self._idf: Dict[str, float] = {}
        self._fitted = False
        #: Number of texts embedded so far (one per ``embed`` call, the batch
        #: size per ``embed_batch`` call).  Index snapshots are asserted
        #: against this counter: loading a persisted library must not embed.
        self.texts_embedded = 0
        # embeds run concurrently from BatchRunner search workers; the
        # read-modify-write must not lose increments
        self._counter_lock = threading.Lock()

    # -- feature extraction ------------------------------------------------

    def features(self, text: str) -> Dict[str, float]:
        """Raw term-frequency features of ``text``."""
        counts: Dict[str, float] = {}
        if self.config.use_words:
            for token in word_tokens(text):
                key = f"w:{token}"
                counts[key] = counts.get(key, 0.0) + 1.0
        if self.config.char_n:
            for gram in char_ngrams(text, self.config.char_n):
                key = f"c:{gram}"
                counts[key] = counts.get(key, 0.0) + 0.5
        return counts

    # -- fitting -----------------------------------------------------------

    def fit(self, corpus: Iterable[str]) -> "TextEmbedder":
        """Learn IDF weights from a corpus of documents."""
        document_frequency: Dict[str, int] = {}
        total_documents = 0
        for document in corpus:
            total_documents += 1
            for term in set(self.features(document)):
                document_frequency[term] = document_frequency.get(term, 0) + 1
        self._idf = {
            term: math.log((1 + total_documents) / (1 + frequency)) + 1.0
            for term, frequency in document_frequency.items()
        }
        self._fitted = True
        return self

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # -- persistence -------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of the configuration and fitted IDF."""
        return {
            "config": {
                "dimensions": self.config.dimensions,
                "char_n": self.config.char_n,
                "use_words": self.config.use_words,
                "seed": self.config.seed,
            },
            "fitted": self._fitted,
            "idf": dict(self._idf),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "TextEmbedder":
        """Rebuild an embedder that scores identically to the one saved."""
        config = dict(state.get("config", {}))
        embedder = cls(
            EmbedderConfig(
                dimensions=int(config.get("dimensions", 512)),
                char_n=int(config.get("char_n", 3)),
                use_words=bool(config.get("use_words", True)),
                seed=int(config.get("seed", 13)),
            )
        )
        embedder._idf = {str(term): float(value) for term, value in dict(state.get("idf", {})).items()}
        embedder._fitted = bool(state.get("fitted", False))
        return embedder

    # -- embedding ---------------------------------------------------------

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm vector of ``config.dimensions``."""
        with self._counter_lock:
            self.texts_embedded += 1
        vector = np.zeros(self.config.dimensions, dtype=np.float64)
        for term, frequency in self.features(text).items():
            weight = frequency * self._idf.get(term, 1.0)
            slot = _stable_hash(term, self.config.seed)
            index = slot % self.config.dimensions
            sign = 1.0 if (slot >> 62) & 1 == 0 else -1.0
            vector[index] += sign * weight
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts into a ``(len(texts), dimensions)`` matrix."""
        if not texts:
            return np.zeros((0, self.config.dimensions), dtype=np.float64)
        return np.vstack([self.embed(text) for text in texts])

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity of two texts in [-1, 1]."""
        return float(np.dot(self.embed(left), self.embed(right)))


def cosine_similarity_matrix(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between two stacks of unit-norm vectors."""
    if queries.ndim == 1:
        queries = queries[None, :]
    return queries @ corpus.T
