"""Tokenization utilities shared by the embedder and the baseline models."""

from __future__ import annotations

import re
from typing import List

_WORD_PATTERN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+(?:\.\d+)?")

#: A small English stop-word list; schema words are never stop words.
STOP_WORDS = frozenset(
    {
        "a", "an", "the", "of", "for", "and", "or", "in", "on", "by", "to",
        "with", "is", "are", "please", "me", "give", "show", "that", "whose",
        "their", "each", "all", "as", "at", "be", "it", "its",
    }
)


def word_tokens(text: str, lowercase: bool = True, split_identifiers: bool = True) -> List[str]:
    """Split ``text`` into word tokens.

    Identifiers written in snake_case or CamelCase are additionally split into
    their parts (``HIRE_DATE`` -> ``hire date``), which lets lexical embeddings
    relate questions to schema tokens the same way sub-word models do.
    """
    tokens: List[str] = []
    for match in _WORD_PATTERN.finditer(text):
        token = match.group(0)
        if lowercase:
            token = token.lower()
        tokens.append(token)
        if split_identifiers:
            parts = split_identifier(match.group(0))
            if len(parts) > 1:
                tokens.extend(part.lower() if lowercase else part for part in parts)
    return tokens


def split_identifier(identifier: str) -> List[str]:
    """Split a snake_case / CamelCase identifier into its constituent words."""
    pieces: List[str] = []
    for chunk in identifier.split("_"):
        if not chunk:
            continue
        pieces.extend(_split_camel(chunk))
    return [piece for piece in pieces if piece]


def _split_camel(chunk: str) -> List[str]:
    parts = re.findall(r"[A-Z]+(?=[A-Z][a-z])|[A-Z]?[a-z]+|[A-Z]+|\d+", chunk)
    return parts if parts else [chunk]


def content_words(text: str) -> List[str]:
    """Word tokens with stop words removed (used for schema linking)."""
    return [token for token in word_tokens(text) if token not in STOP_WORDS]


def char_ngrams(text: str, n: int = 3) -> List[str]:
    """Character n-grams of the lower-cased text with boundary markers."""
    cleaned = f"#{text.lower().strip()}#"
    if len(cleaned) <= n:
        return [cleaned]
    return [cleaned[i : i + n] for i in range(len(cleaned) - n + 1)]
