"""The vector library facade: lazy batch embedding over a pluggable index.

This is GRED's "embedding vector library": during the preparatory phase every
training NLQ and DVQ is embedded and inserted with its payload (the full
training example); at inference time the generator and retuner issue top-K
queries against it.

:class:`VectorStore` owns the *embedding boundary* — entries added since the
last search are embedded in one ``embed_batch`` call — and delegates storage
and search to a :class:`~repro.index.VectorIndex` backend selected by an
:class:`~repro.index.IndexConfig`: exact brute-force search (the default, and
the historical behaviour) or IVF-style partitioned search for large
libraries.  Prepared libraries can be persisted with :meth:`VectorStore.save`
and restored with :meth:`VectorStore.load` without re-embedding anything.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.embeddings.embedder import TextEmbedder
from repro.index import IndexConfig, SearchHit, VectorIndex, build_index
from repro.index.snapshot import PayloadCodec, load_index, save_index

PayloadT = TypeVar("PayloadT")

__all__ = ["SearchHit", "VectorStore"]


class VectorStore(Generic[PayloadT]):
    """An append-only store of ``(key, text, payload)`` triples with cosine search.

    Embedding is lazy and incremental: :meth:`add` and :meth:`add_many` only
    record the entry; the next search embeds every not-yet-indexed text in one
    ``embed_batch`` call and hands the rows to the index backend.  Adding N
    entries therefore costs one batch embedding, not N rebuilds of the full
    library.  Searches are thread-safe — the index backends snapshot their
    storage under a lock, so a search interleaved with concurrent ``add``
    calls always pairs every score with that entry's own key and payload —
    which lets a :class:`~repro.runtime.runner.BatchRunner` issue queries
    from many workers against one shared store.

    Args:
        embedder: the text embedder shared with the caller (queries and
            library entries must embed in the same space).
        config: backend selection and tuning; ``None`` means exact search.
        index: a pre-built index instance (overrides ``config``), used by
            :meth:`load` and by tests that construct backends directly.
    """

    def __init__(
        self,
        embedder: TextEmbedder,
        config: Optional[IndexConfig] = None,
        index: Optional[VectorIndex] = None,
    ):
        self.embedder = embedder
        self.index = index if index is not None else build_index(config or IndexConfig())
        self._texts: List[str] = []
        self._pending: List[Tuple[str, str, PayloadT]] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self.index) + len(self._pending)

    @property
    def pending(self) -> int:
        """Entries added since the last (re)index, awaiting batch embedding."""
        with self._lock:
            return len(self._pending)

    def add(self, key: str, text: str, payload: PayloadT) -> None:
        """Add one entry; it is embedded lazily on the next search."""
        with self._lock:
            self._texts.append(text)
            self._pending.append((key, text, payload))

    def add_many(self, entries: Iterable[Tuple[str, str, PayloadT]]) -> None:
        """Add ``(key, text, payload)`` triples in bulk from any iterable.

        All new texts are embedded together in a single batch call on the next
        search, so bulk-loading a library costs one ``embed_batch`` instead of
        per-entry work.
        """
        with self._lock:
            for key, text, payload in entries:
                self._texts.append(text)
                self._pending.append((key, text, payload))

    def flush(self) -> None:
        """Embed pending entries (one batch) and push them into the index."""
        with self._lock:
            if not self._pending:
                return
            keys = [key for key, _, _ in self._pending]
            texts = [text for _, text, _ in self._pending]
            payloads = [payload for _, _, payload in self._pending]
            self.index.add(keys, self.embedder.embed_batch(texts), payloads)
            self._pending = []

    def search(self, query: str, top_k: int = 10) -> List[SearchHit[PayloadT]]:
        """Return the ``top_k`` most similar entries to ``query`` (descending score)."""
        if not len(self) or top_k <= 0:
            return []
        self.flush()
        return self.index.search_matrix(self.embedder.embed(query)[None, :], top_k)[0]

    def search_many(
        self, queries: Sequence[str], top_k: int = 10
    ) -> List[List[SearchHit[PayloadT]]]:
        """Top-K results for every query, scored as one batch.

        Equivalent to ``[store.search(q, top_k) for q in queries]`` but embeds
        the queries in one batch and scores them together (for the exact
        backend a single ``(library, queries)`` matmul; for the partitioned
        backend one fan-out over the probed partitions).
        """
        if not queries:
            return []
        if not len(self) or top_k <= 0:
            return [[] for _ in queries]
        self.flush()
        return self.index.search_matrix(self.embedder.embed_batch(list(queries)), top_k)

    def texts(self) -> List[str]:
        with self._lock:
            return list(self._texts)

    def payloads(self) -> List[PayloadT]:
        # the index snapshot must be taken under the store lock: a concurrent
        # flush between the two reads would drop its in-flight entries from
        # both halves of the result (same lock order as flush, so no deadlock)
        with self._lock:
            _, _, payloads = self.index.snapshot()
            return list(payloads) + [payload for _, _, payload in self._pending]

    # -- persistence -------------------------------------------------------

    def save(
        self,
        path: str,
        codec: Optional[PayloadCodec] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Persist the library (flushing pending entries first) to ``path``.

        Payloads cross the disk boundary through ``codec`` (JSON identity by
        default); ``meta`` is caller metadata returned verbatim by
        :func:`repro.index.snapshot.load_index`.
        """
        self.flush()
        ensure_trained = getattr(self.index, "ensure_trained", None)
        if callable(ensure_trained):
            # snapshot the trained structures (k-means centroids) too, so a
            # restored library answers its first query without retraining
            ensure_trained()
        return save_index(self.index, path, texts=self.texts(), codec=codec, meta=meta)

    @classmethod
    def load(
        cls,
        path: str,
        embedder: TextEmbedder,
        codec: Optional[PayloadCodec] = None,
        search_workers: int = 1,
    ) -> "VectorStore[PayloadT]":
        """Restore a saved library without re-embedding any entry.

        ``embedder`` must embed queries in the same space the snapshot was
        built in (same configuration and fitted state) for scores to match
        the original store.
        """
        index, texts, _ = load_index(path, codec=codec, search_workers=search_workers)
        store: "VectorStore[PayloadT]" = cls(embedder, index=index)
        store._texts = list(texts)
        return store
