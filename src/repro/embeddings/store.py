"""A NumPy-backed vector store with incremental indexing and cosine top-K.

This is GRED's "embedding vector library": during the preparatory phase every
training NLQ and DVQ is embedded and inserted with its payload (the full
training example); at inference time the generator and retuner issue top-K
queries against it.

The store indexes **incrementally**: entries added since the last search are
embedded in one batch call and appended to the existing matrix, instead of
re-embedding the whole library on every invalidation.  Queries can also be
batched — :meth:`VectorStore.search_many` scores all queries against the
library in a single matrix multiplication.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.embeddings.embedder import TextEmbedder

PayloadT = TypeVar("PayloadT")


@dataclass
class SearchHit(Generic[PayloadT]):
    """One retrieval result: the stored payload plus its similarity score."""

    key: str
    payload: PayloadT
    score: float


class VectorStore(Generic[PayloadT]):
    """An append-only store of ``(key, text, payload)`` triples with cosine search.

    Embedding is lazy and incremental: :meth:`add` and :meth:`add_many` only
    record the entry; the next search embeds every not-yet-indexed text in one
    ``embed_batch`` call and appends the new rows to the matrix.  Adding N
    entries therefore costs one batch embedding, not N rebuilds of the full
    library.  Searches are thread-safe (reads share an internal lock around
    index maintenance), which lets a :class:`~repro.runtime.runner.BatchRunner`
    issue queries from many workers against one shared store.
    """

    def __init__(self, embedder: TextEmbedder):
        self.embedder = embedder
        self._keys: List[str] = []
        self._texts: List[str] = []
        self._payloads: List[PayloadT] = []
        self._matrix: Optional[np.ndarray] = None
        self._indexed = 0  # number of leading entries already in the matrix
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def pending(self) -> int:
        """Entries added since the last (re)index, awaiting batch embedding."""
        return len(self._texts) - self._indexed

    def add(self, key: str, text: str, payload: PayloadT) -> None:
        """Add one entry; it is embedded lazily on the next search."""
        with self._lock:
            self._keys.append(key)
            self._texts.append(text)
            self._payloads.append(payload)

    def add_many(self, entries: Iterable[Tuple[str, str, PayloadT]]) -> None:
        """Add ``(key, text, payload)`` triples in bulk from any iterable.

        All new texts are embedded together in a single batch call on the next
        search, so bulk-loading a library costs one ``embed_batch`` instead of
        per-entry work.
        """
        with self._lock:
            for key, text, payload in entries:
                self._keys.append(key)
                self._texts.append(text)
                self._payloads.append(payload)

    def _ensure_matrix(self) -> Optional[np.ndarray]:
        """Embed pending entries (one batch) and return the current matrix."""
        with self._lock:
            if self._indexed < len(self._texts):
                new_rows = self.embedder.embed_batch(self._texts[self._indexed:])
                if self._matrix is None or not len(self._matrix):
                    self._matrix = new_rows
                else:
                    self._matrix = np.vstack([self._matrix, new_rows])
                self._indexed = len(self._texts)
            return self._matrix

    def _hits_for_row(self, scores: np.ndarray, top_k: int) -> List[SearchHit[PayloadT]]:
        top_k = min(top_k, len(scores))
        best = np.argsort(-scores)[:top_k]
        return [
            SearchHit(key=self._keys[index], payload=self._payloads[index], score=float(scores[index]))
            for index in best
        ]

    def search(self, query: str, top_k: int = 10) -> List[SearchHit[PayloadT]]:
        """Return the ``top_k`` most similar entries to ``query`` (descending score)."""
        if not self._keys or top_k <= 0:
            return []
        matrix = self._ensure_matrix()
        query_vector = self.embedder.embed(query)
        return self._hits_for_row(matrix @ query_vector, top_k)

    def search_many(
        self, queries: Sequence[str], top_k: int = 10
    ) -> List[List[SearchHit[PayloadT]]]:
        """Top-K results for every query, scored in one matrix multiplication.

        Equivalent to ``[store.search(q, top_k) for q in queries]`` but embeds
        the queries in one batch and computes all similarities as a single
        ``(library, queries)`` matmul.
        """
        if not queries:
            return []
        if not self._keys or top_k <= 0:
            return [[] for _ in queries]
        matrix = self._ensure_matrix()
        query_matrix = self.embedder.embed_batch(list(queries))
        scores = matrix @ query_matrix.T  # (library, queries)
        return [self._hits_for_row(scores[:, column], top_k) for column in range(len(queries))]

    def texts(self) -> List[str]:
        return list(self._texts)

    def payloads(self) -> List[PayloadT]:
        return list(self._payloads)
