"""A NumPy-backed vector store with cosine top-K retrieval.

This is GRED's "embedding vector library": during the preparatory phase every
training NLQ and DVQ is embedded and inserted with its payload (the full
training example); at inference time the generator and retuner issue top-K
queries against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, TypeVar

import numpy as np

from repro.embeddings.embedder import TextEmbedder

PayloadT = TypeVar("PayloadT")


@dataclass
class SearchHit(Generic[PayloadT]):
    """One retrieval result: the stored payload plus its similarity score."""

    key: str
    payload: PayloadT
    score: float


class VectorStore(Generic[PayloadT]):
    """An append-only store of (key, text, payload) triples with cosine search."""

    def __init__(self, embedder: TextEmbedder):
        self.embedder = embedder
        self._keys: List[str] = []
        self._texts: List[str] = []
        self._payloads: List[PayloadT] = []
        self._matrix: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: str, text: str, payload: PayloadT) -> None:
        """Add one entry; the matrix is rebuilt lazily on the next search."""
        self._keys.append(key)
        self._texts.append(text)
        self._payloads.append(payload)
        self._matrix = None

    def add_many(self, entries: Sequence[tuple]) -> None:
        """Add ``(key, text, payload)`` triples in bulk."""
        for key, text, payload in entries:
            self.add(key, text, payload)

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = self.embedder.embed_batch(self._texts)
        return self._matrix

    def search(self, query: str, top_k: int = 10) -> List[SearchHit[PayloadT]]:
        """Return the ``top_k`` most similar entries to ``query`` (descending score)."""
        if not self._keys or top_k <= 0:
            return []
        matrix = self._ensure_matrix()
        query_vector = self.embedder.embed(query)
        scores = matrix @ query_vector
        top_k = min(top_k, len(self._keys))
        best = np.argsort(-scores)[:top_k]
        return [
            SearchHit(key=self._keys[index], payload=self._payloads[index], score=float(scores[index]))
            for index in best
        ]

    def texts(self) -> List[str]:
        return list(self._texts)

    def payloads(self) -> List[PayloadT]:
        return list(self._payloads)
