"""Schema model: columns, tables, foreign keys and whole-database schemas."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


class ColumnType(enum.Enum):
    """Logical column types, matching the coarse types used by nvBench/Spider."""

    TEXT = "text"
    NUMBER = "number"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def is_quantitative(self) -> bool:
        return self in (ColumnType.NUMBER,)

    @property
    def is_temporal(self) -> bool:
        return self is ColumnType.DATE


@dataclass(frozen=True)
class Column:
    """A column definition.

    Attributes:
        name: physical column name as used in DVQs.
        ctype: logical type.
        semantic: a free-form semantic tag (e.g. ``"salary"``, ``"city"``) used
            by the synthetic data generator and the NLQ templater.
        is_primary: True for the table's primary key column.
    """

    name: str
    ctype: ColumnType
    semantic: str = ""
    is_primary: bool = False

    def renamed(self, new_name: str) -> "Column":
        """Return a copy of the column with a different physical name."""
        return replace(self, name=new_name)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key edge ``table.column -> ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def renamed(self, table_map: Dict[str, str], column_map: Dict[Tuple[str, str], str]) -> "ForeignKey":
        """Apply a table/column renaming to the foreign key."""
        new_table = table_map.get(self.table, self.table)
        new_ref_table = table_map.get(self.ref_table, self.ref_table)
        new_column = column_map.get((self.table, self.column), self.column)
        new_ref_column = column_map.get((self.ref_table, self.ref_column), self.ref_column)
        return ForeignKey(new_table, new_column, new_ref_table, new_ref_column)


@dataclass(frozen=True)
class TableSchema:
    """A table definition: a name plus an ordered list of columns.

    Case-insensitive column resolution is backed by a lowercase map built once
    at construction, so :meth:`column` / :meth:`has_column` /
    :meth:`lower_map` are O(1) rather than a scan over the column list.
    """

    name: str
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        by_lower: Dict[str, Column] = {}
        for column in self.columns:
            key = column.name.lower()
            if key in by_lower:
                names = [c.name.lower() for c in self.columns]
                raise ValueError(f"Duplicate column names in table {self.name!r}: {names}")
            by_lower[key] = column
        # not a dataclass field: resolution cache only, excluded from eq/hash
        object.__setattr__(self, "_by_lower", by_lower)
        object.__setattr__(
            self, "_lower_map", {key: column.name for key, column in by_lower.items()}
        )

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        column = self._by_lower.get(name.lower())
        if column is None:
            raise KeyError(f"Table {self.name!r} has no column named {name!r}")
        return column

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_lower

    def lower_map(self) -> Dict[str, str]:
        """The cached lowercase -> exact-casing column-name map.

        Shared by :class:`~repro.database.table.Table` and the executors, so
        case-insensitive lookups never rescan the column list.  Treat the
        returned dict as read-only.
        """
        return self._lower_map

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def primary_key(self) -> Optional[Column]:
        for column in self.columns:
            if column.is_primary:
                return column
        return None

    def renamed(self, new_name: str, column_renames: Dict[str, str]) -> "TableSchema":
        """Return a copy with the table and selected columns renamed.

        ``column_renames`` maps old (case-sensitive) column names to new names.
        """
        new_columns = tuple(
            column.renamed(column_renames.get(column.name, column.name))
            for column in self.columns
        )
        return TableSchema(name=new_name, columns=new_columns)


@dataclass(frozen=True)
class DatabaseSchema:
    """A whole-database schema: tables plus foreign keys."""

    name: str
    tables: Tuple[TableSchema, ...]
    foreign_keys: Tuple[ForeignKey, ...] = field(default_factory=tuple)
    domain: str = ""

    def table(self, name: str) -> TableSchema:
        for table in self.tables:
            if table.name.lower() == name.lower():
                return table
        raise KeyError(f"Database {self.name!r} has no table named {name!r}")

    def has_table(self, name: str) -> bool:
        return any(table.name.lower() == name.lower() for table in self.tables)

    def table_names(self) -> List[str]:
        return [table.name for table in self.tables]

    def all_columns(self) -> List[Tuple[str, Column]]:
        """Every column in the database as ``(table_name, column)`` pairs."""
        pairs: List[Tuple[str, Column]] = []
        for table in self.tables:
            pairs.extend((table.name, column) for column in table.columns)
        return pairs

    def column_count(self) -> int:
        return sum(len(table.columns) for table in self.tables)

    def find_column(self, column_name: str) -> List[Tuple[str, Column]]:
        """All (table, column) pairs whose column name matches case-insensitively."""
        lowered = column_name.lower()
        return [
            (table_name, column)
            for table_name, column in self.all_columns()
            if column.name.lower() == lowered
        ]

    def join_graph(self) -> nx.Graph:
        """Undirected graph over tables with foreign keys as edges.

        Used by RGVisNet's schema encoder and by the DVQ sampler to choose
        joinable table pairs.
        """
        graph = nx.Graph()
        graph.add_nodes_from(table.name for table in self.tables)
        for foreign_key in self.foreign_keys:
            graph.add_edge(
                foreign_key.table,
                foreign_key.ref_table,
                column=foreign_key.column,
                ref_column=foreign_key.ref_column,
            )
        return graph

    def joinable_pairs(self) -> List[ForeignKey]:
        """Foreign keys whose both endpoints exist in the schema."""
        return [
            foreign_key
            for foreign_key in self.foreign_keys
            if self.has_table(foreign_key.table) and self.has_table(foreign_key.ref_table)
        ]

    def renamed(
        self,
        new_name: Optional[str] = None,
        table_renames: Optional[Dict[str, str]] = None,
        column_renames: Optional[Dict[Tuple[str, str], str]] = None,
    ) -> "DatabaseSchema":
        """Return a copy with tables/columns renamed (used for schema variants).

        ``column_renames`` maps ``(table_name, column_name)`` to new column
        names; foreign keys are rewritten consistently.
        """
        table_renames = table_renames or {}
        column_renames = column_renames or {}
        new_tables = []
        for table in self.tables:
            per_table = {
                old_column: new_column
                for (table_name, old_column), new_column in column_renames.items()
                if table_name == table.name
            }
            new_tables.append(
                table.renamed(table_renames.get(table.name, table.name), per_table)
            )
        new_foreign_keys = tuple(
            foreign_key.renamed(table_renames, column_renames)
            for foreign_key in self.foreign_keys
        )
        return DatabaseSchema(
            name=new_name or self.name,
            tables=tuple(new_tables),
            foreign_keys=new_foreign_keys,
            domain=self.domain,
        )

    def describe(self) -> str:
        """Render the schema in the prompt format used by GRED (Appendix C)."""
        lines = []
        for table in self.tables:
            columns = " , ".join(["*"] + table.column_names())
            lines.append(f"# Table {table.name}, columns = [ {columns} ]")
        if self.foreign_keys:
            fk_text = " , ".join(
                f"{fk.table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
                for fk in self.foreign_keys
            )
            lines.append(f"# Foreign_keys = [ {fk_text} ]")
        return "\n".join(lines)


def build_schema(
    name: str,
    tables: Iterable[Tuple[str, Iterable[Tuple[str, ColumnType, str]]]],
    foreign_keys: Iterable[Tuple[str, str, str, str]] = (),
    domain: str = "",
) -> DatabaseSchema:
    """Convenience constructor used by the nvBench domain templates.

    ``tables`` is an iterable of ``(table_name, [(column, type, semantic), ...])``
    where the first column of each table is treated as its primary key.
    """
    table_schemas = []
    for table_name, column_specs in tables:
        columns = []
        for index, (column_name, ctype, semantic) in enumerate(column_specs):
            columns.append(
                Column(
                    name=column_name,
                    ctype=ctype,
                    semantic=semantic,
                    is_primary=index == 0,
                )
            )
        table_schemas.append(TableSchema(name=table_name, columns=tuple(columns)))
    fk_objects = tuple(ForeignKey(*spec) for spec in foreign_keys)
    return DatabaseSchema(
        name=name, tables=tuple(table_schemas), foreign_keys=fk_objects, domain=domain
    )
