"""In-memory relational substrate used by the executor and dataset generators.

The paper's systems operate over the 100+ relational databases shipped with
nvBench (SQLite files derived from Spider).  This package provides an
equivalent in-memory substrate: a typed schema model, table storage, a foreign
key graph, a deterministic synthetic data generator and a catalog that holds a
collection of databases.
"""

from repro.database.schema import Column, ColumnType, DatabaseSchema, ForeignKey, TableSchema
from repro.database.table import Table
from repro.database.database import Database
from repro.database.catalog import Catalog
from repro.database.datagen import DataGenerator

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "Database",
    "DatabaseSchema",
    "DataGenerator",
    "ForeignKey",
    "Table",
    "TableSchema",
]
