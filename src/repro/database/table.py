"""Row-oriented in-memory table storage."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.database.schema import TableSchema
from repro.database.statistics import (
    ColumnStatistics,
    TableStatistics,
    fast_column_statistics,
)
from repro.database.typed import TypedColumn, build_typed_column

if TYPE_CHECKING:  # pragma: no cover - sampling imports Table for hints only
    from repro.database.sampling import TableSample


class Table:
    """A table: a schema plus a list of rows (dicts keyed by column name).

    Row dictionaries always use the schema's exact column names as keys; the
    accessors are case-insensitive so DVQs written with different casing still
    execute.
    """

    def __init__(self, schema: TableSchema, rows: Optional[Iterable[Dict[str, object]]] = None):
        self.schema = schema
        self._rows: List[Dict[str, object]] = []
        self._name_map = schema.lower_map()
        self._column_store: Optional[Dict[str, List[object]]] = None
        self._typed_store: Optional[Dict[str, TypedColumn]] = None
        self._column_statistics: Dict[str, ColumnStatistics] = {}
        self._statistics: Optional[TableStatistics] = None
        self._samples: Dict[
            Tuple[str, Optional[str], float, int], Optional["TableSample"]
        ] = {}
        # Guards cache build/invalidate: morsel workers sharing one Table can
        # otherwise race a half-built store against refresh_columns()/insert().
        # Reentrant because typed_store() builds from column_store() under it.
        self._store_lock = threading.RLock()
        if rows is not None:
            for row in rows:
                self.insert(row)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def rows(self) -> List[Dict[str, object]]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self._rows)

    def canonical_column(self, name: str) -> str:
        """Resolve ``name`` (any casing) to the schema's exact column name."""
        key = name.lower()
        if key not in self._name_map:
            raise KeyError(f"Table {self.name!r} has no column named {name!r}")
        return self._name_map[key]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._name_map

    def insert(self, row: Dict[str, object]) -> None:
        """Insert a row, normalising keys to schema column names.

        Missing columns are stored as ``None``; unknown keys raise ``KeyError``.
        """
        normalized: Dict[str, object] = {column.name: None for column in self.schema.columns}
        for key, value in row.items():
            normalized[self.canonical_column(key)] = value
        self._rows.append(normalized)
        with self._store_lock:
            self._column_store = None
            self._typed_store = None
            self._column_statistics.clear()
            self._statistics = None
            self._samples.clear()

    def extend(self, rows: Iterable[Dict[str, object]]) -> None:
        for row in rows:
            self.insert(row)

    def column_values(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        canonical = self.canonical_column(name)
        return [row[canonical] for row in self._rows]

    def column_store(self) -> Dict[str, List[object]]:
        """Columnar view of the table: ``{exact column name: values in row order}``.

        Built lazily on first use and cached; :meth:`insert` invalidates it.
        The columnar execution engine (:mod:`repro.executor.columnar`) scans
        these lists instead of iterating row dicts.  After mutating row values
        in place (rather than through :meth:`insert`), call
        :meth:`refresh_columns` — the same contract as
        :meth:`repro.sql.SQLiteBackend.refresh`.

        Build and invalidate are serialised by a lock so concurrent readers
        (e.g. morsel workers on a shared :class:`BatchRunner`) never observe a
        half-built store; the returned dict is immutable by convention.
        """
        store = self._column_store
        if store is None:
            with self._store_lock:
                store = self._column_store
                if store is None:
                    store = {
                        column.name: [row[column.name] for row in self._rows]
                        for column in self.schema.columns
                    }
                    self._column_store = store
        return store

    def typed_store(self) -> Dict[str, TypedColumn]:
        """Typed NumPy view of the table: ``{exact column name: TypedColumn}``.

        The vectorized columnar kernels scan these arrays; per-column dtype
        inference (number / text / object fallback) happens once here and is
        cached under the same lock discipline as :meth:`column_store`.
        :meth:`insert` and :meth:`refresh_columns` invalidate it.
        """
        store = self._typed_store
        if store is None:
            with self._store_lock:
                store = self._typed_store
                if store is None:
                    lists = self.column_store()
                    store = {name: build_typed_column(values) for name, values in lists.items()}
                    self._typed_store = store
        return store

    def column_statistics(self, name: str) -> ColumnStatistics:
        """Optimizer statistics for one column, computed lazily and cached.

        Backed by :func:`repro.database.statistics.fast_column_statistics`
        (NumPy path for clean number columns, exact path otherwise), under
        the same lock discipline as :meth:`column_store`; :meth:`insert` and
        :meth:`refresh_columns` invalidate the cache.  Laziness matters: a
        query plan only pays for statistics on the columns it references.
        """
        canonical = self.canonical_column(name)
        cached = self._column_statistics.get(canonical)
        if cached is None:
            with self._store_lock:
                cached = self._column_statistics.get(canonical)
                if cached is None:
                    cached = fast_column_statistics(self, canonical)
                    self._column_statistics[canonical] = cached
        return cached

    def statistics(self) -> TableStatistics:
        """Full :class:`TableStatistics` (all columns), cached and
        insert-invalidated next to :meth:`column_store` / :meth:`typed_store`.

        Prefer :meth:`column_statistics` inside the optimizer — it only pays
        for referenced columns; this accessor summarises every column (each
        per-column summary lands in the shared cache either way).
        """
        stats = self._statistics
        if stats is None:
            with self._store_lock:
                stats = self._statistics
                if stats is None:
                    columns = {
                        column.name.lower(): self.column_statistics(column.name)
                        for column in self.schema.columns
                    }
                    stats = TableStatistics(
                        name=self.name, row_count=len(self._rows), columns=columns
                    )
                    self._statistics = stats
        return stats

    def sample(
        self,
        kind: str = "uniform",
        key: Optional[str] = None,
        fraction: float = 0.05,
        seed: int = 0,
    ) -> Optional["TableSample"]:
        """A precomputed seeded row sample (see :mod:`repro.database.sampling`).

        Cached by ``(kind, key, fraction, seed)`` under the store lock and
        invalidated by :meth:`insert` / :meth:`refresh_columns`, so the AQP
        path pays the permutation cost once per table per sample shape.
        Returns ``None`` when a keyed sample declines (too many strata); the
        decline is cached too.
        """
        from repro.database.sampling import build_table_sample

        canonical = self.canonical_column(key) if key is not None else None
        cache_key = (kind, canonical, fraction, seed)
        if cache_key not in self._samples:
            with self._store_lock:
                if cache_key not in self._samples:
                    self._samples[cache_key] = build_table_sample(
                        self, kind=kind, key=canonical, fraction=fraction, seed=seed
                    )
        return self._samples[cache_key]

    def refresh_columns(self) -> None:
        """Drop the cached columnar views (call after in-place row mutation)."""
        with self._store_lock:
            self._column_store = None
            self._typed_store = None
            self._column_statistics.clear()
            self._statistics = None
            self._samples.clear()

    def distinct_values(self, name: str) -> List[object]:
        """Distinct non-null values of a column, preserving first-seen order."""
        seen = set()
        values: List[object] = []
        for value in self.column_values(name):
            if value is None or value in seen:
                continue
            seen.add(value)
            values.append(value)
        return values

    def select_rows(self, columns: Sequence[str]) -> List[Dict[str, object]]:
        """Project rows onto ``columns`` (canonical names preserved)."""
        canonical = [self.canonical_column(column) for column in columns]
        return [{name: row[name] for name in canonical} for row in self._rows]

    def rename_columns(self, renames: Dict[str, str]) -> "Table":
        """Return a new table whose schema and rows use the renamed columns."""
        new_schema = self.schema.renamed(self.schema.name, renames)
        new_rows = []
        for row in self._rows:
            new_rows.append({renames.get(key, key): value for key, value in row.items()})
        return Table(new_schema, new_rows)
