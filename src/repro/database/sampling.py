"""Precomputed row samples for approximate query processing (Verdict-style).

The AQP rewrite (:mod:`repro.plan.sampling`) answers aggregate/bin DVQs from
a small, precomputed subset of a table's rows instead of the full scan.  Two
sample kinds cover the chart workload:

* **uniform** — a seeded simple random sample of ``fraction`` of the rows.
  Every surviving row represents ``n / k`` population rows, so COUNT/SUM
  outputs scale by that single global factor.
* **keyed** — stratified by a group-by column: every distinct key value
  (including NULL) contributes ``max(1, round(fraction * g))`` of its ``g``
  rows, with a per-stratum scale ``g / k_g``.  This guarantees no group
  disappears from the chart (a uniform sample can miss rare groups entirely)
  and makes per-group COUNTs exact for single-table group-bys.

Samples are deterministic in ``(seed, fraction, key)`` — the row permutation
comes from :func:`numpy.random.default_rng` — and are built once per table
via :meth:`repro.database.table.Table.sample`, cached and insert-invalidated
next to the column stores.  Sampled row ids are kept **sorted** so the
engine's late-materialising batches stay in row order and morsel slicing
keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.database.typed import KIND_NUMBER, KIND_TEXT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (table imports us)
    from repro.database.table import Table

#: Sample kinds understood by the plan IR's ``Sample`` node.
UNIFORM = "uniform"
KEYED = "keyed"

#: Default sampling fraction: 5% keeps 1M-row scans ~20x smaller while the
#: CLT bound at ~50k sampled rows stays well under the 5% error budget.
DEFAULT_FRACTION = 0.05

#: Keyed samples decline beyond this many strata: per-stratum draws would
#: dominate build time and the sample would approach the full table anyway.
MAX_STRATA = 4096


@dataclass(frozen=True)
class Stratum:
    """Population and sample size of one keyed-sample stratum."""

    population: int
    sampled: int

    @property
    def scale(self) -> float:
        return self.population / self.sampled if self.sampled else 0.0


@dataclass(frozen=True)
class TableSample:
    """One materialised row sample of a table.

    Attributes:
        kind: :data:`UNIFORM` or :data:`KEYED`.
        key: canonical stratification column (keyed samples only).
        fraction: requested sampling fraction.
        seed: RNG seed the permutation was drawn with.
        indices: **sorted** sampled row ids into the base table.
        row_count: population row count ``n`` at build time.
        strata: per-key-value :class:`Stratum` (keyed samples only), keyed by
            the group value exactly as group-by surfaces it (``None`` for the
            NULL stratum).
    """

    kind: str
    key: Optional[str]
    fraction: float
    seed: int
    indices: np.ndarray
    row_count: int
    strata: Dict[object, Stratum] = field(default_factory=dict)

    @property
    def sampled_rows(self) -> int:
        return int(self.indices.size)

    @property
    def scale(self) -> float:
        """Global scale-up factor ``n / k`` (uniform samples)."""
        return self.row_count / self.sampled_rows if self.sampled_rows else 0.0


def _sample_size(population: int, fraction: float) -> int:
    """At least one row per (non-empty) population, at most all of them."""
    return min(population, max(1, round(population * fraction)))


def _stratum_codes(table: "Table", key: str) -> Optional[Tuple[np.ndarray, List[object]]]:
    """Label every row with a stratum code; return per-code representatives.

    Codes group rows exactly as GROUP BY would (``5`` and ``5.0`` share a
    stratum, NULLs form their own).  Returns ``None`` when the column has too
    many strata for a keyed sample to be worthwhile.
    """
    column = table.typed_store()[key]
    mask = column.mask
    if len(column) == 0:
        return np.empty(0, dtype=np.int64), [None]
    if column.kind in (KIND_NUMBER, KIND_TEXT) and not column.has_nan:
        # vectorized: distinct shadow values index the strata; masked slots
        # hold placeholders, so carve the NULL stratum out afterwards
        _, inverse = np.unique(column.data, return_inverse=True)
        codes = inverse.astype(np.int64) + 1
        codes[mask] = 0
    else:
        # object fallback: dict-keyed labelling, same equality as group-by
        seen: Dict[object, int] = {}
        codes = np.zeros(len(column), dtype=np.int64)
        for position, value in enumerate(column.objects):
            if value is None:
                continue
            code = seen.get(value)
            if code is None:
                if len(seen) >= MAX_STRATA:
                    return None
                code = len(seen) + 1
                seen[value] = code
            codes[position] = code
    representatives: List[object] = [None] * (int(codes.max()) + 1 if codes.size else 1)
    first = np.full(len(representatives), -1, dtype=np.int64)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = np.concatenate(([0], boundaries))
    for start in starts:
        first[sorted_codes[start]] = order[start]
    for code, position in enumerate(first):
        if position >= 0:
            representatives[code] = column.objects[position]
    if len(representatives) - 1 > MAX_STRATA:
        return None
    return codes, representatives


def build_table_sample(
    table: "Table",
    kind: str = UNIFORM,
    key: Optional[str] = None,
    fraction: float = DEFAULT_FRACTION,
    seed: int = 0,
) -> Optional[TableSample]:
    """Draw a seeded sample of ``table``; ``None`` when a keyed build declines.

    Prefer :meth:`repro.database.table.Table.sample`, which caches the result
    under the store lock and invalidates it on insert.
    """
    population = len(table.rows)
    rng = np.random.default_rng(seed)
    if kind == UNIFORM:
        size = _sample_size(population, fraction)
        indices = np.sort(rng.permutation(population)[:size]) if population else (
            np.empty(0, dtype=np.int64)
        )
        return TableSample(
            kind=UNIFORM,
            key=None,
            fraction=fraction,
            seed=seed,
            indices=indices.astype(np.int64),
            row_count=population,
        )
    if kind != KEYED:
        raise ValueError(f"unknown sample kind {kind!r}")
    if key is None:
        raise ValueError("keyed samples require a stratification column")
    canonical = table.canonical_column(key)
    labelled = _stratum_codes(table, canonical)
    if labelled is None:
        return None
    codes, representatives = labelled
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = np.concatenate(([0], boundaries)) if codes.size else np.empty(0, np.int64)
    stops = np.concatenate((boundaries, [codes.size])) if codes.size else starts
    picked: List[np.ndarray] = []
    strata: Dict[object, Stratum] = {}
    for start, stop in zip(starts, stops):
        group = order[start:stop]
        size = _sample_size(group.size, fraction)
        picked.append(group[rng.permutation(group.size)[:size]])
        value = representatives[sorted_codes[start]]
        strata[value] = Stratum(population=int(group.size), sampled=size)
    indices = np.sort(np.concatenate(picked)) if picked else np.empty(0, np.int64)
    return TableSample(
        kind=KEYED,
        key=canonical,
        fraction=fraction,
        seed=seed,
        indices=indices.astype(np.int64),
        row_count=population,
        strata=strata,
    )
