"""Optimizer statistics: row/null counts, NDV, histograms and MCVs per column.

These are the classic summaries a cost-based optimizer needs — row and null
counts, number of distinct values (NDV), min/max, an equi-depth histogram and
a small most-common-values (MCV) list per column.  They started life in
:mod:`repro.workload.stats` driving the workload generator; the cost model
(:mod:`repro.plan.cost`) and the sampling rewrite (:mod:`repro.plan.sampling`)
now consume the same summaries, so the collectors live here in the engine and
the workload module re-exports them.

Two collectors share the :class:`ColumnStatistics` shape:

* :func:`collect_column_statistics` — the exact object-path collector.  It
  preserves Python value types (an int MCV stays an int), which the workload
  generator depends on: generated predicate literals are serialised into
  query text, so ``5`` vs ``5.0`` would change corpus determinism.
* :func:`fast_column_statistics` — the engine-side collector behind
  :meth:`repro.database.table.Table.statistics`.  Clean number columns take a
  NumPy path over the typed store (values surface as floats — fine for
  estimation, never for query text); everything else falls back to the exact
  collector.

Statistics are plain frozen dataclasses so they serialise cleanly into fuzz
reports and test fixtures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.database.schema import ColumnType
from repro.database.typed import KIND_NUMBER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (table imports us)
    from repro.database.database import Database
    from repro.database.table import Table

#: Histogram / MCV sizing defaults: small enough to be negligible to compute
#: at the 1M-row tier, rich enough to drive selective predicates.
DEFAULT_BINS = 8
DEFAULT_MCV = 5


@dataclass(frozen=True)
class ColumnStatistics:
    """Summaries of one column's value distribution.

    Attributes:
        name: canonical column name.
        ctype: the column's logical type.
        row_count: number of rows (including nulls).
        null_count: number of NULL values.
        ndv: number of distinct non-null values.
        minimum / maximum: extrema over non-null values (None when empty).
        histogram: equi-depth bin edges over the sorted non-null values —
            ``len(histogram)`` is ``bins + 1`` when enough values exist.
            Quantile edges make good range-predicate endpoints: a BETWEEN
            over two adjacent edges selects ~1/bins of the rows.
        most_common: up to ``mcv`` ``(value, count)`` pairs, descending by
            count — equality predicates on these have predictable, non-empty
            selectivity.
    """

    name: str
    ctype: ColumnType
    row_count: int
    null_count: int
    ndv: int
    minimum: Optional[object] = None
    maximum: Optional[object] = None
    histogram: Tuple[object, ...] = ()
    most_common: Tuple[Tuple[object, int], ...] = ()

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    @property
    def value_range(self) -> Optional[float]:
        """max - min for numeric columns (None otherwise / when empty)."""
        if self.ctype is not ColumnType.NUMBER:
            return None
        if self.minimum is None or self.maximum is None:
            return None
        return float(self.maximum) - float(self.minimum)


@dataclass(frozen=True)
class TableStatistics:
    """Row count plus per-column statistics for one table."""

    name: str
    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        return self.columns[name.lower()]


def collect_column_statistics(
    table: "Table",
    column_name: str,
    bins: int = DEFAULT_BINS,
    mcv: int = DEFAULT_MCV,
) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` for one column with a single scan."""
    canonical = table.canonical_column(column_name)
    ctype = next(c.ctype for c in table.schema.columns if c.name == canonical)
    values = table.column_values(canonical)
    non_null = [value for value in values if value is not None]
    counts = Counter(non_null)
    ordered = sorted(counts)
    histogram: Tuple[object, ...] = ()
    if len(ordered) >= 2:
        # equi-depth edges over the sorted multiset: walk the distinct values
        # in order, cutting every len/bins occurrences
        sorted_values = sorted(non_null)
        step = max(len(sorted_values) // bins, 1)
        edges = [sorted_values[0]]
        for position in range(step, len(sorted_values), step):
            edge = sorted_values[position]
            if edge != edges[-1]:
                edges.append(edge)
        if sorted_values[-1] != edges[-1]:
            edges.append(sorted_values[-1])
        histogram = tuple(edges)
    return ColumnStatistics(
        name=canonical,
        ctype=ctype,
        row_count=len(values),
        null_count=len(values) - len(non_null),
        ndv=len(counts),
        minimum=ordered[0] if ordered else None,
        maximum=ordered[-1] if ordered else None,
        histogram=histogram,
        most_common=tuple(counts.most_common(mcv)),
    )


def fast_column_statistics(
    table: "Table",
    column_name: str,
    bins: int = DEFAULT_BINS,
    mcv: int = DEFAULT_MCV,
) -> ColumnStatistics:
    """Engine-side collector: NumPy fast path over the typed store.

    Clean number columns (no NaN) are summarised from the float64 shadow
    array — sort + ``np.unique`` instead of a Python ``Counter`` — which is
    what makes per-column statistics affordable at the 1M-row tier.  Values
    surface as Python floats; that is fine for cardinality *estimation* (the
    only consumer) but is exactly why the workload generator keeps the exact
    collector above.  Text/object/NaN columns fall back to the exact path.
    """
    canonical = table.canonical_column(column_name)
    column = table.typed_store()[canonical]
    if column.kind != KIND_NUMBER or column.has_nan:
        return collect_column_statistics(table, column_name, bins, mcv)
    ctype = next(c.ctype for c in table.schema.columns if c.name == canonical)
    row_count = len(column)
    null_count = int(column.mask.sum())
    values = np.sort(column.data[~column.mask]) if null_count else np.sort(column.data)
    if values.size == 0:
        return ColumnStatistics(canonical, ctype, row_count, null_count, 0)
    distinct, counts = np.unique(values, return_counts=True)
    histogram: Tuple[object, ...] = ()
    if distinct.size >= 2:
        step = max(values.size // bins, 1)
        edges = [float(values[0])]
        for position in range(step, values.size, step):
            edge = float(values[position])
            if edge != edges[-1]:
                edges.append(edge)
        if float(values[-1]) != edges[-1]:
            edges.append(float(values[-1]))
        histogram = tuple(edges)
    # top-k by count descending; the stable sort keeps ties in ascending
    # value order, a deterministic (if different from Counter's first-seen)
    # tie-break — MCVs here only feed selectivity estimates
    order = np.argsort(-counts, kind="stable")[:mcv]
    most_common = tuple((float(distinct[i]), int(counts[i])) for i in order)
    return ColumnStatistics(
        name=canonical,
        ctype=ctype,
        row_count=row_count,
        null_count=null_count,
        ndv=int(distinct.size),
        minimum=float(values[0]),
        maximum=float(values[-1]),
        histogram=histogram,
        most_common=most_common,
    )


def collect_table_statistics(
    table: "Table", bins: int = DEFAULT_BINS, mcv: int = DEFAULT_MCV
) -> TableStatistics:
    columns = {
        column.name.lower(): collect_column_statistics(table, column.name, bins, mcv)
        for column in table.schema.columns
    }
    return TableStatistics(name=table.name, row_count=len(table.rows), columns=columns)


def collect_database_statistics(
    database: "Database", bins: int = DEFAULT_BINS, mcv: int = DEFAULT_MCV
) -> Dict[str, TableStatistics]:
    """Per-table statistics keyed by lower-cased table name."""
    return {
        table.name.lower(): collect_table_statistics(table, bins, mcv)
        for table in database.tables()
    }
