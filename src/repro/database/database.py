"""A database: a schema plus populated tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.database.schema import DatabaseSchema
from repro.database.table import Table


class Database:
    """An in-memory database holding one :class:`Table` per schema table."""

    def __init__(self, schema: DatabaseSchema, tables: Optional[Dict[str, Table]] = None):
        self.schema = schema
        self._tables: Dict[str, Table] = {}
        if tables:
            for table in tables.values():
                self.add_table(table)
        else:
            for table_schema in schema.tables:
                self.add_table(Table(table_schema))

    @property
    def name(self) -> str:
        return self.schema.name

    def add_table(self, table: Table) -> None:
        if not self.schema.has_table(table.name):
            raise KeyError(f"Schema {self.schema.name!r} has no table {table.name!r}")
        self._tables[table.name.lower()] = table

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise KeyError(f"Database {self.name!r} has no table named {name!r}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def row_count(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def resolve_column(self, column_name: str, preferred_table: Optional[str] = None) -> Optional[Tuple[str, str]]:
        """Find ``(table, column)`` for a column name, preferring ``preferred_table``.

        Returns ``None`` if no table owns a column with that name.  Used by the
        executor and by schema-linking components to ground unqualified column
        references.
        """
        if preferred_table and self.has_table(preferred_table):
            table = self.table(preferred_table)
            if table.has_column(column_name):
                return table.name, table.canonical_column(column_name)
        for table in self._tables.values():
            if table.has_column(column_name):
                return table.name, table.canonical_column(column_name)
        return None

    def renamed(
        self,
        new_name: Optional[str] = None,
        table_renames: Optional[Dict[str, str]] = None,
        column_renames: Optional[Dict[Tuple[str, str], str]] = None,
    ) -> "Database":
        """Return a copy of the database with tables/columns renamed.

        Data rows are carried over unchanged (values are identical; only the
        identifiers differ), matching how nvBench-Rob renames schemas without
        touching the underlying data.
        """
        table_renames = table_renames or {}
        column_renames = column_renames or {}
        new_schema = self.schema.renamed(new_name, table_renames, column_renames)
        new_tables: Dict[str, Table] = {}
        for table in self._tables.values():
            per_table = {
                old: new
                for (table_name, old), new in column_renames.items()
                if table_name == table.name
            }
            renamed_table = table.rename_columns(per_table)
            new_table_name = table_renames.get(table.name, table.name)
            renamed_schema = renamed_table.schema.renamed(new_table_name, {})
            new_tables[new_table_name.lower()] = Table(renamed_schema, renamed_table.rows)
        return Database(new_schema, new_tables)

    @classmethod
    def from_rows(
        cls, schema: DatabaseSchema, rows_by_table: Dict[str, Iterable[Dict[str, object]]]
    ) -> "Database":
        """Build a database from a mapping of table name to row iterables."""
        database = cls(schema)
        for table_name, rows in rows_by_table.items():
            database.table(table_name).extend(rows)
        return database
