"""Typed NumPy column storage with null masks.

The columnar engine's vectorized kernels (:mod:`repro.executor.columnar` and
the vector variants in :mod:`repro.executor.predicates` /
:mod:`repro.executor.binning` / :mod:`repro.executor.functions`) need columns
as homogeneous NumPy arrays, but DVQ databases store heterogeneous Python
objects with ``None`` for SQL NULL.  :func:`build_typed_column` bridges the
two: one classification pass infers a *kind* for the column and materialises

* ``objects`` — the original Python values as an object-dtype array (the
  source of truth: every output row is gathered from here, so results stay
  bit-identical to the per-value interpreter),
* ``data`` — a typed shadow array the kernels compute on (``float64`` for
  number columns, ``<U`` for text columns, absent for mixed columns), and
* ``mask`` — a boolean null mask (``True`` where the value is ``None``).

Inference is conservative: any column a typed array cannot represent
*exactly* (mixed types, integers beyond the float64-exact range, strings
with NUL bytes) falls back to ``KIND_OBJECT``, for which every kernel
declines and the engine evaluates per value — the correctness-first escape
hatch the differential suite leans on.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

#: Column kinds inferred by :func:`build_typed_column`.
KIND_NUMBER = "number"
KIND_TEXT = "text"
KIND_OBJECT = "object"

#: Integers with magnitude beyond 2**53 are not exactly representable in
#: float64; such columns stay object-kind rather than silently losing bits.
_FLOAT_EXACT_INT = 2**53


class TypedColumn:
    """One column as parallel object / typed / mask arrays.

    Attributes:
        kind: ``"number"`` (data is float64), ``"text"`` (data is ``<U``) or
            ``"object"`` (no typed shadow; kernels must decline).
        objects: object-dtype array of the original Python values (``None``
            for NULL) — outputs are always gathered from here.
        data: the typed shadow array, or ``None`` for object kind.  Masked
            slots hold a placeholder (``0.0`` / ``""``); kernels must never
            let a placeholder escape — consult :attr:`mask`.
        mask: boolean array, ``True`` where the value is NULL.
    """

    __slots__ = ("kind", "objects", "data", "mask", "_lowered", "_has_nan", "_has_bool")

    def __init__(
        self,
        kind: str,
        objects: np.ndarray,
        data: Optional[np.ndarray],
        mask: np.ndarray,
        lowered: Optional[np.ndarray] = None,
        has_nan: Optional[bool] = None,
        has_bool: Optional[bool] = None,
    ):
        self.kind = kind
        self.objects = objects
        self.data = data
        self.mask = mask
        self._lowered = lowered
        self._has_nan = has_nan
        self._has_bool = has_bool

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def lowered(self) -> np.ndarray:
        """Lower-cased shadow of a text column (NOCASE equality / LIKE).

        Built on first use via :func:`np.char.lower` and cached; a concurrent
        double build is benign (both threads compute the same array).
        """
        assert self.kind == KIND_TEXT, "lowered is only defined for text columns"
        lowered = self._lowered
        if lowered is None:
            lowered = np.char.lower(self.data)
            self._lowered = lowered
        return lowered

    @property
    def has_nan(self) -> bool:
        """True when a number column may contain NaN values.

        NaN breaks the equivalences the vector kernels rely on (``==`` under
        hashing, a total ``min``/``max``), so kernels consult this flag and
        fall back to per-value evaluation.  The flag is a safe
        over-approximation after :meth:`take` / :meth:`slice`.
        """
        if self._has_nan is None:
            if self.kind == KIND_NUMBER:
                self._has_nan = bool(np.isnan(self.data).any())
            else:
                self._has_nan = False
        return self._has_nan

    @property
    def has_bool(self) -> bool:
        """True when a number column may contain ``bool`` values.

        The float64 shadow stores ``True``/``False`` as ``1.0``/``0.0``, so
        any kernel whose scalar counterpart treats bools differently from
        numbers (the legacy ORDER BY key sorts them as text) must consult
        this flag and decline.  Like :attr:`has_nan`, a safe
        over-approximation after :meth:`take` / :meth:`slice`.
        """
        if self._has_bool is None:
            if self.kind == KIND_NUMBER:
                self._has_bool = any(
                    isinstance(value, bool) for value in self.objects.tolist()
                )
            else:
                self._has_bool = False
        return self._has_bool

    def take(self, indices: np.ndarray) -> "TypedColumn":
        """Gather rows by index into a new, aligned :class:`TypedColumn`."""
        return TypedColumn(
            self.kind,
            self.objects[indices],
            None if self.data is None else self.data[indices],
            self.mask[indices],
            lowered=None if self._lowered is None else self._lowered[indices],
            has_nan=self._has_nan,
            has_bool=self._has_bool,
        )

    def slice(self, start: int, stop: int) -> "TypedColumn":
        """A zero-copy row-range view (the unit of a morsel)."""
        return TypedColumn(
            self.kind,
            self.objects[start:stop],
            None if self.data is None else self.data[start:stop],
            self.mask[start:stop],
            lowered=None if self._lowered is None else self._lowered[start:stop],
            has_nan=self._has_nan,
            has_bool=self._has_bool,
        )


def as_object_column(values: np.ndarray) -> TypedColumn:
    """Wrap an object array as an object-kind column (no inference pass).

    The non-vectorized engine path uses this: it needs aligned object arrays
    for gathering but never consults ``data``; the null mask is computed
    lazily only if a kernel asks (it will not).
    """
    mask = np.fromiter((value is None for value in values), np.bool_, count=len(values))
    return TypedColumn(KIND_OBJECT, values, None, mask)


def object_array(values: List[object]) -> np.ndarray:
    """A 1-D object array of ``values`` (never collapsing nested sequences)."""
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return array


def build_typed_column(values: List[object]) -> TypedColumn:
    """Infer the kind of ``values`` and build its :class:`TypedColumn`.

    A column is *number* when every non-null value is ``bool``/``int``/
    ``float`` (ints within the float64-exact range), *text* when every
    non-null value is a ``str`` free of NUL bytes, and *object* otherwise.
    An all-null column is number kind by convention (all kernels see only
    masked slots either way).
    """
    objects = object_array(values)
    mask = np.fromiter((value is None for value in values), np.bool_, count=len(values))
    number = True
    text = True
    has_bool = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            text = False
            has_bool = True
        elif isinstance(value, (int, float)):
            text = False
            if isinstance(value, int) and not -_FLOAT_EXACT_INT <= value <= _FLOAT_EXACT_INT:
                number = False
                break
        elif isinstance(value, str):
            number = False
            if "\x00" in value:
                text = False
                break
        else:
            number = False
            text = False
            break
    if number:
        shadow = objects.copy()
        shadow[mask] = 0.0
        data = shadow.astype(np.float64)
        return TypedColumn(KIND_NUMBER, objects, data, mask, has_bool=has_bool)
    if text:
        shadow = objects.copy()
        shadow[mask] = ""
        data = shadow.astype(np.str_)
        return TypedColumn(KIND_TEXT, objects, data, mask, has_bool=False)
    return TypedColumn(KIND_OBJECT, objects, None, mask, has_nan=False, has_bool=False)
