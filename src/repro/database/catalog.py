"""A catalog of databases keyed by database id (``db_id`` in nvBench)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.database.database import Database


class Catalog:
    """Holds a set of databases, mirroring nvBench's ``database/`` directory."""

    def __init__(self, databases: Optional[Iterable[Database]] = None):
        self._databases: Dict[str, Database] = {}
        if databases:
            for database in databases:
                self.add(database)

    def add(self, database: Database) -> None:
        key = database.name.lower()
        if key in self._databases:
            raise KeyError(f"Catalog already contains a database named {database.name!r}")
        self._databases[key] = database

    def get(self, name: str) -> Database:
        key = name.lower()
        if key not in self._databases:
            raise KeyError(f"Catalog has no database named {name!r}")
        return self._databases[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._databases

    def __len__(self) -> int:
        return len(self._databases)

    def __iter__(self) -> Iterator[Database]:
        return iter(self._databases.values())

    def names(self) -> List[str]:
        return [database.name for database in self._databases.values()]

    def total_tables(self) -> int:
        return sum(len(database.schema.tables) for database in self._databases.values())

    def total_columns(self) -> int:
        return sum(database.schema.column_count() for database in self._databases.values())

    def statistics(self) -> Dict[str, float]:
        """Summary counts matching the bottom half of Figure 2 in the paper."""
        database_count = len(self._databases)
        table_count = self.total_tables()
        column_count = self.total_columns()
        return {
            "databases": database_count,
            "tables": table_count,
            "columns": column_count,
            "avg_tables_per_db": table_count / database_count if database_count else 0.0,
            "avg_columns_per_table": column_count / table_count if table_count else 0.0,
        }
