"""Deterministic synthetic data generation for schema columns.

nvBench ships real SQLite data derived from Spider.  We substitute a
deterministic generator keyed on each column's *semantic* tag so filters,
aggregates and group-bys produce plausible, non-degenerate chart data.  The
generator is fully seeded: the same schema and seed always produce the same
rows, which keeps every experiment reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.database.database import Database
from repro.database.schema import Column, ColumnType, DatabaseSchema, TableSchema

_FIRST_NAMES = [
    "Shelley", "Nancy", "Steven", "John", "Hermann", "Alexander", "Adam",
    "Susan", "Den", "Michael", "Jennifer", "Laura", "Carlos", "Mei", "Priya",
    "Omar", "Elena", "Lucas", "Aisha", "Tom",
]
_LAST_NAMES = [
    "King", "Kochhar", "De Haan", "Hunold", "Ernst", "Austin", "Pataballa",
    "Lorentz", "Greenberg", "Faviet", "Chen", "Sciarra", "Urman", "Popp",
    "Raphaely", "Khoo", "Baida", "Tobias", "Himuro", "Colmenares",
]
_CITIES = [
    "Seattle", "Toronto", "London", "Oxford", "Sydney", "Munich", "Geneva",
    "Tokyo", "Singapore", "Venice", "Utrecht", "Bern", "Mexico City", "Sao Paulo",
]
_COUNTRIES = [
    "United States", "Canada", "United Kingdom", "Australia", "Germany",
    "Switzerland", "Japan", "Singapore", "Italy", "Netherlands", "Brazil",
]
_DEPARTMENT_NAMES = [
    "Administration", "Marketing", "Purchasing", "Human Resources", "Shipping",
    "IT", "Public Relations", "Sales", "Executive", "Finance", "Accounting",
]
_JOB_TITLES = [
    "President", "Administration Vice President", "Accountant", "Programmer",
    "Marketing Manager", "Sales Representative", "Stock Clerk", "Shipping Clerk",
]
_PRODUCT_NAMES = [
    "Laptop", "Monitor", "Keyboard", "Tablet", "Camera", "Printer", "Router",
    "Speaker", "Headset", "Charger", "Scanner", "Projector",
]
_GENERIC_WORDS = [
    "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Eta", "Theta",
    "Iota", "Kappa", "Lambda", "Sigma", "Omega", "Orion", "Vega", "Lyra",
]
_STATUS_VALUES = ["Open", "Closed", "Pending", "Approved", "Rejected"]
_CATEGORY_VALUES = ["Gold", "Silver", "Bronze", "Platinum", "Standard"]
_THEME_VALUES = ["History", "Science", "Art", "Nature", "Technology", "Sports"]

_SEMANTIC_TEXT_POOLS: Dict[str, List[str]] = {
    "first_name": _FIRST_NAMES,
    "last_name": _LAST_NAMES,
    "name": _GENERIC_WORDS,
    "city": _CITIES,
    "country": _COUNTRIES,
    "department": _DEPARTMENT_NAMES,
    "job_title": _JOB_TITLES,
    "product": _PRODUCT_NAMES,
    "status": _STATUS_VALUES,
    "category": _CATEGORY_VALUES,
    "theme": _THEME_VALUES,
}

_SEMANTIC_NUMBER_RANGES: Dict[str, tuple] = {
    "salary": (2000, 25000),
    "price": (5, 2000),
    "budget": (10000, 900000),
    "age": (18, 70),
    "year": (1990, 2023),
    "capacity": (50, 1200),
    "count": (1, 500),
    "rating": (1, 10),
    "weight": (1, 120),
    "distance": (1, 5000),
    "percentage": (0, 100),
    "id": (1, 10000),
}


class DataGenerator:
    """Populate a :class:`DatabaseSchema` with deterministic synthetic rows.

    Args:
        seed: base RNG seed; combined with the schema name so every database
            gets an independent, reproducible stream.
        rows_per_table: default row count per table.
        null_fraction: when > 0, this fraction of non-key values is nulled
            out after generation (primary-key and foreign-key columns stay
            intact so join keys remain inside the portable subset).
        fk_null_fraction: when > 0, this fraction of *foreign-key* values is
            additionally nulled out — the knob the differential fuzzer uses
            to exercise SQL NULL-join semantics (a NULL key never matches).
        nan_fraction: when > 0, this fraction of non-key NUMBER values
            becomes ``float("nan")`` — the knob sort-heavy fuzz sweeps use to
            exercise the NaN rank of the canonical value order (finite
            numbers < NaN < text < NULL) on ORDER BY columns.
        skew: when > 0, text values and foreign-key references are drawn
            from a power-law over their pools instead of uniformly — higher
            values concentrate mass on the first pool entries, producing the
            hot-key distributions selective predicates and joins care about.
        correlated: when True, every numeric value in a row is pulled toward
            the row's first numeric draw, so columns like price/budget move
            together instead of being independent noise.

    The default configuration (``null_fraction=0, skew=0,
    correlated=False``) consumes exactly the historical RNG sequence, so
    seeded databases generated before these knobs existed are bit-identical.
    """

    def __init__(
        self,
        seed: int = 0,
        rows_per_table: int = 40,
        null_fraction: float = 0.0,
        skew: float = 0.0,
        correlated: bool = False,
        fk_null_fraction: float = 0.0,
        nan_fraction: float = 0.0,
    ):
        self.seed = seed
        self.rows_per_table = rows_per_table
        self.null_fraction = null_fraction
        self.skew = skew
        self.correlated = correlated
        self.fk_null_fraction = fk_null_fraction
        self.nan_fraction = nan_fraction

    def populate(
        self,
        schema: DatabaseSchema,
        rows_per_table: Optional[int] = None,
        rows_by_table: Optional[Dict[str, int]] = None,
    ) -> Database:
        """Return a populated :class:`Database` for ``schema``.

        ``rows_by_table`` overrides the row count for individual tables
        (case-insensitive names) — the hook tiered star schemas use to give
        fact tables orders of magnitude more rows than their dimensions.
        """
        rows_per_table = rows_per_table or self.rows_per_table
        overrides = {
            name.lower(): count for name, count in (rows_by_table or {}).items()
        }
        rng = random.Random(f"{self.seed}:{schema.name}")
        database = Database(schema)
        primary_keys: Dict[str, List[object]] = {}
        for table_schema in schema.tables:
            count = overrides.get(table_schema.name.lower(), rows_per_table)
            rows = [
                self._generate_row(table_schema, row_index, rng, schema, primary_keys)
                for row_index in range(count)
            ]
            database.table(table_schema.name).extend(rows)
            primary = table_schema.primary_key
            if primary is not None:
                primary_keys[table_schema.name] = [row[primary.name] for row in rows]
        self._apply_foreign_keys(database, rng, primary_keys)
        if self.null_fraction > 0:
            self._inject_nulls(database, rng)
        if self.fk_null_fraction > 0:
            self._inject_fk_nulls(database, rng)
        if self.nan_fraction > 0:
            self._inject_nans(database, rng)
        return database

    def _generate_row(
        self,
        table_schema: TableSchema,
        row_index: int,
        rng: random.Random,
        schema: DatabaseSchema,
        primary_keys: Dict[str, List[object]],
    ) -> Dict[str, object]:
        row: Dict[str, object] = {}
        row_state: Dict[str, float] = {}
        for column in table_schema.columns:
            row[column.name] = self._generate_value(column, row_index, rng, row_state)
        return row

    def _generate_value(
        self,
        column: Column,
        row_index: int,
        rng: random.Random,
        row_state: Optional[Dict[str, float]] = None,
    ) -> object:
        if column.is_primary:
            return row_index + 1
        semantic = column.semantic or column.name.lower()
        if column.ctype is ColumnType.NUMBER:
            low, high = self._number_range(semantic)
            if self.correlated and row_state is not None:
                fraction = rng.random()
                base = row_state.setdefault("numeric_base", fraction)
                if base is not fraction:
                    fraction = 0.5 * base + 0.5 * fraction
                return low + round((high - low) * fraction)
            return rng.randint(low, high)
        if column.ctype is ColumnType.DATE:
            year = rng.randint(1995, 2023)
            month = rng.randint(1, 12)
            day = rng.randint(1, 28)
            return f"{year:04d}-{month:02d}-{day:02d}"
        if column.ctype is ColumnType.BOOLEAN:
            return rng.random() < 0.5
        pool = self._text_pool(semantic)
        if self.skew > 0:
            return pool[self._skewed_index(rng, len(pool))]
        return rng.choice(pool)

    def _skewed_index(self, rng: random.Random, size: int) -> int:
        """A power-law index into a pool: mass concentrates on low indices."""
        return min(int(size * (rng.random() ** (1.0 + 3.0 * self.skew))), size - 1)

    def _inject_nulls(self, database: Database, rng: random.Random) -> None:
        """Null out ``null_fraction`` of values outside key columns."""
        protected = set()
        for foreign_key in database.schema.foreign_keys:
            protected.add((foreign_key.table.lower(), foreign_key.column.lower()))
            protected.add((foreign_key.ref_table.lower(), foreign_key.ref_column.lower()))
        for table in database.tables():
            for column in table.schema.columns:
                key = (table.name.lower(), column.name.lower())
                if column.is_primary or key in protected:
                    continue
                for row in table.rows:
                    if rng.random() < self.null_fraction:
                        row[column.name] = None

    def _inject_fk_nulls(self, database: Database, rng: random.Random) -> None:
        """Null out ``fk_null_fraction`` of foreign-key values.

        Runs after :meth:`_apply_foreign_keys`, so the surviving keys still
        reference valid primary keys; only this extra pass consumes RNG, so
        ``fk_null_fraction=0`` keeps every historical stream bit-identical.
        """
        for foreign_key in database.schema.foreign_keys:
            if not database.has_table(foreign_key.table):
                continue
            table = database.table(foreign_key.table)
            if not table.has_column(foreign_key.column):
                continue
            canonical = table.canonical_column(foreign_key.column)
            for row in table.rows:
                if rng.random() < self.fk_null_fraction:
                    row[canonical] = None

    def _inject_nans(self, database: Database, rng: random.Random) -> None:
        """Turn ``nan_fraction`` of non-key NUMBER values into ``NaN``.

        Key columns stay intact for the same reason :meth:`_inject_nulls`
        protects them (NaN keys would push joins outside the portable
        subset); only this extra pass consumes RNG, so ``nan_fraction=0``
        keeps every historical stream bit-identical.
        """
        protected = set()
        for foreign_key in database.schema.foreign_keys:
            protected.add((foreign_key.table.lower(), foreign_key.column.lower()))
            protected.add((foreign_key.ref_table.lower(), foreign_key.ref_column.lower()))
        for table in database.tables():
            for column in table.schema.columns:
                key = (table.name.lower(), column.name.lower())
                if (
                    column.ctype is not ColumnType.NUMBER
                    or column.is_primary
                    or key in protected
                ):
                    continue
                for row in table.rows:
                    if row[column.name] is not None and rng.random() < self.nan_fraction:
                        row[column.name] = float("nan")

    def _number_range(self, semantic: str) -> tuple:
        for key, value_range in _SEMANTIC_NUMBER_RANGES.items():
            if key in semantic:
                return value_range
        return (1, 1000)

    def _text_pool(self, semantic: str) -> List[str]:
        for key, pool in _SEMANTIC_TEXT_POOLS.items():
            if key in semantic:
                return pool
        return _GENERIC_WORDS

    def _apply_foreign_keys(
        self,
        database: Database,
        rng: random.Random,
        primary_keys: Dict[str, List[object]],
    ) -> None:
        """Rewrite foreign-key columns to reference existing primary keys."""
        for foreign_key in database.schema.foreign_keys:
            if foreign_key.ref_table not in primary_keys:
                continue
            if not database.has_table(foreign_key.table):
                continue
            referenced = primary_keys[foreign_key.ref_table]
            table = database.table(foreign_key.table)
            if not table.has_column(foreign_key.column):
                continue
            canonical = table.canonical_column(foreign_key.column)
            for row in table.rows:
                if self.skew > 0:
                    row[canonical] = referenced[self._skewed_index(rng, len(referenced))]
                else:
                    row[canonical] = rng.choice(referenced)
