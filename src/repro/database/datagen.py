"""Deterministic synthetic data generation for schema columns.

nvBench ships real SQLite data derived from Spider.  We substitute a
deterministic generator keyed on each column's *semantic* tag so filters,
aggregates and group-bys produce plausible, non-degenerate chart data.  The
generator is fully seeded: the same schema and seed always produce the same
rows, which keeps every experiment reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.database.database import Database
from repro.database.schema import Column, ColumnType, DatabaseSchema, TableSchema

_FIRST_NAMES = [
    "Shelley", "Nancy", "Steven", "John", "Hermann", "Alexander", "Adam",
    "Susan", "Den", "Michael", "Jennifer", "Laura", "Carlos", "Mei", "Priya",
    "Omar", "Elena", "Lucas", "Aisha", "Tom",
]
_LAST_NAMES = [
    "King", "Kochhar", "De Haan", "Hunold", "Ernst", "Austin", "Pataballa",
    "Lorentz", "Greenberg", "Faviet", "Chen", "Sciarra", "Urman", "Popp",
    "Raphaely", "Khoo", "Baida", "Tobias", "Himuro", "Colmenares",
]
_CITIES = [
    "Seattle", "Toronto", "London", "Oxford", "Sydney", "Munich", "Geneva",
    "Tokyo", "Singapore", "Venice", "Utrecht", "Bern", "Mexico City", "Sao Paulo",
]
_COUNTRIES = [
    "United States", "Canada", "United Kingdom", "Australia", "Germany",
    "Switzerland", "Japan", "Singapore", "Italy", "Netherlands", "Brazil",
]
_DEPARTMENT_NAMES = [
    "Administration", "Marketing", "Purchasing", "Human Resources", "Shipping",
    "IT", "Public Relations", "Sales", "Executive", "Finance", "Accounting",
]
_JOB_TITLES = [
    "President", "Administration Vice President", "Accountant", "Programmer",
    "Marketing Manager", "Sales Representative", "Stock Clerk", "Shipping Clerk",
]
_PRODUCT_NAMES = [
    "Laptop", "Monitor", "Keyboard", "Tablet", "Camera", "Printer", "Router",
    "Speaker", "Headset", "Charger", "Scanner", "Projector",
]
_GENERIC_WORDS = [
    "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Eta", "Theta",
    "Iota", "Kappa", "Lambda", "Sigma", "Omega", "Orion", "Vega", "Lyra",
]
_STATUS_VALUES = ["Open", "Closed", "Pending", "Approved", "Rejected"]
_CATEGORY_VALUES = ["Gold", "Silver", "Bronze", "Platinum", "Standard"]
_THEME_VALUES = ["History", "Science", "Art", "Nature", "Technology", "Sports"]

_SEMANTIC_TEXT_POOLS: Dict[str, List[str]] = {
    "first_name": _FIRST_NAMES,
    "last_name": _LAST_NAMES,
    "name": _GENERIC_WORDS,
    "city": _CITIES,
    "country": _COUNTRIES,
    "department": _DEPARTMENT_NAMES,
    "job_title": _JOB_TITLES,
    "product": _PRODUCT_NAMES,
    "status": _STATUS_VALUES,
    "category": _CATEGORY_VALUES,
    "theme": _THEME_VALUES,
}

_SEMANTIC_NUMBER_RANGES: Dict[str, tuple] = {
    "salary": (2000, 25000),
    "price": (5, 2000),
    "budget": (10000, 900000),
    "age": (18, 70),
    "year": (1990, 2023),
    "capacity": (50, 1200),
    "count": (1, 500),
    "rating": (1, 10),
    "weight": (1, 120),
    "distance": (1, 5000),
    "percentage": (0, 100),
    "id": (1, 10000),
}


class DataGenerator:
    """Populate a :class:`DatabaseSchema` with deterministic synthetic rows."""

    def __init__(self, seed: int = 0, rows_per_table: int = 40):
        self.seed = seed
        self.rows_per_table = rows_per_table

    def populate(self, schema: DatabaseSchema, rows_per_table: Optional[int] = None) -> Database:
        """Return a populated :class:`Database` for ``schema``."""
        rows_per_table = rows_per_table or self.rows_per_table
        rng = random.Random(f"{self.seed}:{schema.name}")
        database = Database(schema)
        primary_keys: Dict[str, List[object]] = {}
        for table_schema in schema.tables:
            rows = [
                self._generate_row(table_schema, row_index, rng, schema, primary_keys)
                for row_index in range(rows_per_table)
            ]
            database.table(table_schema.name).extend(rows)
            primary = table_schema.primary_key
            if primary is not None:
                primary_keys[table_schema.name] = [row[primary.name] for row in rows]
        self._apply_foreign_keys(database, rng, primary_keys)
        return database

    def _generate_row(
        self,
        table_schema: TableSchema,
        row_index: int,
        rng: random.Random,
        schema: DatabaseSchema,
        primary_keys: Dict[str, List[object]],
    ) -> Dict[str, object]:
        row: Dict[str, object] = {}
        for column in table_schema.columns:
            row[column.name] = self._generate_value(column, row_index, rng)
        return row

    def _generate_value(self, column: Column, row_index: int, rng: random.Random) -> object:
        if column.is_primary:
            return row_index + 1
        semantic = column.semantic or column.name.lower()
        if column.ctype is ColumnType.NUMBER:
            low, high = self._number_range(semantic)
            return rng.randint(low, high)
        if column.ctype is ColumnType.DATE:
            year = rng.randint(1995, 2023)
            month = rng.randint(1, 12)
            day = rng.randint(1, 28)
            return f"{year:04d}-{month:02d}-{day:02d}"
        if column.ctype is ColumnType.BOOLEAN:
            return rng.random() < 0.5
        pool = self._text_pool(semantic)
        return rng.choice(pool)

    def _number_range(self, semantic: str) -> tuple:
        for key, value_range in _SEMANTIC_NUMBER_RANGES.items():
            if key in semantic:
                return value_range
        return (1, 1000)

    def _text_pool(self, semantic: str) -> List[str]:
        for key, pool in _SEMANTIC_TEXT_POOLS.items():
            if key in semantic:
                return pool
        return _GENERIC_WORDS

    def _apply_foreign_keys(
        self,
        database: Database,
        rng: random.Random,
        primary_keys: Dict[str, List[object]],
    ) -> None:
        """Rewrite foreign-key columns to reference existing primary keys."""
        for foreign_key in database.schema.foreign_keys:
            if foreign_key.ref_table not in primary_keys:
                continue
            if not database.has_table(foreign_key.table):
                continue
            referenced = primary_keys[foreign_key.ref_table]
            table = database.table(foreign_key.table)
            if not table.has_column(foreign_key.column):
                continue
            canonical = table.canonical_column(foreign_key.column)
            for row in table.rows:
                row[canonical] = rng.choice(referenced)
