"""GRED: the paper's Retrieval-Augmented Generation framework.

The pipeline has a preparatory phase and three inference stages:

* **Preparation** — embed every training NLQ and DVQ into a vector library and
  generate natural-language annotations for every database
  (:class:`GREDRetriever`, :class:`DatabaseAnnotator`).
* **NLQ-Retrieval Generator** — retrieve the top-K most similar training
  questions, assemble a few-shot generation prompt (ascending similarity) and
  ask the LLM for ``DVQ_gen`` (:class:`NLQRetrievalGenerator`).
* **DVQ-Retrieval Retuner** — retrieve the top-K most similar training DVQs and
  ask the LLM to imitate their programming style, producing ``DVQ_rtn``
  (:class:`DVQRetrievalRetuner`).
* **Annotation-based Debugger** — give the LLM the annotated target database
  and ask it to repair out-of-schema column names, producing ``DVQ_dbg``
  (:class:`AnnotationBasedDebugger`).
"""

from repro.core.config import GREDConfig
from repro.core.errors import NotFittedError, not_fitted
from repro.core.annotator import DatabaseAnnotator
from repro.core.retriever import GREDRetriever
from repro.core.generator import NLQRetrievalGenerator
from repro.core.retuner import DVQRetrievalRetuner
from repro.core.debugger import AnnotationBasedDebugger
from repro.core.pipeline import GRED, GREDTrace, RepairStats
from repro.core.ablation import build_ablation_variants, build_repair_variants

__all__ = [
    "AnnotationBasedDebugger",
    "DatabaseAnnotator",
    "DVQRetrievalRetuner",
    "GRED",
    "GREDConfig",
    "GREDRetriever",
    "GREDTrace",
    "NLQRetrievalGenerator",
    "NotFittedError",
    "RepairStats",
    "build_ablation_variants",
    "build_repair_variants",
    "not_fitted",
]
