"""Shared errors of the GRED pipeline layer."""

from __future__ import annotations


class NotFittedError(RuntimeError):
    """An inference entry point was called before :meth:`fit` / :meth:`prepare`.

    Subclasses :class:`RuntimeError` so existing ``except RuntimeError``
    handlers (and tests) keep working.  Use :func:`not_fitted` to build an
    instance that names the *actual* caller — historically ``GRED.trace``
    raised a message blaming ``GRED.predict``, which sent readers of the
    traceback to the wrong method.
    """


def not_fitted(owner: str, caller: str, preparer: str = "fit") -> NotFittedError:
    """A :class:`NotFittedError` naming the entry point that was actually called.

    Args:
        owner: class name, e.g. ``"GRED"``.
        caller: the method the user invoked, e.g. ``"trace"``.
        preparer: the method that must run first (``"fit"`` by default).
    """
    return NotFittedError(
        f"{owner}.{caller} called before {preparer}; "
        f"call {owner}.{preparer}(...) first"
    )
