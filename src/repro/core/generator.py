"""Stage (a): the NLQ-Retrieval Generator."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.prompts import GENERATION_SYSTEM, make_generation_prompt
from repro.core.retriever import GREDRetriever
from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.database.schema import DatabaseSchema
from repro.llm.interface import ChatModel, CompletionParams
from repro.nvbench.example import NVBenchExample


class NLQRetrievalGenerator:
    """Retrieves similar questions and asks the LLM for an initial DVQ."""

    def __init__(
        self,
        retriever: GREDRetriever,
        llm: ChatModel,
        catalog: Optional[Catalog] = None,
        top_k: int = 10,
        params: Optional[CompletionParams] = None,
    ):
        self.retriever = retriever
        self.llm = llm
        self.catalog = catalog
        self.top_k = top_k
        self.params = params or CompletionParams()

    def _schema_for(self, example: NVBenchExample, fallback: DatabaseSchema) -> DatabaseSchema:
        if self.catalog is not None and example.db_id in self.catalog:
            return self.catalog.get(example.db_id).schema
        return fallback

    def build_prompt(self, nlq: str, database: Database) -> str:
        """Assemble the generation prompt (examples in ascending similarity)."""
        hits = self.retriever.retrieve_by_nlq(nlq, top_k=self.top_k)
        # hits are descending; the paper places the most similar example nearest
        # to the asking part, i.e. ascending order in the prompt
        ordered: List[Tuple[NVBenchExample, DatabaseSchema]] = [
            (hit.payload, self._schema_for(hit.payload, database.schema))
            for hit in reversed(hits)
        ]
        return make_generation_prompt(ordered, nlq, database.schema)

    def generate(self, nlq: str, database: Database) -> str:
        """Produce ``DVQ_gen`` for the question."""
        prompt = self.build_prompt(nlq, database)
        return self.llm.complete_text(GENERATION_SYSTEM, prompt, params=self.params).strip()
