"""Factory helpers for the Table 4 ablations and the repair-loop study."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.core.config import GREDConfig
from repro.core.pipeline import GRED
from repro.llm.interface import ChatModel


def build_ablation_variants(
    top_k: int = 10, llm: Optional[ChatModel] = None
) -> Dict[str, GRED]:
    """The four GRED configurations of Table 4 (full, w/o RTN&DBG, w/o RTN, w/o DBG).

    Each variant gets its own pipeline object; passing a shared ``llm`` lets
    callers reuse one simulated model (and its completion log) across variants.
    """
    configurations = {
        "GRED": GREDConfig(top_k=top_k, use_retuner=True, use_debugger=True),
        "GRED w/o RTN&DBG": GREDConfig(top_k=top_k, use_retuner=False, use_debugger=False),
        "GRED w/o RTN": GREDConfig(top_k=top_k, use_retuner=False, use_debugger=True),
        "GRED w/o DBG": GREDConfig(top_k=top_k, use_retuner=True, use_debugger=False),
    }
    return {name: GRED(config=config, llm=llm) for name, config in configurations.items()}


def build_repair_variants(
    top_k: int = 10,
    llm: Optional[ChatModel] = None,
    max_repair_rounds: int = 2,
    execution_backend: str = "columnar",
    optimize_plans: bool = True,
    use_debugger: bool = True,
    use_llm_cache: bool = False,
) -> Dict[str, GRED]:
    """The repair-loop ablation pair: identical pipelines, repair off vs on.

    Neither variant runs the in-pipeline execution check
    (``verify_execution``) — executability is measured once by the evaluator
    (:class:`~repro.evaluation.evaluator.ModelEvaluator` with an
    ``execution_backend``), so enabling it here would only execute every
    prediction twice.  Pass ``use_debugger=False`` to study the loop on the
    "w/o DBG" ablation, where failures are most frequent.

    Raises:
        ValueError: when ``max_repair_rounds < 1`` — the pair would collapse
            to two identical repair-less pipelines.
    """
    if max_repair_rounds < 1:
        raise ValueError(
            f"max_repair_rounds must be >= 1 for the repair pair, got {max_repair_rounds}"
        )
    base = GREDConfig(
        top_k=top_k,
        use_debugger=use_debugger,
        execution_backend=execution_backend,
        optimize_plans=optimize_plans,
        use_llm_cache=use_llm_cache,
    )
    with_repair = replace(base, max_repair_rounds=max_repair_rounds)
    return {
        base.variant_name(): GRED(config=base, llm=llm),
        with_repair.variant_name(): GRED(config=with_repair, llm=llm),
    }
