"""Factory helpers for the ablation study in Table 4."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import GREDConfig
from repro.core.pipeline import GRED
from repro.llm.interface import ChatModel


def build_ablation_variants(
    top_k: int = 10, llm: Optional[ChatModel] = None
) -> Dict[str, GRED]:
    """The four GRED configurations of Table 4 (full, w/o RTN&DBG, w/o RTN, w/o DBG).

    Each variant gets its own pipeline object; passing a shared ``llm`` lets
    callers reuse one simulated model (and its completion log) across variants.
    """
    configurations = {
        "GRED": GREDConfig(top_k=top_k, use_retuner=True, use_debugger=True),
        "GRED w/o RTN&DBG": GREDConfig(top_k=top_k, use_retuner=False, use_debugger=False),
        "GRED w/o RTN": GREDConfig(top_k=top_k, use_retuner=False, use_debugger=True),
        "GRED w/o DBG": GREDConfig(top_k=top_k, use_retuner=True, use_debugger=False),
    }
    return {name: GRED(config=config, llm=llm) for name, config in configurations.items()}
