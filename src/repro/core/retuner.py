"""Stage (b): the DVQ-Retrieval Retuner."""

from __future__ import annotations

from typing import List, Optional

from repro.core.prompts import RETUNE_SYSTEM, make_retune_prompt
from repro.core.retriever import GREDRetriever
from repro.llm.interface import ChatModel, CompletionParams


class DVQRetrievalRetuner:
    """Retrieves similar training DVQs and asks the LLM to mimic their style."""

    def __init__(
        self,
        retriever: GREDRetriever,
        llm: ChatModel,
        top_k: int = 10,
        params: Optional[CompletionParams] = None,
    ):
        self.retriever = retriever
        self.llm = llm
        self.top_k = top_k
        self.params = params or CompletionParams()

    def reference_dvqs(self, dvq_gen: str) -> List[str]:
        """The top-K reference DVQs, most similar last (closest to the question)."""
        hits = self.retriever.retrieve_by_dvq(dvq_gen, top_k=self.top_k)
        return [hit.payload.dvq for hit in reversed(hits)]

    def retune(self, dvq_gen: str) -> str:
        """Produce ``DVQ_rtn`` from ``DVQ_gen``."""
        references = self.reference_dvqs(dvq_gen)
        if not references:
            return dvq_gen
        prompt = make_retune_prompt(references, dvq_gen)
        response = self.llm.complete_text(RETUNE_SYSTEM, prompt, params=self.params).strip()
        return response or dvq_gen
