"""The embedding vector library and top-K retriever used by GRED."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.errors import not_fitted
from repro.embeddings.embedder import EmbedderConfig, TextEmbedder
from repro.embeddings.store import SearchHit, VectorStore
from repro.nvbench.example import NVBenchExample


class GREDRetriever:
    """Holds two vector stores: one over training NLQs, one over training DVQs.

    :meth:`prepare` fits the shared embedder on the training corpus and
    bulk-loads both libraries (one batch embedding per store, performed lazily
    on first search).  At inference time :meth:`retrieve_by_nlq` serves the
    NLQ-Retrieval Generator and :meth:`retrieve_by_dvq` the DVQ-Retrieval
    Retuner; the ``*_many`` variants score a whole batch of queries in a
    single matrix multiplication for callers that collect their queries up
    front (the per-example pipeline stages issue single searches).
    """

    def __init__(self, embedder: Optional[TextEmbedder] = None, dimensions: int = 512):
        self.embedder = embedder or TextEmbedder(EmbedderConfig(dimensions=dimensions))
        self.nlq_store: Optional[VectorStore] = None
        self.dvq_store: Optional[VectorStore] = None

    @property
    def is_prepared(self) -> bool:
        return self.nlq_store is not None and self.dvq_store is not None

    def prepare(self, examples: Sequence[NVBenchExample], max_examples: Optional[int] = None) -> "GREDRetriever":
        """Embed the training examples into the NLQ and DVQ libraries."""
        examples = list(examples)
        if max_examples is not None:
            examples = examples[:max_examples]
        self.embedder.fit(
            [example.nlq for example in examples] + [example.dvq for example in examples]
        )
        self.nlq_store = VectorStore(self.embedder)
        self.dvq_store = VectorStore(self.embedder)
        self.nlq_store.add_many(
            (example.example_id, example.nlq, example) for example in examples
        )
        self.dvq_store.add_many(
            (example.example_id, example.dvq, example) for example in examples
        )
        return self

    def retrieve_by_nlq(self, nlq: str, top_k: int) -> List[SearchHit]:
        """Top-K training examples by question similarity (descending score)."""
        if self.nlq_store is None:
            raise not_fitted("GREDRetriever", "retrieve_by_nlq", preparer="prepare")
        return self.nlq_store.search(nlq, top_k=top_k)

    def retrieve_by_dvq(self, dvq: str, top_k: int) -> List[SearchHit]:
        """Top-K training examples by DVQ similarity (descending score)."""
        if self.dvq_store is None:
            raise not_fitted("GREDRetriever", "retrieve_by_dvq", preparer="prepare")
        return self.dvq_store.search(dvq, top_k=top_k)

    def retrieve_by_nlq_many(self, nlqs: Sequence[str], top_k: int) -> List[List[SearchHit]]:
        """Batched :meth:`retrieve_by_nlq`: one matmul scores every question."""
        if self.nlq_store is None:
            raise not_fitted("GREDRetriever", "retrieve_by_nlq_many", preparer="prepare")
        return self.nlq_store.search_many(nlqs, top_k=top_k)

    def retrieve_by_dvq_many(self, dvqs: Sequence[str], top_k: int) -> List[List[SearchHit]]:
        """Batched :meth:`retrieve_by_dvq`: one matmul scores every DVQ."""
        if self.dvq_store is None:
            raise not_fitted("GREDRetriever", "retrieve_by_dvq_many", preparer="prepare")
        return self.dvq_store.search_many(dvqs, top_k=top_k)
