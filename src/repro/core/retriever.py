"""The embedding vector library and top-K retriever used by GRED."""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence

from repro.core.errors import not_fitted
from repro.embeddings.embedder import EmbedderConfig, TextEmbedder
from repro.embeddings.store import SearchHit, VectorStore
from repro.index import IndexConfig
from repro.index.snapshot import SnapshotError
from repro.nvbench.example import NVBenchExample

#: File names inside a retriever snapshot directory.
_META_FILE, _NLQ_FILE, _DVQ_FILE = "meta.json", "nlq.npz", "dvq.npz"


class NVBenchExampleCodec:
    """Payload codec crossing the snapshot boundary without pickling."""

    def encode(self, payload: NVBenchExample) -> Dict[str, object]:
        return payload.to_dict()

    def decode(self, data: Dict[str, object]) -> NVBenchExample:
        return NVBenchExample.from_dict(data)


class GREDRetriever:
    """Holds two vector stores: one over training NLQs, one over training DVQs.

    :meth:`prepare` fits the shared embedder on the training corpus and
    bulk-loads both libraries (one batch embedding per store, performed lazily
    on first search).  At inference time :meth:`retrieve_by_nlq` serves the
    NLQ-Retrieval Generator and :meth:`retrieve_by_dvq` the DVQ-Retrieval
    Retuner; the ``*_many`` variants score a whole batch of queries in a
    single matrix multiplication for callers that collect their queries up
    front (the per-example pipeline stages issue single searches).

    The search backend is configurable through ``index_config`` (see
    :class:`~repro.index.IndexConfig`): exact brute-force scoring by default,
    or IVF-style partitioned search for large libraries.  With
    ``index_config.snapshot_path`` set, :meth:`prepare` persists both
    libraries (plus the fitted embedder) after building them and — on the
    next run against the same corpus — restores everything from disk instead
    of re-embedding, verified by a corpus digest.
    """

    def __init__(
        self,
        embedder: Optional[TextEmbedder] = None,
        dimensions: int = 512,
        index_config: Optional[IndexConfig] = None,
    ):
        self.embedder = embedder or TextEmbedder(EmbedderConfig(dimensions=dimensions))
        self.index_config = index_config or IndexConfig()
        self.nlq_store: Optional[VectorStore] = None
        self.dvq_store: Optional[VectorStore] = None

    @property
    def is_prepared(self) -> bool:
        return self.nlq_store is not None and self.dvq_store is not None

    def _corpus_digest(self, examples: Sequence[NVBenchExample]) -> str:
        """Fingerprint of everything that shapes the libraries' contents."""
        hasher = hashlib.sha1()
        config = self.embedder.config
        # nprobe is deliberately absent: it is a pure search-time knob,
        # overridden on load, so retuning it must not re-embed the corpus
        header = (
            f"v1|{config.dimensions}|{config.char_n}|{config.use_words}|{config.seed}"
            f"|{self.index_config.backend}|{self.index_config.num_partitions}"
        )
        hasher.update(header.encode("utf-8"))
        for example in examples:
            # the full record: payloads (db_id, chart_type, hardness, meta)
            # are served back from the snapshot, so any field change must
            # invalidate it, not just the embedded texts
            hasher.update(b"\x1e")
            hasher.update(json.dumps(example.to_dict(), sort_keys=True).encode("utf-8"))
        return hasher.hexdigest()

    def prepare(self, examples: Sequence[NVBenchExample], max_examples: Optional[int] = None) -> "GREDRetriever":
        """Embed the training examples into the NLQ and DVQ libraries.

        With a configured ``snapshot_path`` this first tries to restore a
        snapshot of the same corpus (skipping embedding entirely) and, when
        none matches, persists the freshly built libraries for the next run.
        """
        examples = list(examples)
        if max_examples is not None:
            examples = examples[:max_examples]
        snapshot_path = self.index_config.snapshot_path
        digest = self._corpus_digest(examples) if snapshot_path else None
        if snapshot_path and self.try_load(snapshot_path, expected_digest=digest):
            return self
        self.embedder.fit(
            [example.nlq for example in examples] + [example.dvq for example in examples]
        )
        self.nlq_store = VectorStore(self.embedder, config=self.index_config)
        self.dvq_store = VectorStore(self.embedder, config=self.index_config)
        self.nlq_store.add_many(
            (example.example_id, example.nlq, example) for example in examples
        )
        self.dvq_store.add_many(
            (example.example_id, example.dvq, example) for example in examples
        )
        if snapshot_path:
            self.save(snapshot_path, digest=digest)
        return self

    # -- persistence -------------------------------------------------------

    def save(self, directory: str, digest: Optional[str] = None) -> str:
        """Persist both libraries and the fitted embedder under ``directory``."""
        if self.nlq_store is None or self.dvq_store is None:
            raise not_fitted("GREDRetriever", "save", preparer="prepare")
        os.makedirs(directory, exist_ok=True)
        codec = NVBenchExampleCodec()
        self.nlq_store.save(os.path.join(directory, _NLQ_FILE), codec=codec)
        self.dvq_store.save(os.path.join(directory, _DVQ_FILE), codec=codec)
        meta = {"digest": digest, "embedder": self.embedder.to_state()}
        with open(os.path.join(directory, _META_FILE), "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        return directory

    def _read_meta(self, directory: str) -> Dict[str, object]:
        """Parse the snapshot's ``meta.json`` (raises ``SnapshotError``)."""
        meta_path = os.path.join(directory, _META_FILE)
        if not os.path.exists(meta_path):
            raise SnapshotError(f"No retriever snapshot at {directory}")
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise SnapshotError(f"Corrupt retriever snapshot at {directory}: {error}") from error
        if not isinstance(meta, dict):
            raise SnapshotError(f"Corrupt retriever snapshot at {directory}: meta is not an object")
        return meta

    def _load_with_meta(self, directory: str, meta: Dict[str, object]) -> "GREDRetriever":
        """Restore libraries and embedder from an already-parsed ``meta``."""
        state = meta.get("embedder")
        if not isinstance(state, dict):
            raise SnapshotError(
                f"Corrupt retriever snapshot at {directory}: missing embedder state"
            )
        try:
            embedder = TextEmbedder.from_state(state)
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            # malformed-but-parseable meta must stay a snapshot problem, so
            # best-effort loaders rebuild instead of crashing
            raise SnapshotError(f"Corrupt retriever snapshot at {directory}: {error}") from error
        codec = NVBenchExampleCodec()
        workers = self.index_config.search_workers
        nlq_store = VectorStore.load(
            os.path.join(directory, _NLQ_FILE), embedder, codec=codec, search_workers=workers
        )
        dvq_store = VectorStore.load(
            os.path.join(directory, _DVQ_FILE), embedder, codec=codec, search_workers=workers
        )
        for store in (nlq_store, dvq_store):
            if hasattr(store.index, "nprobe"):
                # search-time knob: the caller's current setting wins over
                # whatever the snapshot was written with
                store.index.nprobe = self.index_config.nprobe
        self.embedder = embedder
        self.nlq_store = nlq_store
        self.dvq_store = dvq_store
        return self

    def load(self, directory: str) -> "GREDRetriever":
        """Restore libraries and embedder from :meth:`save` output.

        The restored embedder replaces :attr:`embedder` (carrying the fitted
        IDF weights), so query-time scores are bit-identical to the run that
        wrote the snapshot.  Raises :class:`~repro.index.SnapshotError` when
        the directory is missing or malformed.
        """
        return self._load_with_meta(directory, self._read_meta(directory))

    def try_load(self, directory: str, expected_digest: Optional[str] = None) -> bool:
        """Best-effort :meth:`load`: False on a missing, corrupt or stale snapshot."""
        try:
            meta = self._read_meta(directory)
            if expected_digest is not None and meta.get("digest") != expected_digest:
                return False
            self._load_with_meta(directory, meta)
        except SnapshotError:
            return False
        return True

    # -- retrieval ---------------------------------------------------------

    def retrieve_by_nlq(self, nlq: str, top_k: int) -> List[SearchHit]:
        """Top-K training examples by question similarity (descending score)."""
        if self.nlq_store is None:
            raise not_fitted("GREDRetriever", "retrieve_by_nlq", preparer="prepare")
        return self.nlq_store.search(nlq, top_k=top_k)

    def retrieve_by_dvq(self, dvq: str, top_k: int) -> List[SearchHit]:
        """Top-K training examples by DVQ similarity (descending score)."""
        if self.dvq_store is None:
            raise not_fitted("GREDRetriever", "retrieve_by_dvq", preparer="prepare")
        return self.dvq_store.search(dvq, top_k=top_k)

    def retrieve_by_nlq_many(self, nlqs: Sequence[str], top_k: int) -> List[List[SearchHit]]:
        """Batched :meth:`retrieve_by_nlq`: one matmul scores every question."""
        if self.nlq_store is None:
            raise not_fitted("GREDRetriever", "retrieve_by_nlq_many", preparer="prepare")
        return self.nlq_store.search_many(nlqs, top_k=top_k)

    def retrieve_by_dvq_many(self, dvqs: Sequence[str], top_k: int) -> List[List[SearchHit]]:
        """Batched :meth:`retrieve_by_dvq`: one matmul scores every DVQ."""
        if self.dvq_store is None:
            raise not_fitted("GREDRetriever", "retrieve_by_dvq_many", preparer="prepare")
        return self.dvq_store.search_many(dvqs, top_k=top_k)
