"""Database annotation: the preparatory step feeding the debugger."""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.core.prompts import ANNOTATION_SYSTEM, make_annotation_prompt
from repro.llm.interface import ChatModel, CompletionParams


class DatabaseAnnotator:
    """Generates and caches natural-language annotations for databases.

    The cache is thread-safe so batched inference workers can share one
    annotator; the completion call runs outside the lock, so two workers
    racing on the same uncached database may both annotate it, but the result
    is deterministic and the second write is a no-op.
    """

    def __init__(self, llm: ChatModel, params: Optional[CompletionParams] = None):
        self.llm = llm
        self.params = params or CompletionParams()
        self._cache: Dict[str, str] = {}
        self._lock = threading.Lock()

    def annotate(self, database: Database) -> str:
        """The annotation text for ``database`` (computed once, then cached)."""
        key = database.name.lower()
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        prompt = make_annotation_prompt(database.schema)
        annotation = self.llm.complete_text(ANNOTATION_SYSTEM, prompt, params=self.params)
        with self._lock:
            return self._cache.setdefault(key, annotation)

    def annotate_catalog(self, catalog: Catalog) -> Dict[str, str]:
        """Annotate every database in a catalog, returning name -> annotation."""
        return {database.name: self.annotate(database) for database in catalog}

    def cached(self, database_name: str) -> Optional[str]:
        return self._cache.get(database_name.lower())

    def __len__(self) -> int:
        return len(self._cache)
