"""Database annotation: the preparatory step feeding the debugger."""

from __future__ import annotations

from typing import Dict, Optional

from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.core.prompts import ANNOTATION_SYSTEM, make_annotation_prompt
from repro.llm.interface import ChatModel, CompletionParams


class DatabaseAnnotator:
    """Generates and caches natural-language annotations for databases."""

    def __init__(self, llm: ChatModel, params: Optional[CompletionParams] = None):
        self.llm = llm
        self.params = params or CompletionParams()
        self._cache: Dict[str, str] = {}

    def annotate(self, database: Database) -> str:
        """The annotation text for ``database`` (computed once, then cached)."""
        key = database.name.lower()
        if key not in self._cache:
            prompt = make_annotation_prompt(database.schema)
            self._cache[key] = self.llm.complete_text(ANNOTATION_SYSTEM, prompt, params=self.params)
        return self._cache[key]

    def annotate_catalog(self, catalog: Catalog) -> Dict[str, str]:
        """Annotate every database in a catalog, returning name -> annotation."""
        return {database.name: self.annotate(database) for database in catalog}

    def cached(self, database_name: str) -> Optional[str]:
        return self._cache.get(database_name.lower())

    def __len__(self) -> int:
        return len(self._cache)
